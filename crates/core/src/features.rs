//! Node feature initialization (paper Section IV-B, Table II).
//!
//! Each vertex gets an 18-dimensional feature vector:
//!
//! | feature     | length | description                           |
//! |-------------|--------|---------------------------------------|
//! | device type | 15     | one-hot device-type encoding          |
//! | geometry    | 2      | length and width of the device        |
//! | layer       | 1      | number of metal layers                |
//!
//! Geometry columns are max-normalized per graph so the features are
//! dimensionless and the trained model transfers across technologies
//! (the inductive requirement of Section IV-C).

use ancstr_netlist::{DeviceType, FlatCircuit};
use ancstr_nn::Matrix;

/// Total feature width (15 one-hot + L + W + layers).
pub const FEATURE_DIM: usize = DeviceType::COUNT + 3;

/// Options for feature construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeatureConfig {
    /// Include the geometry/layer columns. Disabling them reproduces the
    /// sizing-blind ablation of Fig. 2's false-alarm discussion.
    pub use_sizing: bool,
}

impl Default for FeatureConfig {
    fn default() -> FeatureConfig {
        FeatureConfig { use_sizing: true }
    }
}

/// Build the initial `n × 18` feature matrix for the devices in `range`
/// (row `i` describes flat device `range.start + i`).
///
/// The device `multiplier` scales effective width, so an `m=2` device
/// differs from its `m=1` twin.
///
/// # Panics
///
/// Panics if `range` exceeds the circuit's device list.
pub fn init_features(
    flat: &FlatCircuit,
    range: std::ops::Range<usize>,
    config: &FeatureConfig,
) -> Matrix {
    let devices = &flat.devices()[range];
    let n = devices.len();
    let mut m = Matrix::zeros(n, FEATURE_DIM);

    // Per-graph normalizers.
    let mut max_l = 0.0f64;
    let mut max_w = 0.0f64;
    let mut max_layers = 0u32;
    for d in devices {
        max_l = max_l.max(d.geometry.length);
        max_w = max_w.max(d.geometry.width * f64::from(d.multiplier));
        max_layers = max_layers.max(d.geometry.metal_layers);
    }
    let norm = |v: f64, max: f64| if max > 0.0 { v / max } else { 0.0 };

    for (i, d) in devices.iter().enumerate() {
        m[(i, d.dtype.one_hot_index())] = 1.0;
        if config.use_sizing {
            m[(i, DeviceType::COUNT)] = norm(d.geometry.length, max_l);
            m[(i, DeviceType::COUNT + 1)] =
                norm(d.geometry.width * f64::from(d.multiplier), max_w);
            m[(i, DeviceType::COUNT + 2)] =
                norm(f64::from(d.geometry.metal_layers), f64::from(max_layers));
        }
    }
    m
}

/// Features for the whole circuit.
pub fn circuit_features(flat: &FlatCircuit, config: &FeatureConfig) -> Matrix {
    init_features(flat, 0..flat.devices().len(), config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ancstr_netlist::parse::parse_spice;

    fn flat() -> FlatCircuit {
        let nl = parse_spice(
            "\
.subckt c a b vdd vss
M1 a b vss vss nch_lvt w=4u l=0.2u
M2 b a vss vss nch_lvt w=2u l=0.2u m=2
Cm a b cfmom w=3u l=3u layers=5
.ends
",
        )
        .unwrap();
        FlatCircuit::elaborate(&nl).unwrap()
    }

    #[test]
    fn shape_and_one_hot() {
        let f = circuit_features(&flat(), &FeatureConfig::default());
        assert_eq!(f.shape(), (3, FEATURE_DIM));
        // Exactly one 1 in the one-hot block per row.
        for r in 0..3 {
            let ones = (0..DeviceType::COUNT)
                .filter(|&c| f[(r, c)] == 1.0)
                .count();
            assert_eq!(ones, 1, "row {r}");
        }
        assert_eq!(f[(0, DeviceType::NchLvt.one_hot_index())], 1.0);
        assert_eq!(f[(2, DeviceType::CfmomCapacitor.one_hot_index())], 1.0);
    }

    #[test]
    fn geometry_is_max_normalized() {
        let f = circuit_features(&flat(), &FeatureConfig::default());
        let lw = DeviceType::COUNT;
        // Max length is the 3 µm cap; max effective width is M1 (4) vs
        // M2 (2×2=4) vs cap (3) → 4.
        assert!((f[(2, lw)] - 1.0).abs() < 1e-12, "cap has max length");
        assert!((f[(0, lw + 1)] - 1.0).abs() < 1e-12, "M1 hits max width");
        assert!((f[(1, lw + 1)] - 1.0).abs() < 1e-12, "m=2 doubles M2's width");
        assert!((f[(2, lw + 2)] - 1.0).abs() < 1e-12, "cap has max layers");
        assert!((f[(0, lw + 2)] - 0.2).abs() < 1e-12, "1 of 5 layers");
    }

    #[test]
    fn sizing_can_be_ablated() {
        let f = circuit_features(&flat(), &FeatureConfig { use_sizing: false });
        for r in 0..3 {
            for c in DeviceType::COUNT..FEATURE_DIM {
                assert_eq!(f[(r, c)], 0.0);
            }
        }
    }

    #[test]
    fn matched_devices_get_identical_rows() {
        let nl = parse_spice(
            "\
.subckt c a b vdd vss
M1 a b t vss nch w=4u l=0.2u
M2 b a t vss nch w=4u l=0.2u
.ends
",
        )
        .unwrap();
        let flat = FlatCircuit::elaborate(&nl).unwrap();
        let f = circuit_features(&flat, &FeatureConfig::default());
        assert_eq!(f.row(0), f.row(1));
    }

    #[test]
    fn subrange_uses_local_normalization() {
        let flat = flat();
        let full = circuit_features(&flat, &FeatureConfig::default());
        let sub = init_features(&flat, 0..2, &FeatureConfig::default());
        // In the 2-device subrange the max length is 0.2 µm, so lengths
        // normalize to 1.0 rather than 0.2/3.
        assert!((sub[(0, DeviceType::COUNT)] - 1.0).abs() < 1e-12);
        assert!(full[(0, DeviceType::COUNT)] < 1.0);
    }
}
