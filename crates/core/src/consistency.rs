//! Template-consistency voting: an extension beyond the paper.
//!
//! When a subcircuit template is instantiated many times (DAC slices,
//! comparators in a flash bank), the *same local pair* may be detected
//! in some instances and missed in others — each instance's devices see
//! slightly different 2-hop context through the block boundary. But a
//! constraint is a property of the template's layout, so detections
//! should agree across instances. This pass groups block nodes by
//! template, maps each accepted device-level pair to its local element
//! names, and when at least `quorum` of the instances agree, adds the
//! pair to every instance.
//!
//! The pass can only *add* constraints that a majority of instances
//! already support, so precision is preserved while recall improves on
//! deep systems.

use std::collections::{HashMap, HashSet};

use ancstr_netlist::flat::{FlatCircuit, HierNodeId, HierNodeKind};
use ancstr_netlist::{ConstraintSet, SymmetryConstraint, SymmetryKind};

/// Options of the voting pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConsistencyOptions {
    /// Fraction of instances that must agree before a pair propagates
    /// (default 0.5: a strict majority of detections).
    pub quorum: f64,
}

impl Default for ConsistencyOptions {
    fn default() -> ConsistencyOptions {
        ConsistencyOptions { quorum: 0.5 }
    }
}

/// Result of the voting pass.
#[derive(Debug, Clone)]
pub struct ConsistencyReport {
    /// The augmented constraint set.
    pub constraints: ConstraintSet,
    /// How many constraints the vote added.
    pub added: usize,
}

/// Local path of `node` relative to ancestor `block` (e.g. `M1`).
fn local_path(flat: &FlatCircuit, block: HierNodeId, node: HierNodeId) -> Option<String> {
    let block_path = &flat.node(block).path;
    flat.node(node)
        .path
        .strip_prefix(&format!("{block_path}/"))
        .map(str::to_owned)
}

/// Find the deepest template-instance ancestor of `node` (excluding the
/// root).
fn owning_block(flat: &FlatCircuit, node: HierNodeId) -> Option<HierNodeId> {
    let mut cur = flat.node(node).parent?;
    loop {
        let n = flat.node(cur);
        if n.is_block() && n.parent.is_some() {
            return Some(cur);
        }
        cur = n.parent?;
    }
}

/// Run template-consistency voting over `detected`.
pub fn vote_template_consistency(
    flat: &FlatCircuit,
    detected: &ConstraintSet,
    options: &ConsistencyOptions,
) -> ConsistencyReport {
    // Instances per template (non-root blocks only).
    let mut instances: HashMap<&str, Vec<HierNodeId>> = HashMap::new();
    for n in flat.blocks() {
        if n.parent.is_none() {
            continue;
        }
        if let HierNodeKind::Block { subckt, .. } = &n.kind {
            instances.entry(subckt.as_str()).or_default().push(n.id);
        }
    }

    // Votes: (template, local pair) -> set of instances that detected it.
    type LocalPair = (String, String);
    let mut votes: HashMap<(&str, LocalPair), HashSet<HierNodeId>> = HashMap::new();
    for c in detected.iter() {
        if c.kind != SymmetryKind::Device {
            continue;
        }
        let Some(block) = owning_block(flat, c.pair.lo()) else { continue };
        if owning_block(flat, c.pair.hi()) != Some(block) {
            continue;
        }
        let HierNodeKind::Block { subckt, .. } = &flat.node(block).kind else { continue };
        let (Some(a), Some(b)) = (
            local_path(flat, block, c.pair.lo()),
            local_path(flat, block, c.pair.hi()),
        ) else {
            continue;
        };
        let key = if a <= b { (a, b) } else { (b, a) };
        votes
            .entry((subckt.as_str(), key))
            .or_default()
            .insert(block);
    }

    // Propagate winning pairs to every instance.
    let mut out = detected.clone();
    let mut added = 0usize;
    for ((template, (a, b)), voters) in &votes {
        let Some(all) = instances.get(template) else { continue };
        if all.len() < 2 {
            continue;
        }
        if (voters.len() as f64) < options.quorum * all.len() as f64 {
            continue;
        }
        for &inst in all {
            let inst_path = &flat.node(inst).path;
            let (Some(na), Some(nb)) = (
                flat.node_by_path(&format!("{inst_path}/{a}")),
                flat.node_by_path(&format!("{inst_path}/{b}")),
            ) else {
                continue;
            };
            // T_c is the pair's common parent inside the instance.
            let Some(tc) = na.parent else { continue };
            if out.insert(SymmetryConstraint::new(tc, na.id, nb.id, SymmetryKind::Device)) {
                added += 1;
            }
        }
    }
    ConsistencyReport { constraints: out, added }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ancstr_netlist::parse::parse_spice;

    fn three_instance_fixture() -> FlatCircuit {
        let nl = parse_spice(
            "\
.subckt dp inp inn o1 o2 t vss
M1 o1 inp t vss nch w=4u l=0.2u
M2 o2 inn t vss nch w=4u l=0.2u
.ends
.subckt top a b c d e f vdd vss
X1 a b n1 n2 t1 vss dp
X2 c d n3 n4 t2 vss dp
X3 e f n5 n6 t3 vss dp
.ends
",
        )
        .unwrap();
        FlatCircuit::elaborate(&nl).unwrap()
    }

    fn pair_in(flat: &FlatCircuit, inst: &str) -> SymmetryConstraint {
        let a = flat.node_by_path(&format!("top/{inst}/M1")).unwrap().id;
        let b = flat.node_by_path(&format!("top/{inst}/M2")).unwrap().id;
        let tc = flat.node_by_path(&format!("top/{inst}")).unwrap().id;
        SymmetryConstraint::new(tc, a, b, SymmetryKind::Device)
    }

    #[test]
    fn majority_propagates_to_all_instances() {
        let flat = three_instance_fixture();
        // Detected in X1 and X2, missed in X3.
        let detected: ConstraintSet =
            [pair_in(&flat, "X1"), pair_in(&flat, "X2")].into_iter().collect();
        let report =
            vote_template_consistency(&flat, &detected, &ConsistencyOptions::default());
        assert_eq!(report.added, 1);
        let x3 = pair_in(&flat, "X3");
        assert!(report.constraints.contains_key(x3.pair));
        assert_eq!(report.constraints.len(), 3);
    }

    #[test]
    fn minority_does_not_propagate() {
        let flat = three_instance_fixture();
        // Detected in only X1 (1 of 3 < 0.5 quorum).
        let detected: ConstraintSet = [pair_in(&flat, "X1")].into_iter().collect();
        let report =
            vote_template_consistency(&flat, &detected, &ConsistencyOptions::default());
        assert_eq!(report.added, 0);
        assert_eq!(report.constraints.len(), 1);
    }

    #[test]
    fn quorum_is_tunable() {
        let flat = three_instance_fixture();
        let detected: ConstraintSet = [pair_in(&flat, "X1")].into_iter().collect();
        let report = vote_template_consistency(
            &flat,
            &detected,
            &ConsistencyOptions { quorum: 0.3 },
        );
        assert_eq!(report.added, 2, "1/3 meets a 0.3 quorum");
        assert_eq!(report.constraints.len(), 3);
    }

    #[test]
    fn single_instance_templates_are_untouched() {
        let nl = parse_spice(
            "\
.subckt dp inp inn o1 o2 t vss
M1 o1 inp t vss nch w=4u l=0.2u
M2 o2 inn t vss nch w=4u l=0.2u
.ends
.subckt top a b vdd vss
X1 a b n1 n2 t1 vss dp
.ends
",
        )
        .unwrap();
        let flat = FlatCircuit::elaborate(&nl).unwrap();
        let a = flat.node_by_path("top/X1/M1").unwrap().id;
        let b = flat.node_by_path("top/X1/M2").unwrap().id;
        let tc = flat.node_by_path("top/X1").unwrap().id;
        let detected: ConstraintSet =
            [SymmetryConstraint::new(tc, a, b, SymmetryKind::Device)].into_iter().collect();
        let report =
            vote_template_consistency(&flat, &detected, &ConsistencyOptions::default());
        assert_eq!(report.added, 0);
    }

    #[test]
    fn system_level_pairs_are_ignored_by_the_vote() {
        let flat = three_instance_fixture();
        let x1 = flat.node_by_path("top/X1").unwrap().id;
        let x2 = flat.node_by_path("top/X2").unwrap().id;
        let root = flat.root().id;
        let detected: ConstraintSet =
            [SymmetryConstraint::new(root, x1, x2, SymmetryKind::System)]
                .into_iter()
                .collect();
        let report =
            vote_template_consistency(&flat, &detected, &ConsistencyOptions::default());
        assert_eq!(report.added, 0);
        assert_eq!(report.constraints.len(), 1);
    }
}
