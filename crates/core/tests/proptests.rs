//! Property tests for the extraction pipeline: feature invariants,
//! candidate-pair rules, threshold behaviour, and metric identities.

use ancstr_core::detect::ThresholdConfig;
use ancstr_core::metrics::{roc_curve, Confusion};
use ancstr_core::{circuit_features, valid_pairs, FeatureConfig, FEATURE_DIM};
use ancstr_netlist::flat::FlatCircuit;
use ancstr_netlist::{Device, DeviceType, Geometry, Netlist, Subckt};
use proptest::prelude::*;

fn arb_cell() -> impl Strategy<Value = FlatCircuit> {
    let dev = (0usize..5, 1u32..6, 0usize..3, 0usize..3, 0usize..3);
    prop::collection::vec(dev, 2..15).prop_map(|devs| {
        let nets = ["n0", "n1", "n2"];
        let types = [
            DeviceType::Nch,
            DeviceType::Pch,
            DeviceType::Resistor,
            DeviceType::Capacitor,
            DeviceType::NchLvt,
        ];
        let mut sub = Subckt::new("cell", ["n0"]);
        for (i, (t, w, a, b, c)) in devs.into_iter().enumerate() {
            let t = types[t];
            let pins: Vec<String> = match t.pin_count() {
                3 => vec![nets[a].into(), nets[b].into(), nets[c].into()],
                _ => vec![nets[a].into(), nets[b].into()],
            };
            let prefix = match t {
                t if t.is_mos() => "M",
                DeviceType::Resistor => "R",
                _ => "C",
            };
            sub.push_device(
                Device::new(
                    format!("{prefix}{i}"),
                    t,
                    pins,
                    Geometry::new(0.1, f64::from(w)),
                )
                .expect("pin count ok"),
            )
            .expect("unique");
        }
        let mut nl = Netlist::new("cell");
        nl.add_subckt(sub).expect("fresh");
        FlatCircuit::elaborate(&nl).expect("valid")
    })
}

proptest! {
    /// Features: one row per device, 18 wide, one-hot block exact,
    /// geometry block within [0, 1].
    #[test]
    fn feature_invariants(flat in arb_cell()) {
        let f = circuit_features(&flat, &FeatureConfig::default());
        prop_assert_eq!(f.shape(), (flat.devices().len(), FEATURE_DIM));
        for r in 0..f.rows() {
            let ones: usize = (0..DeviceType::COUNT)
                .filter(|&c| f[(r, c)] == 1.0)
                .count();
            prop_assert_eq!(ones, 1);
            for c in DeviceType::COUNT..FEATURE_DIM {
                prop_assert!((0.0..=1.0).contains(&f[(r, c)]));
            }
        }
    }

    /// Valid pairs: symmetric-type, sibling-only, and complete — any two
    /// same-type siblings appear exactly once.
    #[test]
    fn valid_pair_rules(flat in arb_cell()) {
        let pairs = valid_pairs(&flat);
        // No duplicates.
        let mut keys: Vec<_> = pairs.iter().map(|p| p.pair).collect();
        keys.sort();
        let before = keys.len();
        keys.dedup();
        prop_assert_eq!(keys.len(), before);
        // Completeness + type match against a brute-force count.
        let root = flat.root();
        let mut expected = 0usize;
        for i in 0..root.children.len() {
            for j in (i + 1)..root.children.len() {
                if flat.module_type(root.children[i]) == flat.module_type(root.children[j]) {
                    expected += 1;
                }
            }
        }
        prop_assert_eq!(pairs.len(), expected);
    }

    /// Eq. 4 threshold: bounded by the cap, decreasing in design size,
    /// never below alpha.
    #[test]
    fn threshold_eq4_properties(size in 0usize..100_000) {
        let t = ThresholdConfig::default();
        let lam = t.system_threshold(size);
        prop_assert!(lam <= t.cap + 1e-12);
        prop_assert!(lam >= t.alpha - 1e-12);
        prop_assert!(lam >= t.system_threshold(size + 1) - 1e-12);
    }

    /// Metric identities on random confusions: ACC is a convex mix of
    /// TPR and TNR; F1 is the harmonic mean of PPV and TPR.
    #[test]
    fn metric_identities(tp in 0usize..50, fp in 0usize..50, tn in 0usize..50, fn_ in 0usize..50) {
        prop_assume!(tp + fn_ > 0 && fp + tn > 0 && tp + fp > 0);
        let c = Confusion { tp, fp, tn, fn_ };
        // ACC decomposition.
        let p = (tp + fn_) as f64;
        let n = (fp + tn) as f64;
        let acc = (c.tpr() * p + (1.0 - c.fpr()) * n) / (p + n);
        prop_assert!((acc - c.acc()).abs() < 1e-12);
        // F1 harmonic mean (when tp > 0).
        if tp > 0 {
            let hm = 2.0 * c.ppv() * c.tpr() / (c.ppv() + c.tpr());
            prop_assert!((hm - c.f1()).abs() < 1e-12);
        }
    }

    /// ROC curves over random samples are monotone with AUC in [0, 1],
    /// and flipping all labels maps AUC to 1 − AUC.
    #[test]
    fn roc_properties(
        samples in prop::collection::vec((0.0f64..1.0, any::<bool>()), 2..60)
    ) {
        let pos = samples.iter().filter(|(_, a)| *a).count();
        prop_assume!(pos > 0 && pos < samples.len());
        let roc = roc_curve(&samples);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&roc.auc));
        for w in roc.points.windows(2) {
            prop_assert!(w[1].fpr >= w[0].fpr - 1e-12);
            prop_assert!(w[1].tpr >= w[0].tpr - 1e-12);
        }
        let flipped: Vec<(f64, bool)> =
            samples.iter().map(|&(s, a)| (s, !a)).collect();
        let roc_f = roc_curve(&flipped);
        // Complement holds when there are no tied scores across classes;
        // allow tie slack.
        prop_assert!((roc.auc + roc_f.auc - 1.0).abs() < 0.35);
    }
}
