//! Property-based tests for the netlist crate: SI-value round trips,
//! parser/writer round trips over generated netlists, elaboration
//! invariants, and fault tolerance — byte soup and mutated-valid SPICE
//! must produce located errors, never panics.

use ancstr_netlist::error::ParseNetlistError;
use ancstr_netlist::flat::FlatCircuit;
use ancstr_netlist::parse::parse_spice;
use ancstr_netlist::units::{format_si_value, parse_si_value};
use ancstr_netlist::write::write_spice;
use ancstr_netlist::{Device, DeviceType, Geometry, Instance, Netlist, Subckt};
use proptest::prelude::*;

proptest! {
    /// format → parse is the identity up to relative rounding error.
    #[test]
    fn si_value_round_trip(mantissa in 0.001f64..999.0, exp in -15i32..9) {
        let v = mantissa * 10f64.powi(exp);
        let s = format_si_value(v);
        let back = parse_si_value(&s).expect("formatted values parse");
        prop_assert!((back - v).abs() <= v.abs() * 1e-5, "{v} -> {s} -> {back}");
    }

    /// parse never panics on arbitrary input — it returns Ok or Err.
    #[test]
    fn parser_never_panics(s in "\\PC{0,200}") {
        let _ = parse_spice(&s);
    }

    /// parse never panics on line-structured SPICE-ish input.
    #[test]
    fn parser_never_panics_on_cards(
        lines in prop::collection::vec("[MRCLXQD.*+][a-z0-9 =._]{0,40}", 0..20)
    ) {
        let src = lines.join("\n");
        let _ = parse_spice(&src);
    }
}

/// A parse error must render a message, and when it carries a source
/// location, that location must be a real line of the input.
fn prop_assert_parse_error_is_located(
    e: &ParseNetlistError,
    line_count: usize,
) -> Result<(), TestCaseError> {
    prop_assert!(!e.to_string().is_empty());
    let line = match e {
        ParseNetlistError::MalformedCard { line, .. }
        | ParseNetlistError::BadNumber { line, .. }
        | ParseNetlistError::UnmatchedEnds { line }
        | ParseNetlistError::NestedSubckt { line }
        | ParseNetlistError::DuplicateSubckt { line, .. }
        | ParseNetlistError::CardOutsideSubckt { line } => Some(*line),
        _ => None,
    };
    if let Some(line) = line {
        prop_assert!(
            (1..=line_count).contains(&line),
            "error names line {line}, input has {line_count}"
        );
    }
    Ok(())
}

/// Strategy: a random single-subckt netlist with MOS devices and passives.
fn arb_netlist() -> impl Strategy<Value = Netlist> {
    let dev = (0usize..7, 1u32..5, 1u32..5).prop_map(|(t, w, l)| {
        let types = [
            DeviceType::Nch,
            DeviceType::NchLvt,
            DeviceType::Pch,
            DeviceType::PchLvt,
            DeviceType::Resistor,
            DeviceType::Capacitor,
            DeviceType::CfmomCapacitor,
        ];
        (types[t], f64::from(w), f64::from(l))
    });
    prop::collection::vec(dev, 1..12).prop_map(|devs| {
        let mut leaf = Subckt::new("leaf", ["a", "b", "vdd", "vss"]);
        for (i, (t, w, l)) in devs.into_iter().enumerate() {
            let nets = ["a", "b", "vdd", "vss"];
            let pins: Vec<String> = (0..t.pin_count())
                .map(|p| nets[(i + p) % nets.len()].to_owned())
                .collect();
            let prefix = match t {
                t if t.is_mos() => "M",
                DeviceType::Resistor => "R",
                _ => "C",
            };
            let name = format!("{prefix}{i}");
            let mut d = Device::new(name, t, pins, Geometry::new(l, w)).expect("pin count matches");
            if t.is_mos() {
                d.bulk = Some("vss".to_owned());
            }
            leaf.push_device(d).expect("unique names");
        }
        let mut top = Subckt::new("top", ["x", "y", "vdd", "vss"]);
        for k in 0..2 {
            top.push_instance(Instance {
                name: format!("X{k}"),
                subckt: "leaf".into(),
                connections: vec!["x".into(), "y".into(), "vdd".into(), "vss".into()],
            })
            .expect("unique names");
        }
        let mut nl = Netlist::new("top");
        nl.add_subckt(leaf).expect("fresh library");
        nl.add_subckt(top).expect("fresh library");
        nl
    })
}

proptest! {
    /// write → parse preserves template structure.
    #[test]
    fn writer_round_trips(nl in arb_netlist()) {
        let text = write_spice(&nl);
        let back = parse_spice(&text).expect("writer output parses");
        prop_assert_eq!(back.top(), nl.top());
        for sub in nl.iter() {
            let b = back.subckt(&sub.name).expect("template survives");
            prop_assert_eq!(b.devices().count(), sub.devices().count());
            prop_assert_eq!(b.instances().count(), sub.instances().count());
        }
    }

    /// Dropping any one line from a valid netlist never panics in the
    /// parser or the elaborator, and any parse error points at a real
    /// source line.
    #[test]
    fn mutated_netlist_line_drop_never_panics(nl in arb_netlist(), pick in 0usize..4096) {
        let text = write_spice(&nl);
        let mut lines: Vec<&str> = text.lines().collect();
        lines.remove(pick % lines.len());
        let mutated = lines.join("\n");
        match parse_spice(&mutated) {
            Ok(back) => { let _ = FlatCircuit::elaborate(&back); }
            Err(e) => prop_assert_parse_error_is_located(&e, lines.len())?,
        }
    }

    /// Dropping any one token from any one card never panics, and the
    /// error (if any) names the offending line or device.
    #[test]
    fn mutated_netlist_token_drop_never_panics(
        nl in arb_netlist(),
        pick_line in 0usize..4096,
        pick_token in 0usize..4096,
    ) {
        let text = write_spice(&nl);
        let mut lines: Vec<String> = text.lines().map(str::to_owned).collect();
        let i = pick_line % lines.len();
        let mut tokens: Vec<&str> = lines[i].split_whitespace().collect();
        if !tokens.is_empty() {
            tokens.remove(pick_token % tokens.len());
            lines[i] = tokens.join(" ");
        }
        let mutated = lines.join("\n");
        match parse_spice(&mutated) {
            Ok(back) => {
                if let Err(e) = FlatCircuit::elaborate(&back) {
                    prop_assert!(!e.to_string().is_empty());
                }
            }
            Err(e) => prop_assert_parse_error_is_located(&e, lines.len())?,
        }
    }

    /// Overwriting any one character with arbitrary printable ASCII
    /// never panics anywhere in parse → elaborate.
    #[test]
    fn mutated_netlist_char_flip_never_panics(
        nl in arb_netlist(),
        pick in 0usize..4096,
        replacement in 0x20u8..0x7F,
    ) {
        let text = write_spice(&nl);
        let mut chars: Vec<char> = text.chars().collect();
        let i = pick % chars.len();
        chars[i] = char::from(replacement);
        let mutated: String = chars.into_iter().collect();
        match parse_spice(&mutated) {
            Ok(back) => { let _ = FlatCircuit::elaborate(&back); }
            Err(e) => prop_assert_parse_error_is_located(&e, mutated.lines().count())?,
        }
    }

    /// Elaboration invariants: device count is (leaf devices × instances),
    /// every node's span nests inside its parent's, and DFS leaf order
    /// matches the device list.
    #[test]
    fn elaboration_invariants(nl in arb_netlist()) {
        let flat = FlatCircuit::elaborate(&nl).expect("valid by construction");
        let per_leaf = nl.subckt("leaf").expect("exists").devices().count();
        prop_assert_eq!(flat.devices().len(), 2 * per_leaf);
        for n in flat.nodes() {
            if let Some(p) = n.parent {
                let ps = flat.node(p).device_span;
                prop_assert!(ps.0 <= n.device_span.0 && n.device_span.1 <= ps.1);
            }
            if let Some(i) = n.device_index() {
                prop_assert_eq!(flat.devices()[i].node, n.id);
            }
        }
    }
}
