//! The top-level netlist container: a library of subcircuit templates and
//! a designated top cell.

use std::collections::HashMap;

use crate::error::ElaborateError;
use crate::subckt::Subckt;

/// A hierarchical netlist `N`: subcircuit templates plus the name of the
/// top cell whose elaboration yields the hierarchy tree `T` of Problem 1.
///
/// # Example
///
/// ```
/// use ancstr_netlist::{Netlist, Subckt};
///
/// let mut n = Netlist::new("top");
/// n.add_subckt(Subckt::new("top", ["vin", "vout"]))?;
/// assert!(n.subckt("top").is_some());
/// # Ok::<(), ancstr_netlist::ElaborateError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Netlist {
    top: String,
    subckts: Vec<Subckt>,
    index: HashMap<String, usize>,
}

impl Netlist {
    /// A new netlist whose top cell is `top` (which may be added later).
    pub fn new(top: impl Into<String>) -> Netlist {
        Netlist { top: top.into(), subckts: Vec::new(), index: HashMap::new() }
    }

    /// The name of the top cell.
    pub fn top(&self) -> &str {
        &self.top
    }

    /// Redesignate the top cell.
    pub fn set_top(&mut self, top: impl Into<String>) {
        self.top = top.into();
    }

    /// Add a template to the library.
    ///
    /// # Errors
    ///
    /// Returns [`ElaborateError::DuplicateElement`] if a template with the
    /// same name already exists (template names are the "element"
    /// namespace of the library).
    pub fn add_subckt(&mut self, subckt: Subckt) -> Result<(), ElaborateError> {
        if self.index.contains_key(&subckt.name) {
            return Err(ElaborateError::DuplicateElement {
                subckt: "<library>".to_owned(),
                name: subckt.name.clone(),
            });
        }
        self.index.insert(subckt.name.clone(), self.subckts.len());
        self.subckts.push(subckt);
        Ok(())
    }

    /// Look up a template by name.
    pub fn subckt(&self, name: &str) -> Option<&Subckt> {
        self.index.get(name).map(|&i| &self.subckts[i])
    }

    /// Mutable lookup of a template by name.
    pub fn subckt_mut(&mut self, name: &str) -> Option<&mut Subckt> {
        self.index.get(name).map(|&i| &mut self.subckts[i])
    }

    /// The top template, if defined.
    pub fn top_subckt(&self) -> Option<&Subckt> {
        self.subckt(&self.top)
    }

    /// Iterator over all templates in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Subckt> {
        self.subckts.iter()
    }

    /// Number of templates.
    pub fn len(&self) -> usize {
        self.subckts.len()
    }

    /// Whether the library is empty.
    pub fn is_empty(&self) -> bool {
        self.subckts.is_empty()
    }

    /// Validate the whole library: every instance references a defined
    /// template with a matching port count, annotations name real
    /// elements, and the hierarchy is acyclic.
    ///
    /// # Errors
    ///
    /// Returns the first [`ElaborateError`] found.
    pub fn validate(&self) -> Result<(), ElaborateError> {
        for s in &self.subckts {
            s.validate_annotations()?;
            for inst in s.instances() {
                let Some(t) = self.subckt(&inst.subckt) else {
                    return Err(ElaborateError::UnknownSubckt {
                        instance: format!("{}/{}", s.name, inst.name),
                        subckt: inst.subckt.clone(),
                    });
                };
                if t.ports.len() != inst.connections.len() {
                    return Err(ElaborateError::PortCountMismatch {
                        instance: format!("{}/{}", s.name, inst.name),
                        expected: t.ports.len(),
                        found: inst.connections.len(),
                    });
                }
            }
        }
        self.check_acyclic()
    }

    /// Detect recursion in the template instantiation graph via a
    /// three-colour DFS.
    fn check_acyclic(&self) -> Result<(), ElaborateError> {
        #[derive(Clone, Copy, PartialEq)]
        enum Colour {
            White,
            Grey,
            Black,
        }
        let mut colour = vec![Colour::White; self.subckts.len()];

        fn visit(
            nl: &Netlist,
            i: usize,
            colour: &mut [Colour],
        ) -> Result<(), ElaborateError> {
            colour[i] = Colour::Grey;
            for inst in nl.subckts[i].instances() {
                if let Some(&j) = nl.index.get(&inst.subckt) {
                    match colour[j] {
                        Colour::Grey => {
                            return Err(ElaborateError::RecursiveHierarchy {
                                subckt: nl.subckts[j].name.clone(),
                            })
                        }
                        Colour::White => visit(nl, j, colour)?,
                        Colour::Black => {}
                    }
                }
            }
            colour[i] = Colour::Black;
            Ok(())
        }

        for i in 0..self.subckts.len() {
            if colour[i] == Colour::White {
                visit(self, i, &mut colour)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subckt::Instance;

    #[test]
    fn duplicate_template_rejected() {
        let mut n = Netlist::new("top");
        n.add_subckt(Subckt::new("a", ["p"])).unwrap();
        assert!(n.add_subckt(Subckt::new("a", ["p"])).is_err());
    }

    #[test]
    fn validate_finds_unknown_subckt() {
        let mut n = Netlist::new("top");
        let mut top = Subckt::new("top", ["p"]);
        top.push_instance(Instance {
            name: "X1".into(),
            subckt: "ghost".into(),
            connections: vec!["p".into()],
        })
        .unwrap();
        n.add_subckt(top).unwrap();
        assert!(matches!(
            n.validate(),
            Err(ElaborateError::UnknownSubckt { .. })
        ));
    }

    #[test]
    fn validate_finds_port_mismatch() {
        let mut n = Netlist::new("top");
        n.add_subckt(Subckt::new("leaf", ["a", "b"])).unwrap();
        let mut top = Subckt::new("top", ["p"]);
        top.push_instance(Instance {
            name: "X1".into(),
            subckt: "leaf".into(),
            connections: vec!["p".into()],
        })
        .unwrap();
        n.add_subckt(top).unwrap();
        assert!(matches!(
            n.validate(),
            Err(ElaborateError::PortCountMismatch { expected: 2, found: 1, .. })
        ));
    }

    #[test]
    fn validate_detects_recursion() {
        let mut n = Netlist::new("a");
        let mut a = Subckt::new("a", ["p"]);
        a.push_instance(Instance {
            name: "X1".into(),
            subckt: "b".into(),
            connections: vec!["p".into()],
        })
        .unwrap();
        let mut b = Subckt::new("b", ["p"]);
        b.push_instance(Instance {
            name: "X1".into(),
            subckt: "a".into(),
            connections: vec!["p".into()],
        })
        .unwrap();
        n.add_subckt(a).unwrap();
        n.add_subckt(b).unwrap();
        assert!(matches!(
            n.validate(),
            Err(ElaborateError::RecursiveHierarchy { .. })
        ));
    }

    #[test]
    fn lookup_and_iteration() {
        let mut n = Netlist::new("top");
        n.add_subckt(Subckt::new("top", ["p"])).unwrap();
        n.add_subckt(Subckt::new("leaf", ["q"])).unwrap();
        assert_eq!(n.len(), 2);
        assert!(!n.is_empty());
        assert_eq!(n.top_subckt().unwrap().name, "top");
        assert_eq!(n.iter().count(), 2);
        n.subckt_mut("leaf").unwrap().ports.push("r".into());
        assert_eq!(n.subckt("leaf").unwrap().ports.len(), 2);
    }
}
