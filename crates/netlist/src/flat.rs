//! Elaboration: expand a hierarchical [`Netlist`] into a flat device/net
//! list plus the hierarchy tree `T` of Problem 1.
//!
//! The tree's internal nodes are *building blocks* (subcircuit instances)
//! and its leaves are *primitive elements* (devices). Devices are laid out
//! in DFS order so every node's descendant devices form a contiguous
//! range, which makes per-subcircuit multigraph extraction cheap.

use std::collections::HashMap;
use std::fmt;

use crate::constraint::{ConstraintSet, SymmetryConstraint, SymmetryKind};
use crate::device::{DeviceType, Geometry, PortType};
use crate::error::ElaborateError;
use crate::netlist::Netlist;
use crate::subckt::{CircuitClass, Element, Subckt};

/// Identifier of a node in the elaborated hierarchy tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HierNodeId(pub usize);

impl fmt::Display for HierNodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Identifier of a global (elaborated) net.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub usize);

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// What a hierarchy node is: a building block or a primitive element.
#[derive(Debug, Clone, PartialEq)]
pub enum HierNodeKind {
    /// An instance of a subcircuit template.
    Block {
        /// Template name.
        subckt: String,
        /// Functional class of the template.
        class: CircuitClass,
    },
    /// A primitive device; the payload indexes [`FlatCircuit::devices`].
    Device(usize),
}

/// The *module type* of a hierarchy node, used by the valid-pair rule
/// ("nonidentical types is considered invalid", Section III-A).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ModuleType {
    /// A primitive device of the given type.
    Device(DeviceType),
    /// A building block of the given class.
    Block(CircuitClass),
}

/// A node of the elaborated hierarchy tree `T`.
#[derive(Debug, Clone, PartialEq)]
pub struct HierNode {
    /// This node's id.
    pub id: HierNodeId,
    /// Local element name (instance or device name); the root uses the
    /// top template's name.
    pub name: String,
    /// Full hierarchical path (`top/X1/M2`).
    pub path: String,
    /// Block or device.
    pub kind: HierNodeKind,
    /// Parent node (`None` for the root).
    pub parent: Option<HierNodeId>,
    /// Children in declaration order (empty for devices).
    pub children: Vec<HierNodeId>,
    /// Half-open range of flat-device indices beneath this node.
    pub device_span: (usize, usize),
    /// Depth in the tree (root = 0).
    pub depth: usize,
}

impl HierNode {
    /// Whether this node is a building block (internal node).
    pub fn is_block(&self) -> bool {
        matches!(self.kind, HierNodeKind::Block { .. })
    }

    /// Whether this node is a primitive device (leaf).
    pub fn is_device(&self) -> bool {
        matches!(self.kind, HierNodeKind::Device(_))
    }

    /// The flat-device index, if this node is a device.
    pub fn device_index(&self) -> Option<usize> {
        match self.kind {
            HierNodeKind::Device(i) => Some(i),
            HierNodeKind::Block { .. } => None,
        }
    }

    /// Number of devices beneath (or at) this node.
    pub fn device_count(&self) -> usize {
        self.device_span.1 - self.device_span.0
    }
}

/// A fully elaborated (flattened) device with globally resolved nets.
#[derive(Debug, Clone, PartialEq)]
pub struct FlatDevice {
    /// Full hierarchical path (`top/X1/M2`).
    pub path: String,
    /// Device type.
    pub dtype: DeviceType,
    /// Shape parameters.
    pub geometry: Geometry,
    /// Component value where applicable.
    pub value: Option<f64>,
    /// Device multiplier.
    pub multiplier: u32,
    /// Globally resolved nets, one per typed pin.
    pub pins: Vec<NetId>,
    /// Globally resolved bulk net, if any.
    pub bulk: Option<NetId>,
    /// The hierarchy leaf representing this device.
    pub node: HierNodeId,
}

impl FlatDevice {
    /// Iterator over `(net, port_type)` pairs for the typed pins.
    pub fn typed_pins(&self) -> impl Iterator<Item = (NetId, PortType)> + '_ {
        self.pins
            .iter()
            .copied()
            .zip(self.dtype.port_types().iter().copied())
    }
}

/// The elaborated design: flat devices, global nets, the hierarchy tree,
/// and the expanded ground-truth constraints.
#[derive(Debug, Clone, PartialEq)]
pub struct FlatCircuit {
    devices: Vec<FlatDevice>,
    net_names: Vec<String>,
    nodes: Vec<HierNode>,
    root: HierNodeId,
    ground_truth: ConstraintSet,
}

impl FlatCircuit {
    /// Elaborate a netlist from its top cell.
    ///
    /// # Errors
    ///
    /// Propagates any [`ElaborateError`] from validation (unknown
    /// templates, port/pin mismatches, recursion, bad annotations).
    pub fn elaborate(netlist: &Netlist) -> Result<FlatCircuit, ElaborateError> {
        netlist.validate()?;
        let top = netlist.top_subckt().ok_or_else(|| ElaborateError::UnknownSubckt {
            instance: "<top>".to_owned(),
            subckt: netlist.top().to_owned(),
        })?;

        let mut b = Builder {
            netlist,
            devices: Vec::new(),
            net_names: Vec::new(),
            nodes: Vec::new(),
            ground_truth: Vec::new(),
        };

        // Root node for the top cell.
        let root = b.new_node(
            top.name.clone(),
            top.name.clone(),
            HierNodeKind::Block { subckt: top.name.clone(), class: top.class.clone() },
            None,
            0,
        );
        // Top-level ports get fresh global nets named after themselves.
        let mut port_map = HashMap::new();
        for p in &top.ports {
            let id = b.new_net(p.clone());
            port_map.insert(p.clone(), id);
        }
        b.expand(top, root, &top.name.clone(), port_map, 0)?;

        let mut flat = FlatCircuit {
            devices: b.devices,
            net_names: b.net_names,
            nodes: b.nodes,
            root,
            ground_truth: ConstraintSet::new(),
        };
        // Classify and register ground truth now that the tree exists.
        let gt: Vec<SymmetryConstraint> = b
            .ground_truth
            .iter()
            .map(|&(tc, a, bnode)| {
                let kind = flat.classify_pair(tc, a, bnode);
                SymmetryConstraint::new(tc, a, bnode, kind)
            })
            .collect();
        flat.ground_truth = gt.into_iter().collect();
        Ok(flat)
    }

    /// The flattened devices in DFS order.
    pub fn devices(&self) -> &[FlatDevice] {
        &self.devices
    }

    /// All hierarchy nodes, indexed by [`HierNodeId`].
    pub fn nodes(&self) -> &[HierNode] {
        &self.nodes
    }

    /// A node by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this circuit.
    pub fn node(&self, id: HierNodeId) -> &HierNode {
        &self.nodes[id.0]
    }

    /// The root (top cell) node.
    pub fn root(&self) -> &HierNode {
        &self.nodes[self.root.0]
    }

    /// Number of global nets.
    pub fn net_count(&self) -> usize {
        self.net_names.len()
    }

    /// Name of a global net.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this circuit.
    pub fn net_name(&self, id: NetId) -> &str {
        &self.net_names[id.0]
    }

    /// The designer ground-truth constraints, expanded per instance.
    pub fn ground_truth(&self) -> &ConstraintSet {
        &self.ground_truth
    }

    /// Indices of the flat devices beneath `node` (contiguous DFS range).
    pub fn subtree_device_indices(&self, node: HierNodeId) -> std::ops::Range<usize> {
        let n = self.node(node);
        n.device_span.0..n.device_span.1
    }

    /// Iterator over block (internal) nodes in DFS order.
    pub fn blocks(&self) -> impl Iterator<Item = &HierNode> {
        self.nodes.iter().filter(|n| n.is_block())
    }

    /// The module type of a node (device type for leaves, circuit class
    /// for blocks).
    pub fn module_type(&self, id: HierNodeId) -> ModuleType {
        match &self.node(id).kind {
            HierNodeKind::Device(i) => ModuleType::Device(self.devices[*i].dtype),
            HierNodeKind::Block { class, .. } => ModuleType::Block(class.clone()),
        }
    }

    /// Classify the pair `{a, b}` under `tc` as system- or device-level
    /// per Section III-A: system-level when the pair are building blocks,
    /// or are passive devices while other subcircuits exist under `T_c`;
    /// device-level otherwise.
    pub fn classify_pair(&self, tc: HierNodeId, a: HierNodeId, b: HierNodeId) -> SymmetryKind {
        let both_blocks = self.node(a).is_block() && self.node(b).is_block();
        if both_blocks {
            return SymmetryKind::System;
        }
        let has_sub_blocks = self
            .node(tc)
            .children
            .iter()
            .any(|&c| self.node(c).is_block());
        let both_passive = [a, b].iter().all(|&n| match self.module_type(n) {
            ModuleType::Device(t) => t.is_passive(),
            ModuleType::Block(_) => false,
        });
        if has_sub_blocks && both_passive {
            SymmetryKind::System
        } else {
            SymmetryKind::Device
        }
    }

    /// Look up a hierarchy node by full path.
    pub fn node_by_path(&self, path: &str) -> Option<&HierNode> {
        self.nodes.iter().find(|n| n.path == path)
    }

    /// Size of the largest proper subcircuit (block other than the root),
    /// in devices — the `|N̂_sub|` of Eq. 4. Zero when the design is flat.
    pub fn max_subcircuit_size(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.is_block() && n.id != self.root)
            .map(HierNode::device_count)
            .max()
            .unwrap_or(0)
    }
}

/// Intermediate state while expanding the instance tree.
struct Builder<'a> {
    netlist: &'a Netlist,
    devices: Vec<FlatDevice>,
    net_names: Vec<String>,
    nodes: Vec<HierNode>,
    /// (T_c, a, b) triples collected before kinds can be classified.
    ground_truth: Vec<(HierNodeId, HierNodeId, HierNodeId)>,
}

impl<'a> Builder<'a> {
    fn new_net(&mut self, name: String) -> NetId {
        let id = NetId(self.net_names.len());
        self.net_names.push(name);
        id
    }

    fn new_node(
        &mut self,
        name: String,
        path: String,
        kind: HierNodeKind,
        parent: Option<HierNodeId>,
        depth: usize,
    ) -> HierNodeId {
        let id = HierNodeId(self.nodes.len());
        let span_start = self.devices.len();
        self.nodes.push(HierNode {
            id,
            name,
            path,
            kind,
            parent,
            children: Vec::new(),
            device_span: (span_start, span_start),
            depth,
        });
        if let Some(p) = parent {
            self.nodes[p.0].children.push(id);
        }
        id
    }

    /// Expand `subckt`'s body under tree node `node` at hierarchical
    /// `path`, with `port_map` resolving local net names that are ports.
    fn expand(
        &mut self,
        subckt: &Subckt,
        node: HierNodeId,
        path: &str,
        port_map: HashMap<String, NetId>,
        depth: usize,
    ) -> Result<(), ElaborateError> {
        // Resolve every local net: ports via the map, internals fresh.
        let mut net_of: HashMap<String, NetId> = port_map;
        for local in subckt.nets() {
            if let std::collections::hash_map::Entry::Vacant(slot) = net_of.entry(local) {
                let name = format!("{path}/{}", slot.key());
                let id = NetId(self.net_names.len());
                self.net_names.push(name);
                slot.insert(id);
            }
        }

        let mut child_of_element: HashMap<&str, HierNodeId> = HashMap::new();

        for element in &subckt.elements {
            match element {
                Element::Device(d) => {
                    let dev_path = format!("{path}/{}", d.name);
                    let dev_index = self.devices.len();
                    let child = self.new_node(
                        d.name.clone(),
                        dev_path.clone(),
                        HierNodeKind::Device(dev_index),
                        Some(node),
                        depth + 1,
                    );
                    let pins = d.pins.iter().map(|n| net_of[n.as_str()]).collect();
                    let bulk = d.bulk.as_ref().map(|n| net_of[n.as_str()]);
                    self.devices.push(FlatDevice {
                        path: dev_path,
                        dtype: d.dtype,
                        geometry: d.geometry,
                        value: d.value,
                        multiplier: d.multiplier,
                        pins,
                        bulk,
                        node: child,
                    });
                    self.nodes[child.0].device_span = (dev_index, dev_index + 1);
                    child_of_element.insert(d.name.as_str(), child);
                }
                Element::Instance(inst) => {
                    let template = self
                        .netlist
                        .subckt(&inst.subckt)
                        .expect("netlist validated before expansion");
                    let inst_path = format!("{path}/{}", inst.name);
                    let child = self.new_node(
                        inst.name.clone(),
                        inst_path.clone(),
                        HierNodeKind::Block {
                            subckt: template.name.clone(),
                            class: template.class.clone(),
                        },
                        Some(node),
                        depth + 1,
                    );
                    let child_ports: HashMap<String, NetId> = template
                        .ports
                        .iter()
                        .zip(&inst.connections)
                        .map(|(port, net)| (port.clone(), net_of[net.as_str()]))
                        .collect();
                    self.expand(template, child, &inst_path, child_ports, depth + 1)?;
                    let end = self.devices.len();
                    let start = self.nodes[child.0].device_span.0;
                    self.nodes[child.0].device_span = (start, end);
                    child_of_element.insert(inst.name.as_str(), child);
                }
            }
        }

        // Expand designer annotations into per-instance ground truth.
        for (a, b) in &subckt.sym_pairs {
            let (Some(&na), Some(&nb)) = (
                child_of_element.get(a.as_str()),
                child_of_element.get(b.as_str()),
            ) else {
                return Err(ElaborateError::UnknownSymmetryElement {
                    subckt: subckt.name.clone(),
                    element: if child_of_element.contains_key(a.as_str()) {
                        b.clone()
                    } else {
                        a.clone()
                    },
                });
            };
            self.ground_truth.push((node, na, nb));
        }

        // Close this node's device span.
        let end = self.devices.len();
        let start = self.nodes[node.0].device_span.0;
        self.nodes[node.0].device_span = (start, end);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Device;
    use crate::subckt::Instance;

    /// Two-level fixture: top instantiates `inv` twice and holds one cap.
    fn fixture() -> Netlist {
        let mut nl = Netlist::new("top");
        let mut inv = Subckt::new("inv", ["in", "out", "vdd", "vss"]);
        inv.class = CircuitClass::Inverter;
        inv.push_device(
            Device::new(
                "Mp",
                DeviceType::PchLvt,
                vec!["out".into(), "in".into(), "vdd".into()],
                Geometry::new(0.1, 2.0),
            )
            .unwrap(),
        )
        .unwrap();
        inv.push_device(
            Device::new(
                "Mn",
                DeviceType::NchLvt,
                vec!["out".into(), "in".into(), "vss".into()],
                Geometry::new(0.1, 1.0),
            )
            .unwrap(),
        )
        .unwrap();
        inv.annotate_symmetry("Mp", "Mn");
        nl.add_subckt(inv).unwrap();

        let mut top = Subckt::new("top", ["a", "y", "vdd", "vss"]);
        top.push_instance(Instance {
            name: "X1".into(),
            subckt: "inv".into(),
            connections: vec!["a".into(), "mid".into(), "vdd".into(), "vss".into()],
        })
        .unwrap();
        top.push_instance(Instance {
            name: "X2".into(),
            subckt: "inv".into(),
            connections: vec!["mid".into(), "y".into(), "vdd".into(), "vss".into()],
        })
        .unwrap();
        top.push_device(
            Device::new(
                "C1",
                DeviceType::Capacitor,
                vec!["y".into(), "vss".into()],
                Geometry::new(5.0, 5.0),
            )
            .unwrap(),
        )
        .unwrap();
        top.annotate_symmetry("X1", "X2");
        nl.add_subckt(top).unwrap();
        nl
    }

    #[test]
    fn elaborates_counts_and_paths() {
        let flat = FlatCircuit::elaborate(&fixture()).unwrap();
        assert_eq!(flat.devices().len(), 5);
        // Nets: a, y, vdd, vss, mid = 5 globals (inv internals all map to ports).
        assert_eq!(flat.net_count(), 5);
        assert!(flat.node_by_path("top/X1/Mp").is_some());
        assert!(flat.node_by_path("top/X2/Mn").is_some());
        assert!(flat.node_by_path("top/C1").is_some());
    }

    #[test]
    fn device_spans_are_contiguous_and_nested() {
        let flat = FlatCircuit::elaborate(&fixture()).unwrap();
        let root = flat.root();
        assert_eq!(root.device_span, (0, 5));
        let x1 = flat.node_by_path("top/X1").unwrap();
        let x2 = flat.node_by_path("top/X2").unwrap();
        assert_eq!(x1.device_count(), 2);
        assert_eq!(x2.device_count(), 2);
        assert!(x1.device_span.1 <= x2.device_span.0);
        // Child spans are inside the parent span.
        for n in flat.nodes() {
            if let Some(p) = n.parent {
                let ps = flat.node(p).device_span;
                assert!(ps.0 <= n.device_span.0 && n.device_span.1 <= ps.1);
            }
        }
    }

    #[test]
    fn nets_resolve_across_hierarchy() {
        let flat = FlatCircuit::elaborate(&fixture()).unwrap();
        // X1's output and X2's input are the same global net `mid`.
        let x1_mp = flat.node_by_path("top/X1/Mp").unwrap();
        let x2_mp = flat.node_by_path("top/X2/Mp").unwrap();
        let d1 = &flat.devices()[x1_mp.device_index().unwrap()];
        let d2 = &flat.devices()[x2_mp.device_index().unwrap()];
        // d1 drain (pin 0) = mid; d2 gate (pin 1) = mid.
        assert_eq!(d1.pins[0], d2.pins[1]);
        assert_eq!(flat.net_name(d1.pins[0]), "top/mid");
    }

    #[test]
    fn ground_truth_expands_per_instance() {
        let flat = FlatCircuit::elaborate(&fixture()).unwrap();
        // One (Mp, Mn) pair per inv instance + one (X1, X2) system pair.
        assert_eq!(flat.ground_truth().len(), 3);
        let x1 = flat.node_by_path("top/X1").unwrap().id;
        let x2 = flat.node_by_path("top/X2").unwrap().id;
        let c = flat.ground_truth().get(x1, x2).unwrap();
        assert_eq!(c.kind, SymmetryKind::System);
        let mp = flat.node_by_path("top/X1/Mp").unwrap().id;
        let mn = flat.node_by_path("top/X1/Mn").unwrap().id;
        assert_eq!(flat.ground_truth().get(mp, mn).unwrap().kind, SymmetryKind::Device);
    }

    #[test]
    fn classify_passives_among_blocks_as_system() {
        // Add two matched caps at top level (next to the inverters).
        let mut nl = fixture();
        let top = nl.subckt_mut("top").unwrap();
        top.push_device(
            Device::new(
                "C2",
                DeviceType::Capacitor,
                vec!["a".into(), "vss".into()],
                Geometry::new(5.0, 5.0),
            )
            .unwrap(),
        )
        .unwrap();
        let flat = FlatCircuit::elaborate(&nl).unwrap();
        let c1 = flat.node_by_path("top/C1").unwrap().id;
        let c2 = flat.node_by_path("top/C2").unwrap().id;
        let root = flat.root().id;
        assert_eq!(flat.classify_pair(root, c1, c2), SymmetryKind::System);
        // But a MOS pair inside inv (no blocks under inv) is device-level.
        let mp = flat.node_by_path("top/X1/Mp").unwrap().id;
        let mn = flat.node_by_path("top/X1/Mn").unwrap().id;
        let x1 = flat.node_by_path("top/X1").unwrap().id;
        assert_eq!(flat.classify_pair(x1, mp, mn), SymmetryKind::Device);
    }

    #[test]
    fn module_types_distinguish_leaves_and_blocks() {
        let flat = FlatCircuit::elaborate(&fixture()).unwrap();
        let x1 = flat.node_by_path("top/X1").unwrap().id;
        let c1 = flat.node_by_path("top/C1").unwrap().id;
        assert_eq!(
            flat.module_type(x1),
            ModuleType::Block(CircuitClass::Inverter)
        );
        assert_eq!(
            flat.module_type(c1),
            ModuleType::Device(DeviceType::Capacitor)
        );
    }

    #[test]
    fn max_subcircuit_size_ignores_root() {
        let flat = FlatCircuit::elaborate(&fixture()).unwrap();
        assert_eq!(flat.max_subcircuit_size(), 2);
    }

    #[test]
    fn blocks_iterator_lists_internal_nodes() {
        let flat = FlatCircuit::elaborate(&fixture()).unwrap();
        let names: Vec<_> = flat.blocks().map(|n| n.name.as_str()).collect();
        assert_eq!(names, vec!["top", "X1", "X2"]);
    }

    #[test]
    fn missing_top_is_an_error() {
        let nl = Netlist::new("ghost");
        assert!(FlatCircuit::elaborate(&nl).is_err());
    }
}
