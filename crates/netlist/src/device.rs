//! Primitive devices: the 15-way type taxonomy, port types, and geometry.

use std::fmt;
use std::str::FromStr;

/// The primitive device taxonomy used by the node-feature one-hot encoding.
///
/// The paper (Table II) reserves a 15-dimensional one-hot vector for the
/// device type. This enum enumerates exactly those 15 classes: six MOS
/// threshold-flavour classes, the common passives (including the `cfmom`
/// finger-MOM capacitor flavour the paper names explicitly), diodes,
/// bipolars, and a catch-all.
///
/// # Example
///
/// ```
/// use ancstr_netlist::DeviceType;
///
/// let t: DeviceType = "nch_lvt".parse()?;
/// assert_eq!(t, DeviceType::NchLvt);
/// assert!(t.is_mos());
/// assert_eq!(DeviceType::COUNT, 15);
/// # Ok::<(), ancstr_netlist::error::ParseDeviceTypeError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DeviceType {
    /// Standard-Vt NMOS transistor.
    Nch,
    /// Low-Vt NMOS transistor.
    NchLvt,
    /// High-Vt NMOS transistor.
    NchHvt,
    /// Standard-Vt PMOS transistor.
    Pch,
    /// Low-Vt PMOS transistor.
    PchLvt,
    /// High-Vt PMOS transistor.
    PchHvt,
    /// Native (zero-Vt) NMOS transistor.
    NchNative,
    /// Resistor (poly, diffusion, or metal).
    Resistor,
    /// Generic capacitor (MIM or MOS cap).
    Capacitor,
    /// Finger metal-oxide-metal capacitor (`cfmom`).
    CfmomCapacitor,
    /// Inductor.
    Inductor,
    /// Junction diode.
    Diode,
    /// NPN bipolar transistor.
    Npn,
    /// PNP bipolar transistor.
    Pnp,
    /// Any device not covered by the other fourteen classes.
    Other,
}

impl DeviceType {
    /// Number of device-type classes (the one-hot feature width).
    pub const COUNT: usize = 15;

    /// All device types in one-hot index order.
    pub const ALL: [DeviceType; Self::COUNT] = [
        DeviceType::Nch,
        DeviceType::NchLvt,
        DeviceType::NchHvt,
        DeviceType::Pch,
        DeviceType::PchLvt,
        DeviceType::PchHvt,
        DeviceType::NchNative,
        DeviceType::Resistor,
        DeviceType::Capacitor,
        DeviceType::CfmomCapacitor,
        DeviceType::Inductor,
        DeviceType::Diode,
        DeviceType::Npn,
        DeviceType::Pnp,
        DeviceType::Other,
    ];

    /// The index of this type in the one-hot encoding (0..15).
    pub fn one_hot_index(self) -> usize {
        Self::ALL
            .iter()
            .position(|&t| t == self)
            .expect("every DeviceType appears in ALL")
    }

    /// Whether this type is a MOS transistor (any flavour).
    pub fn is_mos(self) -> bool {
        matches!(
            self,
            DeviceType::Nch
                | DeviceType::NchLvt
                | DeviceType::NchHvt
                | DeviceType::Pch
                | DeviceType::PchLvt
                | DeviceType::PchHvt
                | DeviceType::NchNative
        )
    }

    /// Whether this type is an n-channel MOS transistor.
    pub fn is_nmos(self) -> bool {
        matches!(
            self,
            DeviceType::Nch | DeviceType::NchLvt | DeviceType::NchHvt | DeviceType::NchNative
        )
    }

    /// Whether this type is a p-channel MOS transistor.
    pub fn is_pmos(self) -> bool {
        matches!(self, DeviceType::Pch | DeviceType::PchLvt | DeviceType::PchHvt)
    }

    /// Whether this type is a passive two-terminal element
    /// (resistor, capacitor flavours, or inductor).
    ///
    /// The paper's system-level constraint definition admits passive
    /// devices next to building blocks, so this predicate is used by the
    /// valid-pair enumeration.
    pub fn is_passive(self) -> bool {
        matches!(
            self,
            DeviceType::Resistor
                | DeviceType::Capacitor
                | DeviceType::CfmomCapacitor
                | DeviceType::Inductor
        )
    }

    /// Whether this type is a bipolar transistor.
    pub fn is_bjt(self) -> bool {
        matches!(self, DeviceType::Npn | DeviceType::Pnp)
    }

    /// The port types of this device, in pin order.
    ///
    /// MOS pins follow the SPICE `D G S B` convention; the bulk pin is
    /// recorded in the netlist but — like the paper, which defines exactly
    /// four port types — does not contribute a typed graph edge, so it is
    /// absent here. BJTs map collector/base/emitter onto
    /// drain/gate/source; diodes map anode/cathode onto drain/source; all
    /// two-terminal passives use [`PortType::Passive`] on both ends.
    pub fn port_types(self) -> &'static [PortType] {
        use PortType::{Drain, Gate, Passive, Source};
        if self.is_mos() || self.is_bjt() {
            &[Drain, Gate, Source]
        } else if self == DeviceType::Diode {
            &[Drain, Source]
        } else {
            &[Passive, Passive]
        }
    }

    /// Number of electrically meaningful pins (excluding the MOS bulk).
    pub fn pin_count(self) -> usize {
        self.port_types().len()
    }

    /// Map a SPICE model name (e.g. `nch_lvt`, `pch`, `rppoly`, `cfmom`)
    /// to a device type. Unknown model names map to [`DeviceType::Other`].
    pub fn from_model_name(model: &str) -> DeviceType {
        let m = model.to_ascii_lowercase();
        match m.as_str() {
            "nch" | "nmos" | "nfet" | "nch_mac" => DeviceType::Nch,
            "nch_lvt" | "nmos_lvt" | "nfet_lvt" | "nlvt" => DeviceType::NchLvt,
            "nch_hvt" | "nmos_hvt" | "nfet_hvt" | "nhvt" => DeviceType::NchHvt,
            "pch" | "pmos" | "pfet" | "pch_mac" => DeviceType::Pch,
            "pch_lvt" | "pmos_lvt" | "pfet_lvt" | "plvt" => DeviceType::PchLvt,
            "pch_hvt" | "pmos_hvt" | "pfet_hvt" | "phvt" => DeviceType::PchHvt,
            "nch_na" | "nch_native" | "native" | "nat" => DeviceType::NchNative,
            "res" | "rppoly" | "rppolywo" | "rnpoly" | "rm" | "rupolym" => DeviceType::Resistor,
            "cap" | "mimcap" | "moscap" | "crtmom" => DeviceType::Capacitor,
            "cfmom" | "cfmom_2t" | "momcap" => DeviceType::CfmomCapacitor,
            "ind" | "spiral" | "indstd" => DeviceType::Inductor,
            "dio" | "diode" | "ndio" | "pdio" => DeviceType::Diode,
            "npn" | "bjtnpn" => DeviceType::Npn,
            "pnp" | "bjtpnp" => DeviceType::Pnp,
            _ => DeviceType::Other,
        }
    }

    /// Canonical model-name spelling used by the netlist writer.
    pub fn model_name(self) -> &'static str {
        match self {
            DeviceType::Nch => "nch",
            DeviceType::NchLvt => "nch_lvt",
            DeviceType::NchHvt => "nch_hvt",
            DeviceType::Pch => "pch",
            DeviceType::PchLvt => "pch_lvt",
            DeviceType::PchHvt => "pch_hvt",
            DeviceType::NchNative => "nch_native",
            DeviceType::Resistor => "res",
            DeviceType::Capacitor => "cap",
            DeviceType::CfmomCapacitor => "cfmom",
            DeviceType::Inductor => "ind",
            DeviceType::Diode => "diode",
            DeviceType::Npn => "npn",
            DeviceType::Pnp => "pnp",
            DeviceType::Other => "other",
        }
    }
}

impl fmt::Display for DeviceType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.model_name())
    }
}

impl FromStr for DeviceType {
    type Err = crate::error::ParseDeviceTypeError;

    /// Parses a model name. Unlike [`DeviceType::from_model_name`], an
    /// unknown name is an error rather than [`DeviceType::Other`], so
    /// callers that require a known flavour can detect typos.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match DeviceType::from_model_name(s) {
            DeviceType::Other if !s.eq_ignore_ascii_case("other") => {
                Err(crate::error::ParseDeviceTypeError { name: s.to_owned() })
            }
            t => Ok(t),
        }
    }
}

/// The four port types of the heterogeneous multigraph (Section IV-A).
///
/// `P = {p_gate, p_drain, p_source, p_passive}`; a directed edge
/// `(u, v, τ_v)` is typed by the port of `v` it lands on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PortType {
    /// MOS gate (or BJT base).
    Gate,
    /// MOS drain (or BJT collector, diode anode).
    Drain,
    /// MOS source (or BJT emitter, diode cathode).
    Source,
    /// Either terminal of a two-terminal passive device.
    Passive,
}

impl PortType {
    /// Number of port types (the number of edge-type weight matrices in
    /// the GNN, `|W| = 4`).
    pub const COUNT: usize = 4;

    /// All port types, in index order.
    pub const ALL: [PortType; Self::COUNT] =
        [PortType::Gate, PortType::Drain, PortType::Source, PortType::Passive];

    /// The index of this port type (0..4), used to select the GNN weight
    /// matrix `W_{e_uv}`.
    pub fn index(self) -> usize {
        match self {
            PortType::Gate => 0,
            PortType::Drain => 1,
            PortType::Source => 2,
            PortType::Passive => 3,
        }
    }
}

impl fmt::Display for PortType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PortType::Gate => "gate",
            PortType::Drain => "drain",
            PortType::Source => "source",
            PortType::Passive => "passive",
        };
        f.write_str(s)
    }
}

/// Shape parameters of a device (Table II's "Geometry" and "Layer" rows).
///
/// Lengths and widths are in micrometres. `metal_layers` approximates the
/// vertical extent of MOM/MIM capacitors and is 1 for ordinary devices.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Geometry {
    /// Drawn length (µm). For passives without an explicit layout this is
    /// a value-derived proxy (see [`Geometry::from_value`]).
    pub length: f64,
    /// Drawn width (µm).
    pub width: f64,
    /// Number of metal layers used by the device (≥ 1).
    pub metal_layers: u32,
}

impl Geometry {
    /// A new geometry from explicit length/width in µm with a single
    /// metal layer.
    pub fn new(length: f64, width: f64) -> Geometry {
        Geometry { length, width, metal_layers: 1 }
    }

    /// A new geometry with an explicit metal-layer count (for MOM caps).
    pub fn with_layers(length: f64, width: f64, metal_layers: u32) -> Geometry {
        Geometry { length, width, metal_layers }
    }

    /// Derive a square-layout geometry proxy from a component value.
    ///
    /// Used when a SPICE card gives only a value (e.g. `C1 a b 100f`):
    /// the side is the square root of the value expressed in convenient
    /// units (fF for caps, kΩ for resistors, nH for inductors), so equal
    /// values produce equal geometry — which is all the matching features
    /// need.
    pub fn from_value(value: f64, unit_scale: f64) -> Geometry {
        let side = (value / unit_scale).abs().sqrt().max(1e-3);
        Geometry { length: side, width: side, metal_layers: 1 }
    }

    /// Device area (µm²).
    pub fn area(&self) -> f64 {
        self.length * self.width
    }
}

impl Default for Geometry {
    fn default() -> Geometry {
        Geometry { length: 1.0, width: 1.0, metal_layers: 1 }
    }
}

/// A primitive device inside a [`crate::Subckt`] template.
///
/// `pins` holds the *net names* (local to the owning subcircuit) in the
/// order of [`DeviceType::port_types`]; an optional bulk net is kept
/// separately since it never contributes a typed edge.
#[derive(Debug, Clone, PartialEq)]
pub struct Device {
    /// Instance name, unique within the owning subcircuit (e.g. `M1`).
    pub name: String,
    /// Device type.
    pub dtype: DeviceType,
    /// Connected nets, one per entry of [`DeviceType::port_types`].
    pub pins: Vec<String>,
    /// Optional bulk/body net (MOS only).
    pub bulk: Option<String>,
    /// Shape parameters.
    pub geometry: Geometry,
    /// Component value where applicable (Ω, F, or H).
    pub value: Option<f64>,
    /// Device multiplier (`m=` factor), defaults to 1.
    pub multiplier: u32,
}

impl Device {
    /// A new device; validates that the pin count matches the type.
    ///
    /// # Errors
    ///
    /// Returns [`crate::error::ElaborateError::PinCountMismatch`] when the
    /// number of pins differs from [`DeviceType::pin_count`].
    pub fn new(
        name: impl Into<String>,
        dtype: DeviceType,
        pins: Vec<String>,
        geometry: Geometry,
    ) -> Result<Device, crate::error::ElaborateError> {
        let name = name.into();
        if pins.len() != dtype.pin_count() {
            return Err(crate::error::ElaborateError::PinCountMismatch {
                device: name,
                expected: dtype.pin_count(),
                found: pins.len(),
            });
        }
        Ok(Device { name, dtype, pins, bulk: None, geometry, value: None, multiplier: 1 })
    }

    /// Iterator over `(net_name, port_type)` pairs for the typed pins.
    pub fn typed_pins(&self) -> impl Iterator<Item = (&str, PortType)> + '_ {
        self.pins
            .iter()
            .map(String::as_str)
            .zip(self.dtype.port_types().iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_hot_indices_are_unique_and_dense() {
        let mut seen = [false; DeviceType::COUNT];
        for t in DeviceType::ALL {
            let i = t.one_hot_index();
            assert!(!seen[i], "duplicate one-hot index {i}");
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn model_name_round_trips() {
        for t in DeviceType::ALL {
            assert_eq!(DeviceType::from_model_name(t.model_name()), t);
        }
    }

    #[test]
    fn from_str_rejects_unknown_models() {
        assert!("nch_lvt".parse::<DeviceType>().is_ok());
        assert!("frobnicator".parse::<DeviceType>().is_err());
        assert_eq!("other".parse::<DeviceType>().unwrap(), DeviceType::Other);
    }

    #[test]
    fn mos_predicates_partition() {
        for t in DeviceType::ALL {
            if t.is_mos() {
                assert!(t.is_nmos() ^ t.is_pmos());
                assert!(!t.is_passive() && !t.is_bjt());
            }
        }
        assert!(DeviceType::CfmomCapacitor.is_passive());
        assert!(DeviceType::Npn.is_bjt());
    }

    #[test]
    fn port_types_match_pin_counts() {
        assert_eq!(DeviceType::Nch.pin_count(), 3);
        assert_eq!(DeviceType::Resistor.pin_count(), 2);
        assert_eq!(DeviceType::Diode.pin_count(), 2);
        assert_eq!(DeviceType::Npn.pin_count(), 3);
        assert_eq!(
            DeviceType::Diode.port_types(),
            &[PortType::Drain, PortType::Source]
        );
    }

    #[test]
    fn port_type_indices_cover_0_to_3() {
        let mut seen = [false; PortType::COUNT];
        for p in PortType::ALL {
            seen[p.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn device_new_validates_pin_count() {
        let ok = Device::new(
            "M1",
            DeviceType::Nch,
            vec!["d".into(), "g".into(), "s".into()],
            Geometry::new(0.1, 1.0),
        );
        assert!(ok.is_ok());
        let bad = Device::new(
            "M2",
            DeviceType::Nch,
            vec!["d".into(), "g".into()],
            Geometry::default(),
        );
        assert!(bad.is_err());
    }

    #[test]
    fn geometry_from_value_is_monotonic_and_positive() {
        let small = Geometry::from_value(10e-15, 1e-15);
        let large = Geometry::from_value(100e-15, 1e-15);
        assert!(large.area() > small.area());
        assert!(small.length > 0.0);
    }

    #[test]
    fn typed_pins_pairs_nets_with_ports() {
        let d = Device::new(
            "M1",
            DeviceType::PchLvt,
            vec!["out".into(), "in".into(), "vdd".into()],
            Geometry::new(0.1, 2.0),
        )
        .unwrap();
        let pairs: Vec<_> = d.typed_pins().collect();
        assert_eq!(
            pairs,
            vec![
                ("out", PortType::Drain),
                ("in", PortType::Gate),
                ("vdd", PortType::Source)
            ]
        );
    }
}
