//! A SPICE-subset parser sufficient for AMS schematic netlists.
//!
//! Supported syntax:
//!
//! * `.subckt <name> <ports…>` / `.ends` blocks (non-nested);
//! * device cards `M` (MOS, `d g s b model`), `Q` (BJT, `c b e model`),
//!   `D` (diode, `a c model`), and two-terminal `R`/`C`/`L` cards with a
//!   value and/or model name;
//! * `X` instance cards (`Xname <nets…> <template>`);
//! * `key=value` parameters (`w`, `l`, `nf`, `m`, `layers`) with SI
//!   magnitude suffixes (see [`crate::units::parse_si_value`]);
//! * `.param name=value …` global parameters, referenced in values as a
//!   bare name, `'name'`, or `{name}`, with `*`-products of factors
//!   (`w='wn*2'`);
//! * continuation lines starting with `+`;
//! * pragmas: `*.class <tag>` (functional class), `*.symmetry <a> <b>`
//!   (designer ground truth), `*.selfsym <a>`;
//! * `.top <name>` designating the top cell, `.end`, comments (`*`) and
//!   trailing `$ …` comments.
//!
//! Dimensions: `w=`/`l=` values below 1 mm are interpreted as metres and
//! converted to µm (so `w=2u` is 2 µm); larger values are taken to be µm
//! already (so `w=2` also means 2 µm, matching common PDK usage).

use std::collections::{HashMap, HashSet};

use crate::device::{Device, DeviceType, Geometry};
use crate::error::ParseNetlistError;
use crate::netlist::Netlist;
use crate::subckt::{Instance, Subckt};
use crate::units::parse_si_value;

/// Parse a SPICE-subset netlist into a [`Netlist`].
///
/// The top cell is taken from a `.top` directive if present; otherwise it
/// is the unique subcircuit that is never instantiated, falling back to
/// the last-defined subcircuit.
///
/// # Errors
///
/// Returns a [`ParseNetlistError`] with a 1-based line number on
/// malformed cards, bad numbers, unbalanced `.subckt`/`.ends`, duplicate
/// definitions, or an undefined `.top` target.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use ancstr_netlist::parse::parse_spice;
///
/// let nl = parse_spice("\
/// .subckt dp inp inn out1 out2 tail vss
/// *.class ota
/// M1 out1 inp tail vss nch_lvt w=4u l=0.2u
/// M2 out2 inn tail vss nch_lvt w=4u l=0.2u
/// *.symmetry M1 M2
/// .ends
/// ")?;
/// let dp = nl.subckt("dp").expect("defined above");
/// assert_eq!(dp.devices().count(), 2);
/// assert_eq!(dp.sym_pairs.len(), 1);
/// # Ok(())
/// # }
/// ```
pub fn parse_spice(source: &str) -> Result<Netlist, ParseNetlistError> {
    let lines = join_continuations(source);
    let mut netlist = Netlist::new(String::new());
    let mut current: Option<Subckt> = None;
    let mut explicit_top: Option<(String, usize)> = None;
    let mut defined: Vec<String> = Vec::new();
    let mut names_seen: HashSet<String> = HashSet::new();
    let mut params: HashMap<String, f64> = HashMap::new();

    for (lineno, raw) in lines {
        let line = strip_comment(&raw);
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }

        // Pragmas ride on comment lines.
        if let Some(rest) = trimmed.strip_prefix("*.") {
            handle_pragma(rest, lineno, &mut current)?;
            continue;
        }
        if trimmed.starts_with('*') {
            continue;
        }

        let lower = trimmed.to_ascii_lowercase();
        if lower.starts_with('.') {
            let mut tok = trimmed.split_whitespace();
            let directive = tok.next().expect("non-empty").to_ascii_lowercase();
            match directive.as_str() {
                ".subckt" => {
                    if current.is_some() {
                        return Err(ParseNetlistError::NestedSubckt { line: lineno });
                    }
                    let name = tok
                        .next()
                        .ok_or_else(|| ParseNetlistError::MalformedCard {
                            line: lineno,
                            reason: ".subckt needs a name".to_owned(),
                        })?
                        .to_owned();
                    if !names_seen.insert(name.clone()) {
                        return Err(ParseNetlistError::DuplicateSubckt { line: lineno, name });
                    }
                    let ports: Vec<String> = tok.map(str::to_owned).collect();
                    current = Some(Subckt::new(name, ports));
                }
                ".ends" => {
                    let sub = current
                        .take()
                        .ok_or(ParseNetlistError::UnmatchedEnds { line: lineno })?;
                    defined.push(sub.name.clone());
                    netlist
                        .add_subckt(sub)
                        .expect("duplicate names rejected at .subckt");
                }
                ".top" => {
                    let name = tok
                        .next()
                        .ok_or_else(|| ParseNetlistError::MalformedCard {
                            line: lineno,
                            reason: ".top needs a name".to_owned(),
                        })?
                        .to_owned();
                    explicit_top = Some((name, lineno));
                }
                ".end" => {}
                ".param" => {
                    for assignment in tok {
                        let Some(eq) = assignment.find('=') else {
                            return Err(ParseNetlistError::MalformedCard {
                                line: lineno,
                                reason: format!(".param needs name=value, got `{assignment}`"),
                            });
                        };
                        let name = assignment[..eq].to_ascii_lowercase();
                        let value = eval_value(&assignment[eq + 1..], &params).ok_or_else(
                            || ParseNetlistError::BadNumber {
                                line: lineno,
                                token: assignment.to_owned(),
                            },
                        )?;
                        params.insert(name, value);
                    }
                }
                other => {
                    return Err(ParseNetlistError::MalformedCard {
                        line: lineno,
                        reason: format!("unsupported directive `{other}`"),
                    })
                }
            }
            continue;
        }

        // Device / instance card.
        let Some(sub) = current.as_mut() else {
            return Err(ParseNetlistError::CardOutsideSubckt { line: lineno });
        };
        parse_card(trimmed, lineno, sub, &params)?;
    }

    if let Some(sub) = current {
        return Err(ParseNetlistError::UnterminatedSubckt { name: sub.name });
    }

    let top = match explicit_top {
        Some((name, _)) => {
            if netlist.subckt(&name).is_none() {
                return Err(ParseNetlistError::MissingTop { name: Some(name) });
            }
            name
        }
        None => infer_top(&netlist, &defined)
            .ok_or(ParseNetlistError::MissingTop { name: None })?,
    };
    netlist.set_top(top);
    Ok(netlist)
}

/// Parse a netlist from a file, resolving `.include "other.sp"`
/// directives relative to each including file's directory.
///
/// Includes are textually inlined before parsing, with cycle detection
/// and a depth limit of 16.
///
/// # Errors
///
/// Returns [`ParseNetlistError::IncludeFailed`] on unreadable paths,
/// include cycles, or excessive nesting; otherwise any error of
/// [`parse_spice`]. Line numbers in errors refer to the *expanded* text.
pub fn parse_spice_file(path: impl AsRef<std::path::Path>) -> Result<Netlist, ParseNetlistError> {
    let path = path.as_ref();
    let mut visited = Vec::new();
    let text = expand_includes(path, &mut visited, 0)?;
    parse_spice(&text)
}

fn expand_includes(
    path: &std::path::Path,
    visited: &mut Vec<std::path::PathBuf>,
    depth: usize,
) -> Result<String, ParseNetlistError> {
    let fail = |line: usize, reason: String| ParseNetlistError::IncludeFailed {
        line,
        path: path.display().to_string(),
        reason,
    };
    if depth > 16 {
        return Err(fail(0, "include nesting exceeds 16 levels".to_owned()));
    }
    let canonical = path
        .canonicalize()
        .map_err(|e| fail(0, e.to_string()))?;
    if visited.contains(&canonical) {
        return Err(fail(0, "include cycle".to_owned()));
    }
    visited.push(canonical);
    let text = std::fs::read_to_string(path).map_err(|e| fail(0, e.to_string()))?;
    let dir = path.parent().unwrap_or_else(|| std::path::Path::new("."));

    let mut out = String::with_capacity(text.len());
    for (i, line) in text.lines().enumerate() {
        let trimmed = line.trim();
        let lower = trimmed.to_ascii_lowercase();
        if lower.starts_with(".include") || lower.starts_with(".inc ") {
            let arg = trimmed
                .split_whitespace()
                .nth(1)
                .ok_or_else(|| {
                    fail(i + 1, ".include needs a path".to_owned())
                })?
                .trim_matches(['"', '\'']);
            let child = dir.join(arg);
            let expanded = expand_includes(&child, visited, depth + 1).map_err(|e| {
                match e {
                    ParseNetlistError::IncludeFailed { reason, path: p, .. } => {
                        ParseNetlistError::IncludeFailed { line: i + 1, path: p, reason }
                    }
                    other => other,
                }
            })?;
            out.push_str(&expanded);
            out.push('\n');
        } else {
            out.push_str(line);
            out.push('\n');
        }
    }
    visited.pop();
    Ok(out)
}

/// Merge `+` continuation lines, keeping the first line's number.
fn join_continuations(source: &str) -> Vec<(usize, String)> {
    let mut out: Vec<(usize, String)> = Vec::new();
    for (i, line) in source.lines().enumerate() {
        let lineno = i + 1;
        let trimmed = line.trim_start();
        if let Some(rest) = trimmed.strip_prefix('+') {
            if let Some(last) = out.last_mut() {
                last.1.push(' ');
                last.1.push_str(rest);
                continue;
            }
        }
        out.push((lineno, line.to_owned()));
    }
    out
}

/// Drop a trailing `$ …` comment.
fn strip_comment(line: &str) -> &str {
    match line.find('$') {
        Some(i) => &line[..i],
        None => line,
    }
}

fn handle_pragma(
    rest: &str,
    lineno: usize,
    current: &mut Option<Subckt>,
) -> Result<(), ParseNetlistError> {
    let mut tok = rest.split_whitespace();
    let Some(kind) = tok.next() else {
        return Ok(());
    };
    let Some(sub) = current.as_mut() else {
        // Pragmas outside a subckt are ignored like any comment.
        return Ok(());
    };
    match kind.to_ascii_lowercase().as_str() {
        "class" => {
            let tag = tok.next().ok_or_else(|| ParseNetlistError::MalformedCard {
                line: lineno,
                reason: "*.class needs a tag".to_owned(),
            })?;
            sub.class = tag.parse().expect("CircuitClass::from_str is infallible");
        }
        "symmetry" => {
            let a = tok.next();
            let b = tok.next();
            let (Some(a), Some(b)) = (a, b) else {
                return Err(ParseNetlistError::MalformedCard {
                    line: lineno,
                    reason: "*.symmetry needs two element names".to_owned(),
                });
            };
            sub.annotate_symmetry(a, b);
        }
        "selfsym" => {
            let a = tok.next().ok_or_else(|| ParseNetlistError::MalformedCard {
                line: lineno,
                reason: "*.selfsym needs an element name".to_owned(),
            })?;
            sub.self_sym.push(a.to_owned());
        }
        _ => {} // unknown pragma: ignore, it is a comment
    }
    Ok(())
}

/// Evaluate a value expression: an SI-suffixed literal, a `.param`
/// reference (bare, `'quoted'`, or `{braced}`), or a `*`-product of such
/// factors.
fn eval_value(raw: &str, globals: &HashMap<String, f64>) -> Option<f64> {
    let unquoted = raw
        .trim()
        .trim_start_matches(['\'', '{'])
        .trim_end_matches(['\'', '}']);
    if unquoted.is_empty() {
        return None;
    }
    let mut product = 1.0;
    for factor in unquoted.split('*') {
        let f = factor.trim();
        let v = parse_si_value(f).or_else(|| globals.get(&f.to_ascii_lowercase()).copied())?;
        product *= v;
    }
    Some(product)
}

/// Split a card into positional tokens and `key=value` parameters,
/// resolving `.param` references.
fn split_params(
    tokens: &[&str],
    lineno: usize,
    globals: &HashMap<String, f64>,
) -> Result<(Vec<String>, HashMap<String, f64>), ParseNetlistError> {
    let mut positional = Vec::new();
    let mut params = HashMap::new();
    for t in tokens {
        if let Some(eq) = t.find('=') {
            let key = t[..eq].to_ascii_lowercase();
            let val = &t[eq + 1..];
            let num = eval_value(val, globals).ok_or_else(|| ParseNetlistError::BadNumber {
                line: lineno,
                token: (*t).to_owned(),
            })?;
            params.insert(key, num);
        } else {
            positional.push((*t).to_owned());
        }
    }
    Ok((positional, params))
}

/// Interpret a dimension parameter: metres below 1 mm, µm otherwise.
fn to_microns(v: f64) -> f64 {
    if v.abs() < 1e-3 {
        v * 1e6
    } else {
        v
    }
}

fn geometry_from_params(
    params: &HashMap<String, f64>,
    fallback: Geometry,
) -> Geometry {
    let mut g = fallback;
    if let Some(&w) = params.get("w") {
        g.width = to_microns(w);
    }
    if let Some(&l) = params.get("l") {
        g.length = to_microns(l);
    }
    if let Some(&nf) = params.get("nf") {
        // Folding multiplies effective width.
        g.width *= nf.max(1.0);
    }
    if let Some(&lay) = params.get("layers").or_else(|| params.get("lay")) {
        g.metal_layers = lay.max(1.0) as u32;
    }
    g
}

fn parse_card(
    card: &str,
    lineno: usize,
    sub: &mut Subckt,
    globals: &HashMap<String, f64>,
) -> Result<(), ParseNetlistError> {
    let tokens: Vec<&str> = card.split_whitespace().collect();
    let name = tokens[0].to_owned();
    let kind = name
        .chars()
        .next()
        .expect("split_whitespace yields non-empty tokens")
        .to_ascii_uppercase();
    let rest = &tokens[1..];
    let (pos, params) = split_params(rest, lineno, globals)?;
    let malformed = |reason: &str| ParseNetlistError::MalformedCard {
        line: lineno,
        reason: reason.to_owned(),
    };

    let multiplier = params.get("m").map(|&m| m.max(1.0) as u32).unwrap_or(1);

    match kind {
        'M' => {
            if pos.len() != 5 {
                return Err(malformed("MOS card needs `d g s b model`"));
            }
            let dtype = DeviceType::from_model_name(&pos[4]);
            let geometry = geometry_from_params(&params, Geometry::default());
            let mut d = Device::new(
                name,
                dtype,
                vec![pos[0].clone(), pos[1].clone(), pos[2].clone()],
                geometry,
            )
            .map_err(|_| malformed(&format!("model `{}` is not a 3-pin MOS type", pos[4])))?;
            d.bulk = Some(pos[3].clone());
            d.multiplier = multiplier;
            sub.push_device(d).map_err(|_| malformed("duplicate element name"))?;
        }
        'Q' => {
            if pos.len() != 4 {
                return Err(malformed("BJT card needs `c b e model`"));
            }
            let dtype = match DeviceType::from_model_name(&pos[3]) {
                DeviceType::Other => DeviceType::Npn,
                t => t,
            };
            let geometry = geometry_from_params(&params, Geometry::default());
            let mut d = Device::new(
                name,
                dtype,
                vec![pos[0].clone(), pos[1].clone(), pos[2].clone()],
                geometry,
            )
            .map_err(|_| malformed(&format!("model `{}` is not a 3-pin BJT type", pos[3])))?;
            d.multiplier = multiplier;
            sub.push_device(d).map_err(|_| malformed("duplicate element name"))?;
        }
        'D' => {
            if pos.len() < 2 {
                return Err(malformed("diode card needs `a c [model]`"));
            }
            let geometry = geometry_from_params(&params, Geometry::default());
            let mut d = Device::new(
                name,
                DeviceType::Diode,
                vec![pos[0].clone(), pos[1].clone()],
                geometry,
            )
            .map_err(|_| malformed("diode card does not take extra pins"))?;
            d.multiplier = multiplier;
            sub.push_device(d).map_err(|_| malformed("duplicate element name"))?;
        }
        'R' | 'C' | 'L' => {
            if pos.len() < 2 {
                return Err(malformed("passive card needs two nets"));
            }
            let (default_type, unit_scale) = match kind {
                'R' => (DeviceType::Resistor, 1e3),
                'C' => (DeviceType::Capacitor, 1e-15),
                _ => (DeviceType::Inductor, 1e-9),
            };
            // Remaining positionals: an optional value and/or model name.
            let mut dtype = default_type;
            let mut value = None;
            for extra in &pos[2..] {
                if let Some(v) = eval_value(extra, globals) {
                    value = Some(v);
                } else {
                    match DeviceType::from_model_name(extra) {
                        DeviceType::Other => {
                            return Err(ParseNetlistError::BadNumber {
                                line: lineno,
                                token: extra.clone(),
                            })
                        }
                        t => dtype = t,
                    }
                }
            }
            let fallback = match value {
                Some(v) => Geometry::from_value(v, unit_scale),
                None => Geometry::default(),
            };
            let geometry = geometry_from_params(&params, fallback);
            let mut d = Device::new(name, dtype, vec![pos[0].clone(), pos[1].clone()], geometry)
                .map_err(|_| {
                    malformed("passive card's model names a device type with more pins")
                })?;
            d.value = value;
            d.multiplier = multiplier;
            sub.push_device(d).map_err(|_| malformed("duplicate element name"))?;
        }
        'X' => {
            if pos.len() < 2 {
                return Err(malformed("instance card needs nets and a template"));
            }
            let template = pos.last().expect("len >= 2").clone();
            let connections = pos[..pos.len() - 1].to_vec();
            sub.push_instance(Instance { name, subckt: template, connections })
                .map_err(|_| malformed("duplicate element name"))?;
        }
        other => {
            return Err(malformed(&format!("unsupported card type `{other}`")));
        }
    }
    Ok(())
}

/// Pick a top cell: the unique never-instantiated subcircuit, else the
/// last defined one.
fn infer_top(netlist: &Netlist, defined: &[String]) -> Option<String> {
    if defined.is_empty() {
        return None;
    }
    let mut instantiated = HashSet::new();
    for s in netlist.iter() {
        for i in s.instances() {
            instantiated.insert(i.subckt.clone());
        }
    }
    let roots: Vec<&String> = defined.iter().filter(|n| !instantiated.contains(*n)).collect();
    match roots.as_slice() {
        [only] => Some((*only).clone()),
        _ => defined.last().cloned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::PortType;
    use crate::subckt::CircuitClass;

    const FIVE_T_OTA: &str = "\
* five-transistor OTA
.subckt ota5 inp inn out vdd vss bias
*.class ota
M1 n1 inp tail vss nch_lvt w=4u l=0.2u
M2 out inn tail vss nch_lvt w=4u l=0.2u
M3 n1 n1 vdd vdd pch_lvt w=8u l=0.2u
M4 out n1 vdd vdd pch_lvt w=8u l=0.2u
M5 tail bias vss vss nch w=2u l=0.5u
*.symmetry M1 M2
*.symmetry M3 M4
*.selfsym M5
.ends
";

    #[test]
    fn parses_five_transistor_ota() {
        let nl = parse_spice(FIVE_T_OTA).unwrap();
        let ota = nl.subckt("ota5").unwrap();
        assert_eq!(ota.class, CircuitClass::Ota);
        assert_eq!(ota.devices().count(), 5);
        assert_eq!(ota.sym_pairs.len(), 2);
        assert_eq!(ota.self_sym, vec!["M5"]);
        let m1 = ota.element("M1").unwrap().as_device().unwrap();
        assert_eq!(m1.dtype, DeviceType::NchLvt);
        assert!((m1.geometry.width - 4.0).abs() < 1e-9);
        assert!((m1.geometry.length - 0.2).abs() < 1e-9);
        assert_eq!(m1.bulk.as_deref(), Some("vss"));
        let pins: Vec<_> = m1.typed_pins().collect();
        assert_eq!(
            pins,
            vec![
                ("n1", PortType::Drain),
                ("inp", PortType::Gate),
                ("tail", PortType::Source)
            ]
        );
        assert_eq!(nl.top(), "ota5");
    }

    #[test]
    fn passive_cards_take_values_and_models() {
        let nl = parse_spice(
            "
.subckt rc a b
R1 a mid 10k
C1 mid b 100f
C2 mid b cfmom layers=4 w=3u l=3u
L1 a b 2n
.ends
",
        )
        .unwrap();
        let rc = nl.subckt("rc").unwrap();
        let r1 = rc.element("R1").unwrap().as_device().unwrap();
        assert_eq!(r1.dtype, DeviceType::Resistor);
        assert_eq!(r1.value, Some(10e3));
        let c2 = rc.element("C2").unwrap().as_device().unwrap();
        assert_eq!(c2.dtype, DeviceType::CfmomCapacitor);
        assert_eq!(c2.geometry.metal_layers, 4);
        assert!((c2.geometry.width - 3.0).abs() < 1e-9);
        let l1 = rc.element("L1").unwrap().as_device().unwrap();
        assert_eq!(l1.dtype, DeviceType::Inductor);
        assert_eq!(l1.value, Some(2e-9));
    }

    #[test]
    fn continuation_lines_join() {
        let nl = parse_spice(
            "
.subckt c a b vdd vss
M1 a b
+ vdd vdd pch
+ w=1u l=0.1u
.ends
",
        )
        .unwrap();
        let m1 = nl.subckt("c").unwrap().element("M1").unwrap().as_device().unwrap();
        assert_eq!(m1.dtype, DeviceType::Pch);
        assert!((m1.geometry.width - 1.0).abs() < 1e-9);
    }

    #[test]
    fn instances_and_top_inference() {
        let nl = parse_spice(
            "
.subckt leaf a
R1 a x 1k
.ends
.subckt mid a
X1 a leaf
.ends
.subckt root a
X1 a mid
X2 a mid
.ends
",
        )
        .unwrap();
        assert_eq!(nl.top(), "root"); // only never-instantiated subckt
        let mid = nl.subckt("mid").unwrap();
        assert_eq!(mid.instances().next().unwrap().subckt, "leaf");
    }

    #[test]
    fn explicit_top_overrides_inference() {
        let nl = parse_spice(
            "
.subckt a p
R1 p x 1k
.ends
.subckt b p
R1 p x 1k
.ends
.top a
",
        )
        .unwrap();
        assert_eq!(nl.top(), "a");
    }

    #[test]
    fn dollar_comments_are_stripped() {
        let nl = parse_spice(
            "
.subckt c a b
R1 a b 1k $ load resistor
.ends
",
        )
        .unwrap();
        assert_eq!(nl.subckt("c").unwrap().devices().count(), 1);
    }

    #[test]
    fn error_cases_carry_line_numbers() {
        let err = parse_spice(".subckt a p\nM1 a a a\n.ends\n").unwrap_err();
        assert!(matches!(err, ParseNetlistError::MalformedCard { line: 2, .. }));

        let err = parse_spice(".ends\n").unwrap_err();
        assert!(matches!(err, ParseNetlistError::UnmatchedEnds { line: 1 }));

        let err = parse_spice(".subckt a p\n").unwrap_err();
        assert!(matches!(err, ParseNetlistError::UnterminatedSubckt { .. }));

        let err = parse_spice(".subckt a p\n.subckt b q\n").unwrap_err();
        assert!(matches!(err, ParseNetlistError::NestedSubckt { line: 2 }));

        let err = parse_spice("R1 a b 1k\n").unwrap_err();
        assert!(matches!(err, ParseNetlistError::CardOutsideSubckt { line: 1 }));

        let err = parse_spice(".subckt a p\nR1 p x 1z\n.ends\n").unwrap_err();
        assert!(matches!(err, ParseNetlistError::BadNumber { line: 2, .. }));

        let err = parse_spice(".subckt a p\nR1 p x 1k\n.ends\n.top ghost\n").unwrap_err();
        assert!(matches!(err, ParseNetlistError::MissingTop { .. }));

        let err = parse_spice("").unwrap_err();
        assert!(matches!(err, ParseNetlistError::MissingTop { name: None }));
    }

    #[test]
    fn include_resolves_relative_paths() {
        let dir = std::env::temp_dir().join(format!("ancstr-inc-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(dir.join("lib")).unwrap();
        std::fs::write(
            dir.join("lib/cells.sp"),
            ".subckt inv in out vdd vss\nMp out in vdd vdd pch w=2u l=0.1u\nMn out in vss vss nch w=1u l=0.1u\n.ends\n",
        )
        .unwrap();
        std::fs::write(
            dir.join("top.sp"),
            ".include \"lib/cells.sp\"\n.subckt top a y vdd vss\nX1 a y vdd vss inv\n.ends\n.top top\n",
        )
        .unwrap();
        let nl = parse_spice_file(dir.join("top.sp")).unwrap();
        assert_eq!(nl.top(), "top");
        assert!(nl.subckt("inv").is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn include_cycles_are_detected() {
        let dir = std::env::temp_dir().join(format!("ancstr-cyc-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("a.sp"), ".include \"b.sp\"\n").unwrap();
        std::fs::write(dir.join("b.sp"), ".include \"a.sp\"\n").unwrap();
        let err = parse_spice_file(dir.join("a.sp")).unwrap_err();
        assert!(matches!(err, ParseNetlistError::IncludeFailed { .. }));
        assert!(err.to_string().contains("cycle"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_include_is_reported_with_line() {
        let dir = std::env::temp_dir().join(format!("ancstr-mis-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("top.sp"), "* header\n.include \"ghost.sp\"\n").unwrap();
        let err = parse_spice_file(dir.join("top.sp")).unwrap_err();
        assert!(
            matches!(err, ParseNetlistError::IncludeFailed { line: 2, .. }),
            "{err:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicate_subckt_rejected() {
        let err = parse_spice(
            ".subckt a p\nR1 p x 1k\n.ends\n.subckt a p\nR1 p x 1k\n.ends\n",
        )
        .unwrap_err();
        assert!(matches!(err, ParseNetlistError::DuplicateSubckt { .. }));
    }

    #[test]
    fn params_resolve_in_values() {
        let nl = parse_spice(
            "\
.param wn=2u lmin=0.1u ratio=2
.subckt c a b vdd vss
M1 a b vss vss nch w=wn l=lmin
M2 b a vss vss nch w='wn*ratio' l={lmin}
R1 a b 'ratio*1k'
.ends
",
        )
        .unwrap();
        let c = nl.subckt("c").unwrap();
        let m1 = c.element("M1").unwrap().as_device().unwrap();
        assert!((m1.geometry.width - 2.0).abs() < 1e-9);
        assert!((m1.geometry.length - 0.1).abs() < 1e-9);
        let m2 = c.element("M2").unwrap().as_device().unwrap();
        assert!((m2.geometry.width - 4.0).abs() < 1e-9, "{}", m2.geometry.width);
        let r1 = c.element("R1").unwrap().as_device().unwrap();
        assert_eq!(r1.value, Some(2e3));
    }

    #[test]
    fn param_redefinition_and_chaining() {
        let nl = parse_spice(
            "\
.param w0=1u
.param w1='w0*4'
.subckt c a b vdd vss
M1 a b vss vss nch w=w1 l=0.1u
.ends
",
        )
        .unwrap();
        let m1 = nl.subckt("c").unwrap().element("M1").unwrap().as_device().unwrap();
        assert!((m1.geometry.width - 4.0).abs() < 1e-9);
    }

    #[test]
    fn unknown_param_is_an_error() {
        let err = parse_spice(
            ".subckt c a b vdd vss\nM1 a b vss vss nch w=ghost l=0.1u\n.ends\n",
        )
        .unwrap_err();
        assert!(matches!(err, ParseNetlistError::BadNumber { line: 2, .. }));
        let err = parse_spice(".param broken\n.subckt c a\nR1 a x 1k\n.ends\n").unwrap_err();
        assert!(matches!(err, ParseNetlistError::MalformedCard { line: 1, .. }));
    }

    #[test]
    fn nf_folds_width_and_m_sets_multiplier() {
        let nl = parse_spice(
            ".subckt c a b vdd vss\nM1 a b vdd vdd pch w=1u l=0.1u nf=4 m=2\n.ends\n",
        )
        .unwrap();
        let m1 = nl.subckt("c").unwrap().element("M1").unwrap().as_device().unwrap();
        assert!((m1.geometry.width - 4.0).abs() < 1e-9);
        assert_eq!(m1.multiplier, 2);
    }
}
