//! Subcircuit templates: the reusable cells of a hierarchical netlist.

use std::collections::HashSet;
use std::fmt;
use std::str::FromStr;

use crate::device::Device;
use crate::error::ElaborateError;

/// Functional class of a subcircuit template.
///
/// The paper's valid-pair rule requires matched modules to have
/// "identical types"; for building blocks we interpret *type* as the
/// functional class (two DAC slices of different internal topology are
/// still a valid candidate pair — Fig. 3(a) — whereas a DAC and an OTA
/// are not). Generators tag templates with their class; parsed netlists
/// may carry a `*.class` pragma, defaulting to [`CircuitClass::Unknown`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CircuitClass {
    /// Operational transconductance amplifier.
    Ota,
    /// Clocked comparator.
    Comparator,
    /// Digital-to-analog converter (or DAC slice).
    Dac,
    /// Regenerative latch.
    Latch,
    /// Integrator stage (OTA + RC).
    Integrator,
    /// Quantizer / flash slice.
    Quantizer,
    /// Clock generation / buffering.
    Clock,
    /// Digital logic block (e.g. SAR logic).
    Logic,
    /// Inverter or buffer cell.
    Inverter,
    /// Switch network (sampling switches, bootstrapped switches).
    Switch,
    /// Bias generation.
    Bias,
    /// Passive array (capacitor or resistor bank).
    PassiveArray,
    /// Any other or user-defined class.
    Custom(String),
    /// Class not annotated.
    Unknown,
}

impl CircuitClass {
    /// Canonical lowercase tag used in `*.class` pragmas.
    pub fn tag(&self) -> &str {
        match self {
            CircuitClass::Ota => "ota",
            CircuitClass::Comparator => "comparator",
            CircuitClass::Dac => "dac",
            CircuitClass::Latch => "latch",
            CircuitClass::Integrator => "integrator",
            CircuitClass::Quantizer => "quantizer",
            CircuitClass::Clock => "clock",
            CircuitClass::Logic => "logic",
            CircuitClass::Inverter => "inverter",
            CircuitClass::Switch => "switch",
            CircuitClass::Bias => "bias",
            CircuitClass::PassiveArray => "passive_array",
            CircuitClass::Custom(s) => s,
            CircuitClass::Unknown => "unknown",
        }
    }
}

impl fmt::Display for CircuitClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

impl FromStr for CircuitClass {
    type Err = std::convert::Infallible;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let c = match s.to_ascii_lowercase().as_str() {
            "ota" => CircuitClass::Ota,
            "comparator" | "comp" => CircuitClass::Comparator,
            "dac" => CircuitClass::Dac,
            "latch" => CircuitClass::Latch,
            "integrator" => CircuitClass::Integrator,
            "quantizer" => CircuitClass::Quantizer,
            "clock" => CircuitClass::Clock,
            "logic" => CircuitClass::Logic,
            "inverter" | "inv" | "buffer" => CircuitClass::Inverter,
            "switch" => CircuitClass::Switch,
            "bias" => CircuitClass::Bias,
            "passive_array" | "array" => CircuitClass::PassiveArray,
            "unknown" => CircuitClass::Unknown,
            other => CircuitClass::Custom(other.to_owned()),
        };
        Ok(c)
    }
}

/// A child-instance of another subcircuit template.
#[derive(Debug, Clone, PartialEq)]
pub struct Instance {
    /// Instance name, unique within the owning subcircuit (e.g. `X1`).
    pub name: String,
    /// Name of the instantiated template.
    pub subckt: String,
    /// Nets connected to the template's ports, in port order.
    pub connections: Vec<String>,
}

/// One element of a subcircuit body: a primitive device or a child
/// instance.
#[derive(Debug, Clone, PartialEq)]
pub enum Element {
    /// A primitive device.
    Device(Device),
    /// An instance of another subcircuit.
    Instance(Instance),
}

impl Element {
    /// The element's instance name.
    pub fn name(&self) -> &str {
        match self {
            Element::Device(d) => &d.name,
            Element::Instance(i) => &i.name,
        }
    }

    /// The contained device, if this element is one.
    pub fn as_device(&self) -> Option<&Device> {
        match self {
            Element::Device(d) => Some(d),
            Element::Instance(_) => None,
        }
    }

    /// The contained instance, if this element is one.
    pub fn as_instance(&self) -> Option<&Instance> {
        match self {
            Element::Device(_) => None,
            Element::Instance(i) => Some(i),
        }
    }
}

/// A subcircuit template: ports, body elements, class, and designer
/// symmetry annotations.
///
/// # Example
///
/// ```
/// use ancstr_netlist::{Subckt, CircuitClass, Device, DeviceType, Geometry, Element};
///
/// let mut inv = Subckt::new("inv", ["in", "out", "vdd", "vss"]);
/// inv.class = CircuitClass::Inverter;
/// inv.push_device(Device::new(
///     "Mp",
///     DeviceType::PchLvt,
///     vec!["out".into(), "in".into(), "vdd".into()],
///     Geometry::new(0.1, 2.0),
/// )?)?;
/// assert_eq!(inv.devices().count(), 1);
/// # Ok::<(), ancstr_netlist::ElaborateError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Subckt {
    /// Template name (unique within a [`crate::Netlist`]).
    pub name: String,
    /// Port (external net) names in declaration order.
    pub ports: Vec<String>,
    /// Body elements in declaration order.
    pub elements: Vec<Element>,
    /// Functional class.
    pub class: CircuitClass,
    /// Designer symmetry annotations: pairs of element names within this
    /// template that must match. Expanded per-instance during
    /// elaboration into ground-truth [`crate::SymmetryConstraint`]s.
    pub sym_pairs: Vec<(String, String)>,
    /// Self-symmetric elements (placed on the axis), kept for
    /// completeness of the annotation format; not part of the pairwise
    /// extraction problem.
    pub self_sym: Vec<String>,
}

impl Subckt {
    /// A new, empty template with the given ports.
    pub fn new<I, S>(name: impl Into<String>, ports: I) -> Subckt
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Subckt {
            name: name.into(),
            ports: ports.into_iter().map(Into::into).collect(),
            elements: Vec::new(),
            class: CircuitClass::Unknown,
            sym_pairs: Vec::new(),
            self_sym: Vec::new(),
        }
    }

    /// Append a device to the body.
    ///
    /// # Errors
    ///
    /// Returns [`ElaborateError::DuplicateElement`] if an element with the
    /// same name already exists.
    pub fn push_device(&mut self, device: Device) -> Result<(), ElaborateError> {
        self.check_fresh_name(&device.name)?;
        self.elements.push(Element::Device(device));
        Ok(())
    }

    /// Append a child instance to the body.
    ///
    /// # Errors
    ///
    /// Returns [`ElaborateError::DuplicateElement`] if an element with the
    /// same name already exists.
    pub fn push_instance(&mut self, instance: Instance) -> Result<(), ElaborateError> {
        self.check_fresh_name(&instance.name)?;
        self.elements.push(Element::Instance(instance));
        Ok(())
    }

    /// Record a designer symmetry annotation between two elements.
    pub fn annotate_symmetry(&mut self, a: impl Into<String>, b: impl Into<String>) {
        self.sym_pairs.push((a.into(), b.into()));
    }

    fn check_fresh_name(&self, name: &str) -> Result<(), ElaborateError> {
        if self.elements.iter().any(|e| e.name() == name) {
            return Err(ElaborateError::DuplicateElement {
                subckt: self.name.clone(),
                name: name.to_owned(),
            });
        }
        Ok(())
    }

    /// Iterator over the primitive devices in the body.
    pub fn devices(&self) -> impl Iterator<Item = &Device> {
        self.elements.iter().filter_map(Element::as_device)
    }

    /// Iterator over the child instances in the body.
    pub fn instances(&self) -> impl Iterator<Item = &Instance> {
        self.elements.iter().filter_map(Element::as_instance)
    }

    /// Look up an element by name.
    pub fn element(&self, name: &str) -> Option<&Element> {
        self.elements.iter().find(|e| e.name() == name)
    }

    /// The set of local net names referenced by this template: its ports
    /// plus every net touched by a device pin, bulk pin, or instance
    /// connection.
    pub fn nets(&self) -> Vec<String> {
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        let mut add = |n: &str| {
            if seen.insert(n.to_owned()) {
                out.push(n.to_owned());
            }
        };
        for p in &self.ports {
            add(p);
        }
        for e in &self.elements {
            match e {
                Element::Device(d) => {
                    for p in &d.pins {
                        add(p);
                    }
                    if let Some(b) = &d.bulk {
                        add(b);
                    }
                }
                Element::Instance(i) => {
                    for c in &i.connections {
                        add(c);
                    }
                }
            }
        }
        out
    }

    /// Validate the pragma annotations against the body.
    ///
    /// # Errors
    ///
    /// Returns [`ElaborateError::UnknownSymmetryElement`] when a
    /// `sym_pairs` or `self_sym` entry names a missing element.
    pub fn validate_annotations(&self) -> Result<(), ElaborateError> {
        for (a, b) in &self.sym_pairs {
            for n in [a, b] {
                if self.element(n).is_none() {
                    return Err(ElaborateError::UnknownSymmetryElement {
                        subckt: self.name.clone(),
                        element: n.clone(),
                    });
                }
            }
        }
        for n in &self.self_sym {
            if self.element(n).is_none() {
                return Err(ElaborateError::UnknownSymmetryElement {
                    subckt: self.name.clone(),
                    element: n.clone(),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{DeviceType, Geometry};

    fn mos(name: &str, d: &str, g: &str, s: &str) -> Device {
        Device::new(
            name,
            DeviceType::Nch,
            vec![d.into(), g.into(), s.into()],
            Geometry::new(0.1, 1.0),
        )
        .unwrap()
    }

    #[test]
    fn duplicate_element_names_are_rejected() {
        let mut s = Subckt::new("cell", ["a"]);
        s.push_device(mos("M1", "a", "a", "a")).unwrap();
        let err = s.push_device(mos("M1", "a", "a", "a")).unwrap_err();
        assert!(matches!(err, ElaborateError::DuplicateElement { .. }));
    }

    #[test]
    fn nets_are_deduplicated_and_ordered() {
        let mut s = Subckt::new("cell", ["in", "out"]);
        s.push_device(mos("M1", "out", "in", "gnd")).unwrap();
        s.push_device(mos("M2", "out", "in", "gnd")).unwrap();
        assert_eq!(s.nets(), vec!["in", "out", "gnd"]);
    }

    #[test]
    fn annotation_validation_catches_typos() {
        let mut s = Subckt::new("cell", ["a"]);
        s.push_device(mos("M1", "a", "a", "a")).unwrap();
        s.annotate_symmetry("M1", "M_missing");
        assert!(matches!(
            s.validate_annotations(),
            Err(ElaborateError::UnknownSymmetryElement { .. })
        ));
    }

    #[test]
    fn circuit_class_round_trips_via_tag() {
        for c in [
            CircuitClass::Ota,
            CircuitClass::Comparator,
            CircuitClass::Dac,
            CircuitClass::Latch,
            CircuitClass::Integrator,
            CircuitClass::Quantizer,
            CircuitClass::Clock,
            CircuitClass::Logic,
            CircuitClass::Inverter,
            CircuitClass::Switch,
            CircuitClass::Bias,
            CircuitClass::PassiveArray,
            CircuitClass::Unknown,
            CircuitClass::Custom("pll".into()),
        ] {
            let back: CircuitClass = c.tag().parse().unwrap();
            assert_eq!(back, c);
        }
    }

    #[test]
    fn element_accessors() {
        let mut s = Subckt::new("cell", ["a"]);
        s.push_device(mos("M1", "a", "a", "a")).unwrap();
        s.push_instance(Instance {
            name: "X1".into(),
            subckt: "sub".into(),
            connections: vec!["a".into()],
        })
        .unwrap();
        assert!(s.element("M1").unwrap().as_device().is_some());
        assert!(s.element("X1").unwrap().as_instance().is_some());
        assert!(s.element("nope").is_none());
        assert_eq!(s.devices().count(), 1);
        assert_eq!(s.instances().count(), 1);
    }
}
