//! SPICE numeric literals with SI magnitude suffixes.

/// Parse a SPICE numeric literal such as `1.5u`, `100f`, `2meg`, or `4k`.
///
/// Supported suffixes (case-insensitive): `t`, `g`, `meg`, `k`, `m`, `u`,
/// `n`, `p`, `f`, `a`. Trailing unit letters after the magnitude suffix
/// (e.g. `10pF`, `1uH`) are tolerated and ignored, mirroring common SPICE
/// practice. Returns `None` when the mantissa is not a number.
///
/// # Example
///
/// ```
/// use ancstr_netlist::units::parse_si_value;
///
/// assert_eq!(parse_si_value("2k"), Some(2e3));
/// assert_eq!(parse_si_value("1.5u"), Some(1.5e-6));
/// assert_eq!(parse_si_value("3meg"), Some(3e6));
/// assert_eq!(parse_si_value("10pF"), Some(10e-12));
/// assert_eq!(parse_si_value("abc"), None);
/// ```
pub fn parse_si_value(token: &str) -> Option<f64> {
    let t = token.trim();
    if t.is_empty() {
        return None;
    }
    // Split mantissa from suffix: mantissa is the longest prefix that
    // parses as a float.
    let lower = t.to_ascii_lowercase();
    let bytes = lower.as_bytes();
    let mut split = 0;
    for i in 0..bytes.len() {
        let c = bytes[i] as char;
        let is_mantissa = c.is_ascii_digit()
            || c == '.'
            || c == '+'
            || c == '-'
            // scientific notation: `e` only counts when followed by digit/sign
            || (c == 'e'
                && i + 1 < bytes.len()
                && ((bytes[i + 1] as char).is_ascii_digit()
                    || bytes[i + 1] == b'+'
                    || bytes[i + 1] == b'-'));
        if is_mantissa {
            split = i + 1;
        } else {
            break;
        }
    }
    let (mant, suffix) = lower.split_at(split);
    let base: f64 = mant.parse().ok()?;
    let scale = si_scale(suffix)?;
    Some(base * scale)
}

/// The multiplier for an SI suffix (with optional trailing unit letters).
fn si_scale(suffix: &str) -> Option<f64> {
    if suffix.is_empty() {
        return Some(1.0);
    }
    // `meg` must be checked before `m`.
    let (scale, rest) = if let Some(rest) = suffix.strip_prefix("meg") {
        (1e6, rest)
    } else {
        let mut chars = suffix.chars();
        let c = chars.next().expect("non-empty suffix");
        let scale = match c {
            't' => 1e12,
            'g' => 1e9,
            'k' => 1e3,
            'm' => 1e-3,
            'u' => 1e-6,
            'n' => 1e-9,
            'p' => 1e-12,
            'f' => 1e-15,
            'a' => 1e-18,
            _ => return None,
        };
        (scale, chars.as_str())
    };
    // Remaining characters must be alphabetic unit decoration (F, H, ohm…).
    if rest.chars().all(|c| c.is_ascii_alphabetic()) {
        Some(scale)
    } else {
        None
    }
}

/// Format a value in engineering notation with an SI suffix, the inverse
/// of [`parse_si_value`] up to rounding.
///
/// # Example
///
/// ```
/// use ancstr_netlist::units::format_si_value;
///
/// assert_eq!(format_si_value(2e3), "2k");
/// assert_eq!(format_si_value(1.5e-6), "1.5u");
/// assert_eq!(format_si_value(0.0), "0");
/// ```
pub fn format_si_value(value: f64) -> String {
    if value == 0.0 {
        return "0".to_owned();
    }
    const STEPS: [(f64, &str); 11] = [
        (1e12, "t"),
        (1e9, "g"),
        (1e6, "meg"),
        (1e3, "k"),
        (1.0, ""),
        (1e-3, "m"),
        (1e-6, "u"),
        (1e-9, "n"),
        (1e-12, "p"),
        (1e-15, "f"),
        (1e-18, "a"),
    ];
    let mag = value.abs();
    for (scale, suffix) in STEPS {
        if mag >= scale * 0.9999999 {
            let scaled = value / scale;
            // Trim trailing zeros from a fixed representation.
            let mut s = format!("{scaled:.6}");
            while s.ends_with('0') {
                s.pop();
            }
            if s.ends_with('.') {
                s.pop();
            }
            return format!("{s}{suffix}");
        }
    }
    format!("{value:e}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_numbers() {
        assert_eq!(parse_si_value("42"), Some(42.0));
        assert_eq!(parse_si_value("-3.5"), Some(-3.5));
        assert_eq!(parse_si_value("1e-9"), Some(1e-9));
        assert_eq!(parse_si_value("2.5e3"), Some(2.5e3));
    }

    #[test]
    fn suffixes() {
        assert_eq!(parse_si_value("1t"), Some(1e12));
        assert_eq!(parse_si_value("1g"), Some(1e9));
        assert_eq!(parse_si_value("1meg"), Some(1e6));
        assert_eq!(parse_si_value("1k"), Some(1e3));
        assert_eq!(parse_si_value("1m"), Some(1e-3));
        assert_eq!(parse_si_value("1u"), Some(1e-6));
        assert_eq!(parse_si_value("1n"), Some(1e-9));
        assert_eq!(parse_si_value("1p"), Some(1e-12));
        assert_eq!(parse_si_value("1f"), Some(1e-15));
        assert_eq!(parse_si_value("1a"), Some(1e-18));
    }

    #[test]
    fn unit_decoration_is_ignored() {
        assert_eq!(parse_si_value("10pF"), Some(10e-12));
        assert_eq!(parse_si_value("1uH"), Some(1e-6));
        assert_eq!(parse_si_value("2kohm"), Some(2e3));
        assert_eq!(parse_si_value("3megohm"), Some(3e6));
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(parse_si_value(""), None);
        assert_eq!(parse_si_value("x5"), None);
        assert_eq!(parse_si_value("5q"), None);
        assert_eq!(parse_si_value("1k2"), None);
    }

    #[test]
    fn case_insensitive() {
        assert_eq!(parse_si_value("1MEG"), Some(1e6));
        assert_eq!(parse_si_value("1K"), Some(1e3));
    }

    #[test]
    fn format_round_trips() {
        for &v in &[1.0, 2e3, 1.5e-6, 100e-15, 3e6, 4.7e-9, 1e12] {
            let s = format_si_value(v);
            let back = parse_si_value(&s).unwrap();
            assert!(
                (back - v).abs() <= v.abs() * 1e-6,
                "{v} -> {s} -> {back}"
            );
        }
    }
}
