//! Error types for parsing and elaboration.

use std::error::Error;
use std::fmt;

/// Error returned when a model name does not map to a known
/// [`crate::DeviceType`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDeviceTypeError {
    /// The offending model name.
    pub name: String,
}

impl fmt::Display for ParseDeviceTypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown device model name `{}`", self.name)
    }
}

impl Error for ParseDeviceTypeError {}

/// Error returned by the SPICE-subset parser.
///
/// Each variant carries the 1-based source line for diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseNetlistError {
    /// A card could not be tokenized or had too few fields.
    MalformedCard {
        /// 1-based source line.
        line: usize,
        /// Explanation of what was expected.
        reason: String,
    },
    /// A numeric field (value or parameter) failed to parse.
    BadNumber {
        /// 1-based source line.
        line: usize,
        /// The token that failed to parse.
        token: String,
    },
    /// `.ends` without a matching `.subckt`.
    UnmatchedEnds {
        /// 1-based source line.
        line: usize,
    },
    /// `.subckt` opened inside another `.subckt`.
    NestedSubckt {
        /// 1-based source line.
        line: usize,
    },
    /// End of input reached while a `.subckt` was still open.
    UnterminatedSubckt {
        /// Name of the open subcircuit.
        name: String,
    },
    /// Two subcircuits share a name.
    DuplicateSubckt {
        /// 1-based source line.
        line: usize,
        /// The duplicated name.
        name: String,
    },
    /// A device card appeared outside any `.subckt` block.
    CardOutsideSubckt {
        /// 1-based source line.
        line: usize,
    },
    /// `.top` names a subcircuit that was never defined, or no top could
    /// be determined.
    MissingTop {
        /// The requested top name, if any.
        name: Option<String>,
    },
    /// An `.include` directive could not be resolved.
    IncludeFailed {
        /// 1-based source line of the directive.
        line: usize,
        /// The requested path.
        path: String,
        /// Why it failed (I/O error, cycle, depth limit).
        reason: String,
    },
}

impl fmt::Display for ParseNetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseNetlistError::MalformedCard { line, reason } => {
                write!(f, "line {line}: malformed card: {reason}")
            }
            ParseNetlistError::BadNumber { line, token } => {
                write!(f, "line {line}: invalid numeric token `{token}`")
            }
            ParseNetlistError::UnmatchedEnds { line } => {
                write!(f, "line {line}: `.ends` without matching `.subckt`")
            }
            ParseNetlistError::NestedSubckt { line } => {
                write!(f, "line {line}: nested `.subckt` is not supported")
            }
            ParseNetlistError::UnterminatedSubckt { name } => {
                write!(f, "subcircuit `{name}` is missing its `.ends`")
            }
            ParseNetlistError::DuplicateSubckt { line, name } => {
                write!(f, "line {line}: duplicate subcircuit `{name}`")
            }
            ParseNetlistError::CardOutsideSubckt { line } => {
                write!(f, "line {line}: device card outside any `.subckt`")
            }
            ParseNetlistError::MissingTop { name: Some(n) } => {
                write!(f, "top cell `{n}` is not defined")
            }
            ParseNetlistError::MissingTop { name: None } => {
                write!(f, "netlist defines no subcircuits, so no top cell exists")
            }
            ParseNetlistError::IncludeFailed { line, path, reason } => {
                write!(f, "line {line}: cannot include `{path}`: {reason}")
            }
        }
    }
}

impl Error for ParseNetlistError {}

/// Error returned while elaborating a [`crate::Netlist`] into a
/// [`crate::FlatCircuit`].
#[derive(Debug, Clone, PartialEq)]
pub enum ElaborateError {
    /// An `X` instance references an undefined subcircuit.
    UnknownSubckt {
        /// Hierarchical instance path.
        instance: String,
        /// The missing template name.
        subckt: String,
    },
    /// An instance connects a different number of nets than the template
    /// declares ports.
    PortCountMismatch {
        /// Hierarchical instance path.
        instance: String,
        /// Ports declared by the template.
        expected: usize,
        /// Nets supplied by the instance.
        found: usize,
    },
    /// A device was built with the wrong number of pins for its type.
    PinCountMismatch {
        /// Device name.
        device: String,
        /// Pins required by the device type.
        expected: usize,
        /// Pins supplied.
        found: usize,
    },
    /// The instance tree contains a cycle (a subcircuit that eventually
    /// instantiates itself).
    RecursiveHierarchy {
        /// The template on the cycle.
        subckt: String,
    },
    /// A symmetry pragma references an element that does not exist in its
    /// subcircuit.
    UnknownSymmetryElement {
        /// The subcircuit carrying the pragma.
        subckt: String,
        /// The missing element name.
        element: String,
    },
    /// Two elements within one subcircuit share a name.
    DuplicateElement {
        /// The subcircuit in question.
        subckt: String,
        /// The duplicated element name.
        name: String,
    },
}

impl fmt::Display for ElaborateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ElaborateError::UnknownSubckt { instance, subckt } => {
                write!(f, "instance `{instance}` references undefined subcircuit `{subckt}`")
            }
            ElaborateError::PortCountMismatch { instance, expected, found } => write!(
                f,
                "instance `{instance}` connects {found} nets but its template declares {expected} ports"
            ),
            ElaborateError::PinCountMismatch { device, expected, found } => write!(
                f,
                "device `{device}` has {found} pins but its type requires {expected}"
            ),
            ElaborateError::RecursiveHierarchy { subckt } => {
                write!(f, "subcircuit `{subckt}` instantiates itself (recursive hierarchy)")
            }
            ElaborateError::UnknownSymmetryElement { subckt, element } => write!(
                f,
                "symmetry pragma in `{subckt}` references unknown element `{element}`"
            ),
            ElaborateError::DuplicateElement { subckt, name } => {
                write!(f, "subcircuit `{subckt}` declares element `{name}` more than once")
            }
        }
    }
}

impl Error for ElaborateError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = ParseNetlistError::BadNumber { line: 7, token: "1x".into() };
        let msg = e.to_string();
        assert!(msg.contains("line 7"));
        assert!(msg.contains("1x"));

        let e = ElaborateError::UnknownSubckt {
            instance: "top/X1".into(),
            subckt: "ota".into(),
        };
        assert!(e.to_string().contains("ota"));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ParseNetlistError>();
        assert_send_sync::<ElaborateError>();
        assert_send_sync::<ParseDeviceTypeError>();
    }
}
