//! Symmetry-constraint domain types (Section III-A).
//!
//! A symmetry constraint is the three-tuple `s = (T_c, t_i, t_j)`:
//! a pair of matched modules `(t_i, t_j)` under circuit hierarchy `T_c`.
//! Constraints are *system-level* when the pair consists of building
//! blocks or of passive devices sitting next to other subcircuits, and
//! *device-level* otherwise.

use std::collections::HashMap;
use std::fmt;

use crate::flat::HierNodeId;

/// Level of a symmetry constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SymmetryKind {
    /// Matching between building blocks (or passives among blocks).
    System,
    /// Matching between primitive devices inside one block.
    Device,
}

impl fmt::Display for SymmetryKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SymmetryKind::System => f.write_str("system"),
            SymmetryKind::Device => f.write_str("device"),
        }
    }
}

/// Order-independent identity of a module pair; the `(t_i, t_j)` of a
/// constraint with `t_i` and `t_j` sorted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PairKey {
    lo: HierNodeId,
    hi: HierNodeId,
}

impl PairKey {
    /// A key for the unordered pair `{a, b}`.
    ///
    /// # Panics
    ///
    /// Panics if `a == b`; a module cannot pair with itself.
    pub fn new(a: HierNodeId, b: HierNodeId) -> PairKey {
        assert_ne!(a, b, "a symmetry pair needs two distinct modules");
        if a < b {
            PairKey { lo: a, hi: b }
        } else {
            PairKey { lo: b, hi: a }
        }
    }

    /// The smaller node id.
    pub fn lo(&self) -> HierNodeId {
        self.lo
    }

    /// The larger node id.
    pub fn hi(&self) -> HierNodeId {
        self.hi
    }
}

/// A symmetry constraint `s = (T_c, t_i, t_j)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SymmetryConstraint {
    /// The hierarchy node `T_c` under which the matched pair lives
    /// (the pair's common parent).
    pub hierarchy: HierNodeId,
    /// The unordered matched pair `(t_i, t_j)`.
    pub pair: PairKey,
    /// System- or device-level.
    pub kind: SymmetryKind,
}

impl SymmetryConstraint {
    /// A new constraint for the pair `{a, b}` under `hierarchy`.
    ///
    /// # Panics
    ///
    /// Panics if `a == b` (see [`PairKey::new`]).
    pub fn new(
        hierarchy: HierNodeId,
        a: HierNodeId,
        b: HierNodeId,
        kind: SymmetryKind,
    ) -> SymmetryConstraint {
        SymmetryConstraint { hierarchy, pair: PairKey::new(a, b), kind }
    }
}

/// A deduplicated set of symmetry constraints with pair-keyed lookup.
///
/// Used both for ground truth (designer annotations) and for detector
/// output, so that metric computation is a set comparison.
///
/// # Example
///
/// ```
/// use ancstr_netlist::{ConstraintSet, SymmetryConstraint, SymmetryKind};
/// use ancstr_netlist::flat::HierNodeId;
///
/// let mut set = ConstraintSet::new();
/// let (h, a, b) = (HierNodeId(0), HierNodeId(1), HierNodeId(2));
/// set.insert(SymmetryConstraint::new(h, a, b, SymmetryKind::Device));
/// assert!(set.contains_pair(a, b));
/// assert!(set.contains_pair(b, a)); // order-independent
/// assert_eq!(set.len(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ConstraintSet {
    by_pair: HashMap<PairKey, SymmetryConstraint>,
    order: Vec<PairKey>,
}

impl ConstraintSet {
    /// An empty set.
    pub fn new() -> ConstraintSet {
        ConstraintSet::default()
    }

    /// Insert a constraint; returns `false` if the pair was already
    /// present (the earlier entry wins).
    pub fn insert(&mut self, c: SymmetryConstraint) -> bool {
        if self.by_pair.contains_key(&c.pair) {
            return false;
        }
        self.by_pair.insert(c.pair, c);
        self.order.push(c.pair);
        true
    }

    /// Whether the unordered pair `{a, b}` is constrained.
    pub fn contains_pair(&self, a: HierNodeId, b: HierNodeId) -> bool {
        a != b && self.by_pair.contains_key(&PairKey::new(a, b))
    }

    /// Whether the given key is constrained.
    pub fn contains_key(&self, key: PairKey) -> bool {
        self.by_pair.contains_key(&key)
    }

    /// The constraint for `{a, b}`, if any.
    pub fn get(&self, a: HierNodeId, b: HierNodeId) -> Option<&SymmetryConstraint> {
        if a == b {
            return None;
        }
        self.by_pair.get(&PairKey::new(a, b))
    }

    /// Number of constraints.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Iterator over constraints in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &SymmetryConstraint> {
        self.order.iter().map(move |k| &self.by_pair[k])
    }

    /// A new set holding only the constraints of the given kind.
    pub fn filter_kind(&self, kind: SymmetryKind) -> ConstraintSet {
        self.iter().filter(|c| c.kind == kind).copied().collect()
    }
}

impl FromIterator<SymmetryConstraint> for ConstraintSet {
    fn from_iter<I: IntoIterator<Item = SymmetryConstraint>>(iter: I) -> ConstraintSet {
        let mut set = ConstraintSet::new();
        for c in iter {
            set.insert(c);
        }
        set
    }
}

impl Extend<SymmetryConstraint> for ConstraintSet {
    fn extend<I: IntoIterator<Item = SymmetryConstraint>>(&mut self, iter: I) {
        for c in iter {
            self.insert(c);
        }
    }
}

impl<'a> IntoIterator for &'a ConstraintSet {
    type Item = &'a SymmetryConstraint;
    type IntoIter = Box<dyn Iterator<Item = &'a SymmetryConstraint> + 'a>;

    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(i: usize) -> HierNodeId {
        HierNodeId(i)
    }

    #[test]
    fn pair_key_is_order_independent() {
        assert_eq!(PairKey::new(id(3), id(7)), PairKey::new(id(7), id(3)));
        assert_eq!(PairKey::new(id(3), id(7)).lo(), id(3));
        assert_eq!(PairKey::new(id(3), id(7)).hi(), id(7));
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn pair_key_rejects_self_pair() {
        let _ = PairKey::new(id(1), id(1));
    }

    #[test]
    fn set_deduplicates() {
        let mut s = ConstraintSet::new();
        assert!(s.insert(SymmetryConstraint::new(id(0), id(1), id(2), SymmetryKind::Device)));
        assert!(!s.insert(SymmetryConstraint::new(id(0), id(2), id(1), SymmetryKind::Device)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn filter_kind_splits_levels() {
        let s: ConstraintSet = [
            SymmetryConstraint::new(id(0), id(1), id(2), SymmetryKind::Device),
            SymmetryConstraint::new(id(0), id(3), id(4), SymmetryKind::System),
            SymmetryConstraint::new(id(0), id(5), id(6), SymmetryKind::System),
        ]
        .into_iter()
        .collect();
        assert_eq!(s.filter_kind(SymmetryKind::System).len(), 2);
        assert_eq!(s.filter_kind(SymmetryKind::Device).len(), 1);
    }

    #[test]
    fn get_and_contains_are_symmetric() {
        let mut s = ConstraintSet::new();
        s.insert(SymmetryConstraint::new(id(0), id(1), id(2), SymmetryKind::System));
        assert!(s.get(id(2), id(1)).is_some());
        assert!(s.get(id(1), id(1)).is_none());
        assert!(!s.contains_pair(id(1), id(1)));
    }

    #[test]
    fn extend_and_iter_preserve_insertion_order() {
        let mut s = ConstraintSet::new();
        s.extend([
            SymmetryConstraint::new(id(0), id(5), id(6), SymmetryKind::Device),
            SymmetryConstraint::new(id(0), id(1), id(2), SymmetryKind::Device),
        ]);
        let pairs: Vec<_> = s.iter().map(|c| (c.pair.lo(), c.pair.hi())).collect();
        assert_eq!(pairs, vec![(id(5), id(6)), (id(1), id(2))]);
    }
}
