//! Netlist writer: emits the canonical SPICE-subset form accepted by
//! [`crate::parse::parse_spice`], so netlists round-trip.

use std::fmt::Write as _;

use crate::device::{Device, DeviceType};
use crate::netlist::Netlist;
use crate::subckt::{CircuitClass, Element, Subckt};
use crate::units::format_si_value;

/// Serialize a netlist to the SPICE subset of this crate.
///
/// The output parses back (via [`crate::parse::parse_spice`]) to an
/// equivalent [`Netlist`]: same templates, devices, classes, and
/// annotations.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use ancstr_netlist::{parse::parse_spice, write::write_spice};
///
/// let src = ".subckt c a b\nR1 a b 1k\n.ends\n";
/// let nl = parse_spice(src)?;
/// let out = write_spice(&nl);
/// let back = parse_spice(&out)?;
/// assert_eq!(back.subckt("c").unwrap().devices().count(), 1);
/// # Ok(())
/// # }
/// ```
pub fn write_spice(netlist: &Netlist) -> String {
    let mut out = String::new();
    out.push_str("* written by ancstr-netlist\n");
    for sub in netlist.iter() {
        write_subckt(&mut out, sub);
    }
    let _ = writeln!(out, ".top {}", netlist.top());
    out
}

fn write_subckt(out: &mut String, sub: &Subckt) {
    let _ = write!(out, ".subckt {}", sub.name);
    for p in &sub.ports {
        let _ = write!(out, " {p}");
    }
    out.push('\n');
    if sub.class != CircuitClass::Unknown {
        let _ = writeln!(out, "*.class {}", sub.class.tag());
    }
    for e in &sub.elements {
        match e {
            Element::Device(d) => write_device(out, d),
            Element::Instance(i) => {
                let _ = write!(out, "{}", i.name);
                for c in &i.connections {
                    let _ = write!(out, " {c}");
                }
                let _ = writeln!(out, " {}", i.subckt);
            }
        }
    }
    for (a, b) in &sub.sym_pairs {
        let _ = writeln!(out, "*.symmetry {a} {b}");
    }
    for a in &sub.self_sym {
        let _ = writeln!(out, "*.selfsym {a}");
    }
    out.push_str(".ends\n");
}

fn write_device(out: &mut String, d: &Device) {
    let g = &d.geometry;
    let geom_suffix = |out: &mut String| {
        let _ = write!(out, " w={}u l={}u", trim_num(g.width), trim_num(g.length));
        if g.metal_layers > 1 {
            let _ = write!(out, " layers={}", g.metal_layers);
        }
        if d.multiplier > 1 {
            let _ = write!(out, " m={}", d.multiplier);
        }
    };
    if d.dtype.is_mos() {
        let bulk = d.bulk.as_deref().unwrap_or(&d.pins[2]);
        let _ = write!(
            out,
            "{} {} {} {} {} {}",
            d.name, d.pins[0], d.pins[1], d.pins[2], bulk, d.dtype.model_name()
        );
        geom_suffix(out);
        out.push('\n');
    } else if d.dtype.is_bjt() {
        let _ = write!(
            out,
            "{} {} {} {} {}",
            d.name, d.pins[0], d.pins[1], d.pins[2], d.dtype.model_name()
        );
        geom_suffix(out);
        out.push('\n');
    } else if d.dtype == DeviceType::Diode {
        let _ = write!(out, "{} {} {} diode", d.name, d.pins[0], d.pins[1]);
        geom_suffix(out);
        out.push('\n');
    } else {
        // Two-terminal passive: emit model (when non-default) and value.
        let _ = write!(out, "{} {} {}", d.name, d.pins[0], d.pins[1]);
        let default_model = matches!(
            (d.name.chars().next().map(|c| c.to_ascii_uppercase()), d.dtype),
            (Some('R'), DeviceType::Resistor)
                | (Some('C'), DeviceType::Capacitor)
                | (Some('L'), DeviceType::Inductor)
        );
        if !default_model {
            let _ = write!(out, " {}", d.dtype.model_name());
        }
        if let Some(v) = d.value {
            let _ = write!(out, " {}", format_si_value(v));
        }
        geom_suffix(out);
        out.push('\n');
    }
}

/// Format a dimension without trailing zeros.
fn trim_num(v: f64) -> String {
    let mut s = format!("{v:.6}");
    while s.ends_with('0') {
        s.pop();
    }
    if s.ends_with('.') {
        s.pop();
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_spice;

    const SOURCE: &str = "\
.subckt comp inp inn outp outn clk vdd vss
*.class comparator
M1 x inp tail vss nch_lvt w=6u l=0.1u
M2 y inn tail vss nch_lvt w=6u l=0.1u
M3 tail clk vss vss nch w=8u l=0.1u
C1 outp vss 20f
C2 outn vss 20f
*.symmetry M1 M2
*.symmetry C1 C2
*.selfsym M3
.ends
.subckt top inp inn op on ck vdd vss
X1 inp inn op on ck vdd vss comp
.ends
.top top
";

    #[test]
    fn round_trip_preserves_structure() {
        let nl = parse_spice(SOURCE).unwrap();
        let text = write_spice(&nl);
        let back = parse_spice(&text).unwrap();
        assert_eq!(back.top(), nl.top());
        assert_eq!(back.len(), nl.len());
        for sub in nl.iter() {
            let b = back.subckt(&sub.name).unwrap();
            assert_eq!(b.ports, sub.ports);
            assert_eq!(b.class, sub.class);
            assert_eq!(b.sym_pairs, sub.sym_pairs);
            assert_eq!(b.self_sym, sub.self_sym);
            assert_eq!(b.elements.len(), sub.elements.len());
            for (x, y) in b.elements.iter().zip(&sub.elements) {
                assert_eq!(x.name(), y.name());
                match (x, y) {
                    (Element::Device(a), Element::Device(b)) => {
                        assert_eq!(a.dtype, b.dtype);
                        assert_eq!(a.pins, b.pins);
                        assert!((a.geometry.width - b.geometry.width).abs() < 1e-6);
                        assert!((a.geometry.length - b.geometry.length).abs() < 1e-6);
                        assert_eq!(a.geometry.metal_layers, b.geometry.metal_layers);
                    }
                    (Element::Instance(a), Element::Instance(b)) => {
                        assert_eq!(a.subckt, b.subckt);
                        assert_eq!(a.connections, b.connections);
                    }
                    _ => panic!("element kind changed in round trip"),
                }
            }
        }
    }

    #[test]
    fn values_round_trip() {
        let nl = parse_spice(SOURCE).unwrap();
        let text = write_spice(&nl);
        let back = parse_spice(&text).unwrap();
        let c1 = back
            .subckt("comp")
            .unwrap()
            .element("C1")
            .unwrap()
            .as_device()
            .unwrap();
        let v = c1.value.unwrap();
        assert!((v - 20e-15).abs() < 1e-21);
    }

    #[test]
    fn writer_emits_parseable_cfmom() {
        let nl = parse_spice(
            ".subckt c a b\nCm a b cfmom w=4u l=4u layers=5\n.ends\n",
        )
        .unwrap();
        let back = parse_spice(&write_spice(&nl)).unwrap();
        let cm = back.subckt("c").unwrap().element("Cm").unwrap().as_device().unwrap();
        assert_eq!(cm.dtype, crate::DeviceType::CfmomCapacitor);
        assert_eq!(cm.geometry.metal_layers, 5);
    }
}
