//! Natural ordering for hierarchical paths.
//!
//! Generated members are named with numeric suffixes (`Cu0`, `Cu1`, …,
//! `Cu10`), so plain lexicographic ordering interleaves them
//! (`Cu0 < Cu10 < Cu1`) and any export keyed on it scrambles the
//! physical array order. [`natural_cmp`] compares digit runs by value
//! and everything else byte-wise, which sorts `Cu2` before `Cu10` and
//! keeps `top/X2/C1` stable against `top/X10/C1`.

use std::cmp::Ordering;

/// Compare two strings with digit runs ordered numerically.
///
/// Digit runs are compared as unsigned magnitudes (longer run of equal
/// leading value wins only via its digits, so `07` and `7` compare by
/// value first, then by length for total-order stability). Non-digit
/// bytes compare as usual.
///
/// # Example
///
/// ```
/// use ancstr_netlist::order::natural_cmp;
/// use std::cmp::Ordering;
///
/// assert_eq!(natural_cmp("Cu2", "Cu10"), Ordering::Less);
/// assert_eq!(natural_cmp("top/X9/M1", "top/X10/M1"), Ordering::Less);
/// assert_eq!(natural_cmp("a", "b"), Ordering::Less);
/// ```
pub fn natural_cmp(a: &str, b: &str) -> Ordering {
    let (a, b) = (a.as_bytes(), b.as_bytes());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        let (ca, cb) = (a[i], b[j]);
        if ca.is_ascii_digit() && cb.is_ascii_digit() {
            let (ia, va) = digit_run(a, i);
            let (jb, vb) = digit_run(b, j);
            match va.cmp(&vb) {
                Ordering::Equal => {}
                other => return other,
            }
            // Equal values, possibly different spellings (`07` vs `7`):
            // fall back to run length so the order stays total.
            match (ia - i).cmp(&(jb - j)) {
                Ordering::Equal => {}
                other => return other,
            }
            i = ia;
            j = jb;
        } else {
            match ca.cmp(&cb) {
                Ordering::Equal => {}
                other => return other,
            }
            i += 1;
            j += 1;
        }
    }
    (a.len() - i).cmp(&(b.len() - j))
}

/// Scan the digit run starting at `start`; returns (end index, value).
/// Values saturate at `u64::MAX` — beyond any generated index.
fn digit_run(s: &[u8], start: usize) -> (usize, u64) {
    let mut end = start;
    let mut value: u64 = 0;
    while end < s.len() && s[end].is_ascii_digit() {
        value = value
            .saturating_mul(10)
            .saturating_add(u64::from(s[end] - b'0'));
        end += 1;
    }
    (end, value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digit_runs_compare_by_value() {
        let mut names = vec!["Cu10", "Cu2", "Cu0", "Cu1", "Cu21"];
        names.sort_by(|a, b| natural_cmp(a, b));
        assert_eq!(names, vec!["Cu0", "Cu1", "Cu2", "Cu10", "Cu21"]);
    }

    #[test]
    fn non_digit_text_stays_lexicographic() {
        assert_eq!(natural_cmp("abc", "abd"), Ordering::Less);
        assert_eq!(natural_cmp("abc", "abc"), Ordering::Equal);
        assert_eq!(natural_cmp("b", "ab"), Ordering::Greater);
    }

    #[test]
    fn prefix_orders_before_extension() {
        assert_eq!(natural_cmp("top/X1", "top/X1/M1"), Ordering::Less);
    }

    #[test]
    fn equal_values_with_different_spellings_stay_total() {
        assert_eq!(natural_cmp("a07", "a7"), Ordering::Greater);
        assert_eq!(natural_cmp("a7", "a07"), Ordering::Less);
        assert_eq!(natural_cmp("a07b", "a7c"), Ordering::Greater);
    }

    #[test]
    fn paths_with_multiple_runs() {
        let mut paths = vec!["t/X10/C2", "t/X2/C10", "t/X2/C2", "t/X10/C1"];
        paths.sort_by(|a, b| natural_cmp(a, b));
        assert_eq!(paths, vec!["t/X2/C2", "t/X2/C10", "t/X10/C1", "t/X10/C2"]);
    }
}
