#![warn(missing_docs)]

//! Circuit netlist data model for the AncstrGNN symmetry-extraction
//! framework.
//!
//! This crate provides everything the rest of the workspace needs to talk
//! about analog/mixed-signal circuits:
//!
//! * [`DeviceType`] — the 15-way primitive device taxonomy used by the
//!   paper's one-hot feature encoding (Table II);
//! * [`Subckt`] / [`Netlist`] — hierarchical subcircuit templates with
//!   devices, nets, and child instances;
//! * [`parse::parse_spice`] — a SPICE-subset parser (`.subckt`, `M`/`R`/
//!   `C`/`L`/`D`/`Q`/`X` cards, SI-suffixed values, symmetry pragmas);
//! * [`flat::FlatCircuit`] — the elaborated design: a flattened device/net
//!   list plus the hierarchy tree `T` of Problem 1;
//! * [`SymmetryConstraint`] — the three-tuple `s = (T_c, t_i, t_j)` of
//!   Section III-A, with system-/device-level classification.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use ancstr_netlist::{parse::parse_spice, flat::FlatCircuit};
//!
//! let src = "\
//! .subckt inv in out vdd vss
//! Mp out in vdd vdd pch_lvt w=2u l=0.1u
//! Mn out in vss vss nch_lvt w=1u l=0.1u
//! .ends
//! .subckt top a b vdd vss
//! Xu0 a b vdd vss inv
//! .ends
//! .top top
//! ";
//! let netlist = parse_spice(src)?;
//! let flat = FlatCircuit::elaborate(&netlist)?;
//! assert_eq!(flat.devices().len(), 2);
//! # Ok(())
//! # }
//! ```

pub mod constraint;
pub mod device;
pub mod error;
pub mod flat;
pub mod netlist;
pub mod order;
pub mod parse;
pub mod subckt;
pub mod units;
pub mod write;

pub use constraint::{ConstraintSet, PairKey, SymmetryConstraint, SymmetryKind};
pub use device::{Device, DeviceType, Geometry, PortType};
pub use error::{ElaborateError, ParseNetlistError};
pub use flat::{FlatCircuit, FlatDevice, HierNode, HierNodeId, HierNodeKind, NetId};
pub use netlist::Netlist;
pub use subckt::{CircuitClass, Element, Instance, Subckt};
