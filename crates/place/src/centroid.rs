//! Common-centroid array placement — the matching style the paper lists
//! alongside symmetry and regularity ("symmetry, regularity,
//! common-centroid").
//!
//! A matched *group* (unit-capacitor bank, current-mirror legs) is
//! arranged on a grid such that the pattern is point-symmetric about the
//! grid centre: unit `i` and unit `k−1−i` occupy positions that mirror
//! through the centroid, so any linear process gradient cancels between
//! interleaved halves.

use crate::model::Cell;

/// A grid slot assignment for one unit of a common-centroid array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CentroidSlot {
    /// Unit index within the group.
    pub unit: usize,
    /// Grid row.
    pub row: usize,
    /// Grid column.
    pub col: usize,
}

/// Assign `count` units to a near-square grid in a common-centroid
/// pattern: the *even* units (device half A of an interleaved pair) and
/// the *odd* units (half B) each occupy a point-symmetric set of slots,
/// so both halves share the grid centroid exactly — the classic
/// ABBA/BAAB arrangement that cancels linear process gradients.
///
/// Even counts guarantee the half-centroid coincidence; an odd count
/// places its extra (last) unit on the exact centre slot, keeping the
/// overall centroid on centre.
///
/// # Example
///
/// ```
/// use ancstr_place::centroid::common_centroid_slots;
///
/// let slots = common_centroid_slots(4);
/// // Half A = units {0, 2}: a full mirrored slot pair (ABBA).
/// let find = |u: usize| slots.iter().find(|s| s.unit == u).copied().expect("assigned");
/// let (a0, a1) = (find(0), find(2));
/// let rows = slots.iter().map(|s| s.row).max().unwrap_or(0) + 1;
/// let cols = slots.iter().map(|s| s.col).max().unwrap_or(0) + 1;
/// assert_eq!(a0.row + a1.row, rows - 1);
/// assert_eq!(a0.col + a1.col, cols - 1);
/// ```
pub fn common_centroid_slots(count: usize) -> Vec<CentroidSlot> {
    if count == 0 {
        return Vec::new();
    }
    // Near-square grid with an even number of spare slots, so a centred
    // window of `count` slots exists. When `count` is odd the grid's
    // total must be odd too, which requires odd `cols` (an even-width
    // grid always has an even total).
    let mut cols = (count as f64).sqrt().ceil() as usize;
    if count % 2 == 1 && cols.is_multiple_of(2) {
        cols += 1;
    }
    let mut rows = count.div_ceil(cols);
    if !(rows * cols - count).is_multiple_of(2) {
        rows += 1;
    }

    // Row-major traversal is reversal point-symmetric: window slot j and
    // window slot (count−1−j) mirror through the grid centre.
    let total = rows * cols;
    let skip = (total - count) / 2;
    let slot_at = |j: usize| {
        let k = skip + j;
        (k / cols, k % cols)
    };

    // Walk the mirrored slot pairs (j, count−1−j) and give *both* slots
    // of a pair to the same half, alternating halves pair by pair: the
    // even-unit half then owns complete mirrored pairs, making it
    // point-symmetric (and likewise the odd half). This works out
    // exactly when `count` is divisible by 4 (each half holds an even
    // number of units); for other counts the leftovers are paired
    // cross-half — exact half-coincidence is impossible on a uniform
    // grid for `count ≡ 2 (mod 4)`, so analog arrays use multiples of 4.
    let mut evens: std::collections::VecDeque<usize> = (0..count).step_by(2).collect();
    let mut odds: std::collections::VecDeque<usize> = (1..count).step_by(2).collect();
    let mut take_two = |prefer_even: bool| -> (usize, usize) {
        let (first, second) = if prefer_even {
            (&mut evens, &mut odds)
        } else {
            (&mut odds, &mut evens)
        };
        if first.len() >= 2 {
            let a = first.pop_front().expect("len checked");
            let b = first.pop_front().expect("len checked");
            (a, b)
        } else if second.len() >= 2 {
            let a = second.pop_front().expect("len checked");
            let b = second.pop_front().expect("len checked");
            (a, b)
        } else {
            // One unit left in each: a cross-half leftover pair.
            let a = first.pop_front().expect("unit remains");
            let b = second.pop_front().expect("unit remains");
            (a, b)
        }
    };

    let mut out = Vec::with_capacity(count);
    let pairs = count / 2;
    for p in 0..pairs {
        let (r1, c1) = slot_at(p);
        let (r2, c2) = slot_at(count - 1 - p);
        let (u1, u2) = take_two(p % 2 == 0);
        out.push(CentroidSlot { unit: u1, row: r1, col: c1 });
        out.push(CentroidSlot { unit: u2, row: r2, col: c2 });
    }
    if count % 2 == 1 {
        // The centre slot takes the remaining unit.
        let (r, c) = slot_at(pairs);
        let last = evens.pop_front().or_else(|| odds.pop_front()).expect("one unit left");
        out.push(CentroidSlot { unit: last, row: r, col: c });
    }
    out
}

/// Positions (lower-left corners) for a group of identical `unit` cells
/// arranged common-centroid around `(cx, cy)` with `spacing` between
/// units.
///
/// # Panics
///
/// Panics if `cells` is empty or the cells have differing dimensions
/// (common-centroid only makes sense for identical units).
pub fn arrange_common_centroid(
    cells: &[Cell],
    cx: f64,
    cy: f64,
    spacing: f64,
) -> Vec<(f64, f64)> {
    assert!(!cells.is_empty(), "a common-centroid group needs units");
    let w = cells[0].width;
    let h = cells[0].height;
    for c in cells {
        assert!(
            (c.width - w).abs() < 1e-9 && (c.height - h).abs() < 1e-9,
            "common-centroid units must be identical"
        );
    }
    let slots = common_centroid_slots(cells.len());
    let rows = slots.iter().map(|s| s.row).max().expect("non-empty") + 1;
    let cols = slots.iter().map(|s| s.col).max().expect("non-empty") + 1;
    let pitch_x = w + spacing;
    let pitch_y = h + spacing;
    let origin_x = cx - (cols as f64 * pitch_x - spacing) / 2.0;
    let origin_y = cy - (rows as f64 * pitch_y - spacing) / 2.0;

    let mut out = vec![(0.0, 0.0); cells.len()];
    for s in &slots {
        out[s.unit] = (
            origin_x + s.col as f64 * pitch_x,
            origin_y + s.row as f64 * pitch_y,
        );
    }
    out
}

/// Centroid of a sub-group of placed units.
pub fn centroid_of(positions: &[(f64, f64)], cells: &[Cell], which: &[usize]) -> (f64, f64) {
    let mut sx = 0.0;
    let mut sy = 0.0;
    for &i in which {
        sx += positions[i].0 + cells[i].width / 2.0;
        sy += positions[i].1 + cells[i].height / 2.0;
    }
    let n = which.len().max(1) as f64;
    (sx / n, sy / n)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn units(n: usize) -> Vec<Cell> {
        (0..n)
            .map(|i| Cell { name: format!("u{i}"), width: 2.0, height: 1.0 })
            .collect()
    }

    #[test]
    fn slots_cover_without_collisions() {
        for n in 1..=20 {
            let slots = common_centroid_slots(n);
            assert_eq!(slots.len(), n);
            let mut seen_units: Vec<bool> = vec![false; n];
            let mut seen_cells = std::collections::HashSet::new();
            for s in &slots {
                assert!(!seen_units[s.unit], "unit {} assigned twice (n={n})", s.unit);
                seen_units[s.unit] = true;
                assert!(seen_cells.insert((s.row, s.col)), "slot collision (n={n})");
            }
        }
    }

    #[test]
    fn halves_are_point_symmetric_for_multiples_of_four() {
        for n in [4usize, 8, 12, 16, 20] {
            let slots = common_centroid_slots(n);
            let rows = slots.iter().map(|s| s.row).max().unwrap() + 1;
            let cols = slots.iter().map(|s| s.col).max().unwrap() + 1;
            for parity in [0usize, 1] {
                let half: std::collections::HashSet<(usize, usize)> = slots
                    .iter()
                    .filter(|s| s.unit % 2 == parity)
                    .map(|s| (s.row, s.col))
                    .collect();
                for &(r, c) in &half {
                    let mirror = (rows - 1 - r, cols - 1 - c);
                    assert!(
                        half.contains(&mirror),
                        "n={n} parity={parity}: slot ({r},{c}) lacks its mirror"
                    );
                }
            }
        }
    }

    #[test]
    fn interleaved_halves_share_the_centroid() {
        for n in [4usize, 8, 12, 16] {
            let cells = units(n);
            let pos = arrange_common_centroid(&cells, 10.0, 5.0, 0.5);
            // Split units into {even} and {odd} halves — the interleaving
            // pairs u with n−1−u, so centroids coincide.
            let evens: Vec<usize> = (0..n).step_by(2).collect();
            let odds: Vec<usize> = (1..n).step_by(2).collect();
            let (ex, ey) = centroid_of(&pos, &cells, &evens);
            let (ox, oy) = centroid_of(&pos, &cells, &odds);
            assert!((ex - ox).abs() < 1e-9, "n={n}: {ex} vs {ox}");
            assert!((ey - oy).abs() < 1e-9, "n={n}: {ey} vs {oy}");
            // And the shared centroid is the requested one.
            assert!((ex - 10.0).abs() < 1e-9);
            assert!((ey - 5.0).abs() < 1e-9);
        }
    }

    #[test]
    fn no_unit_overlap() {
        let cells = units(9);
        let pos = arrange_common_centroid(&cells, 0.0, 0.0, 0.3);
        for i in 0..9 {
            for j in (i + 1)..9 {
                let dx = (pos[i].0 - pos[j].0).abs();
                let dy = (pos[i].1 - pos[j].1).abs();
                assert!(
                    dx >= 2.0 - 1e-9 || dy >= 1.0 - 1e-9,
                    "units {i} and {j} overlap"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "identical")]
    fn mixed_dimensions_panic() {
        let mut cells = units(4);
        cells[2].width = 5.0;
        let _ = arrange_common_centroid(&cells, 0.0, 0.0, 0.1);
    }

    #[test]
    #[should_panic(expected = "needs units")]
    fn empty_group_panics() {
        let _ = arrange_common_centroid(&[], 0.0, 0.0, 0.1);
    }
}
