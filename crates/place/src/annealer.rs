//! A compact simulated-annealing placer with optional hard symmetry
//! enforcement.
//!
//! With `enforce_symmetry`, every move re-mirrors each constrained
//! pair's second cell about the shared vertical axis (and recentres
//! axis cells), so the symmetry deviation stays zero by construction —
//! how analog placers implement symmetry constraints in practice. The
//! axis position itself is also a move.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use crate::cost::{cost, CostWeights};
use crate::model::{Placement, PlacementProblem};

/// Annealer configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct AnnealConfig {
    /// Enforce the symmetry pairs as hard constraints.
    pub enforce_symmetry: bool,
    /// Cost weights.
    pub weights: CostWeights,
    /// Moves per temperature step.
    pub moves_per_step: usize,
    /// Number of temperature steps.
    pub steps: usize,
    /// Initial temperature as a *percentage of the initial cost* (the
    /// schedule auto-scales to the problem; it ends near-greedy).
    pub start_temperature: f64,
    /// Geometric cooling factor, used only when `steps <= 1` (otherwise
    /// derived from the schedule endpoints).
    pub cooling: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AnnealConfig {
    fn default() -> AnnealConfig {
        AnnealConfig {
            enforce_symmetry: true,
            weights: CostWeights::default(),
            moves_per_step: 220,
            steps: 160,
            start_temperature: 20.0,
            cooling: 0.94,
            seed: 1,
        }
    }
}

/// Result of a placement run.
#[derive(Debug, Clone, PartialEq)]
pub struct PlaceResult {
    /// The best placement found.
    pub placement: Placement,
    /// Its final cost.
    pub cost: f64,
}

/// Mirror cell `b` of a pair about the axis and align it vertically
/// with `a`.
fn mirror_partner(problem: &PlacementProblem, placement: &mut Placement, a: usize, b: usize) {
    let (xa, ya) = placement.positions[a];
    let ca = &problem.cells[a];
    let cb = &problem.cells[b];
    let center_a = xa + ca.width / 2.0;
    let center_b = 2.0 * placement.axis - center_a;
    placement.positions[b] = (center_b - cb.width / 2.0, ya + (ca.height - cb.height) / 2.0);
}

/// Re-establish all hard symmetry relations.
fn enforce(problem: &PlacementProblem, placement: &mut Placement) {
    for &(a, b) in &problem.sym_pairs {
        mirror_partner(problem, placement, a, b);
    }
    for &s in &problem.self_sym {
        let c = &problem.cells[s];
        placement.positions[s].0 = placement.axis - c.width / 2.0;
    }
}

/// Side of the placement region: big enough for the total area with
/// slack, and never smaller than the widest/tallest cell.
fn region_side(problem: &PlacementProblem) -> f64 {
    let max_w = problem.cells.iter().map(|c| c.width).fold(0.0, f64::max);
    let max_h = problem.cells.iter().map(|c| c.height).fold(0.0, f64::max);
    (problem.total_area().sqrt() * 1.8)
        .max(2.0 * max_w)
        .max(2.0 * max_h)
        .max(4.0)
}

/// Seeded initial placement: cells scattered uniformly over the region.
fn initial_placement(problem: &PlacementProblem, rng: &mut StdRng) -> Placement {
    let side = region_side(problem);
    let positions = problem
        .cells
        .iter()
        .map(|_| (rng.gen_range(0.0..side), rng.gen_range(0.0..side)))
        .collect();
    Placement { positions, axis: side / 2.0 }
}

/// Run the annealer.
///
/// # Panics
///
/// Panics if the problem has no cells.
pub fn place(problem: &PlacementProblem, config: &AnnealConfig) -> PlaceResult {
    assert!(!problem.is_empty(), "cannot place an empty problem");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut current = initial_placement(problem, &mut rng);
    if config.enforce_symmetry {
        enforce(problem, &mut current);
    }
    let mut current_cost = cost(problem, &current, &config.weights);
    let mut best = current.clone();
    let mut best_cost = current_cost;

    let span = region_side(problem);
    // Scale the schedule to the problem: start hot relative to the
    // initial cost, finish near-greedy. `start_temperature` acts as a
    // percentage knob of the initial cost.
    let mut temperature = (config.start_temperature / 100.0) * current_cost.max(1.0);
    let end_temperature = 1e-4 * current_cost.max(1.0);
    let cooling = if config.steps > 1 {
        (end_temperature / temperature.max(1e-12)).powf(1.0 / config.steps as f64)
    } else {
        config.cooling
    };

    // In enforced mode, only pair "leaders" and unconstrained cells move.
    let mut movable: Vec<usize> = (0..problem.len()).collect();
    if config.enforce_symmetry {
        let followers: std::collections::HashSet<usize> =
            problem.sym_pairs.iter().map(|&(_, b)| b).collect();
        movable.retain(|i| !followers.contains(i));
    }

    let start_temperature = temperature;
    for _ in 0..config.steps {
        for _ in 0..config.moves_per_step {
            let mut candidate = current.clone();
            let reach = (temperature / start_temperature).max(0.05) * span / 2.0;
            match rng.gen_range(0..10) {
                // Translate one cell.
                0..=6 => {
                    let i = movable[rng.gen_range(0..movable.len())];
                    let (x, y) = candidate.positions[i];
                    candidate.positions[i] = (
                        x + rng.gen_range(-reach..reach),
                        y + rng.gen_range(-reach..reach),
                    );
                }
                // Swap two cells.
                7..=8 => {
                    let i = movable[rng.gen_range(0..movable.len())];
                    let j = movable[rng.gen_range(0..movable.len())];
                    candidate.positions.swap(i, j);
                }
                // Nudge the axis.
                _ => {
                    candidate.axis += rng.gen_range(-reach..reach);
                }
            }
            if config.enforce_symmetry {
                enforce(problem, &mut candidate);
            }
            let c = cost(problem, &candidate, &config.weights);
            let accept = c < current_cost
                || rng.gen::<f64>() < ((current_cost - c) / temperature.max(1e-9)).exp();
            if accept {
                current = candidate;
                current_cost = c;
                if c < best_cost {
                    best = current.clone();
                    best_cost = c;
                }
            }
        }
        temperature *= cooling;
    }
    PlaceResult { placement: best, cost: best_cost }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{hpwl, overlap_area, symmetry_deviation, symmetry_deviation_best_axis};
    use crate::model::PlacementProblem;
    use ancstr_circuits::comparator::comp2;
    use ancstr_netlist::flat::FlatCircuit;
    use ancstr_netlist::ConstraintSet;

    fn quick() -> AnnealConfig {
        AnnealConfig { moves_per_step: 120, steps: 80, ..AnnealConfig::default() }
    }

    #[test]
    fn enforced_placement_has_zero_deviation_and_no_overlap() {
        let flat = FlatCircuit::elaborate(&comp2(1)).unwrap();
        let p = PlacementProblem::from_circuit(&flat, flat.ground_truth());
        let r = place(&p, &quick());
        assert!(
            symmetry_deviation(&p, &r.placement) < 1e-9,
            "hard constraints hold"
        );
        assert!(
            overlap_area(&p, &r.placement) < 0.5,
            "overlap mostly resolved: {}",
            overlap_area(&p, &r.placement)
        );
    }

    #[test]
    fn unconstrained_placement_drifts_asymmetric() {
        let flat = FlatCircuit::elaborate(&comp2(1)).unwrap();
        let p = PlacementProblem::from_circuit(&flat, flat.ground_truth());
        let cfg = AnnealConfig { enforce_symmetry: false, ..quick() };
        let r = place(&p, &cfg);
        assert!(
            symmetry_deviation_best_axis(&p, &r.placement) > 0.1,
            "free annealing does not land symmetric: {}",
            symmetry_deviation_best_axis(&p, &r.placement)
        );
    }

    #[test]
    fn annealing_improves_over_initial() {
        let flat = FlatCircuit::elaborate(&comp2(2)).unwrap();
        let p = PlacementProblem::from_circuit(&flat, &ConstraintSet::new());
        let bad_cfg = AnnealConfig { steps: 1, moves_per_step: 1, ..AnnealConfig::default() };
        let good_cfg = quick();
        let bad = place(&p, &bad_cfg);
        let good = place(&p, &good_cfg);
        assert!(good.cost < bad.cost, "{} < {}", good.cost, bad.cost);
        assert!(hpwl(&p, &good.placement) > 0.0);
    }

    #[test]
    fn placement_is_seed_deterministic() {
        let flat = FlatCircuit::elaborate(&comp2(1)).unwrap();
        let p = PlacementProblem::from_circuit(&flat, flat.ground_truth());
        let a = place(&p, &quick());
        let b = place(&p, &quick());
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_problem_panics() {
        let p = PlacementProblem {
            cells: vec![],
            nets: vec![],
            sym_pairs: vec![],
            self_sym: vec![],
        };
        let _ = place(&p, &AnnealConfig::default());
    }
}
