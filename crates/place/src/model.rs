//! The placement problem: cells, nets, and symmetry requirements
//! distilled from a circuit and a constraint set.

use std::collections::HashMap;

use ancstr_netlist::flat::{FlatCircuit, NetId};
use ancstr_netlist::{ConstraintSet, SymmetryKind};

/// A rectangular cell to place (one primitive device).
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Device path (diagnostics).
    pub name: String,
    /// Width (µm).
    pub width: f64,
    /// Height (µm).
    pub height: f64,
}

/// A placement problem over the devices of one circuit.
///
/// Nets are hyperedges over cell indices; `sym_pairs` lists the matched
/// pairs a symmetry-aware placer must mirror about a common vertical
/// axis; `self_sym` lists cells to centre on that axis.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementProblem {
    /// Cells, indexed by flat-device order.
    pub cells: Vec<Cell>,
    /// Hyperedges (nets touching ≥ 2 cells).
    pub nets: Vec<Vec<usize>>,
    /// Matched pairs (cell indices).
    pub sym_pairs: Vec<(usize, usize)>,
    /// Axis-centred cells.
    pub self_sym: Vec<usize>,
}

impl PlacementProblem {
    /// Build from a circuit, taking *device-level* constraints from
    /// `constraints` (block-level constraints are a floorplanning
    /// concern above this flat device placer). When one cell appears in
    /// several pairs (an array group), a chain of pairs is kept so each
    /// cell is mirrored at most once.
    pub fn from_circuit(flat: &FlatCircuit, constraints: &ConstraintSet) -> PlacementProblem {
        let cells: Vec<Cell> = flat
            .devices()
            .iter()
            .map(|d| Cell {
                name: d.path.clone(),
                width: d.geometry.width.max(0.1),
                height: d.geometry.length.max(0.1),
            })
            .collect();

        // Nets: group pins by NetId.
        let mut by_net: HashMap<NetId, Vec<usize>> = HashMap::new();
        for (i, d) in flat.devices().iter().enumerate() {
            for (net, _) in d.typed_pins() {
                let entry = by_net.entry(net).or_default();
                if entry.last() != Some(&i) {
                    entry.push(i);
                }
            }
        }
        let mut nets: Vec<Vec<usize>> = by_net
            .into_iter()
            .filter(|(_, cells)| cells.len() >= 2 && cells.len() <= 32)
            .map(|(_, cells)| cells)
            .collect();
        nets.sort(); // deterministic order

        // Symmetry pairs: device-level constraints, each cell used once.
        let mut used = vec![false; cells.len()];
        let mut sym_pairs = Vec::new();
        for c in constraints.iter() {
            if c.kind != SymmetryKind::Device {
                continue;
            }
            let (Some(a), Some(b)) = (
                flat.node(c.pair.lo()).device_index(),
                flat.node(c.pair.hi()).device_index(),
            ) else {
                continue;
            };
            if !used[a] && !used[b] {
                used[a] = true;
                used[b] = true;
                sym_pairs.push((a, b));
            }
        }
        PlacementProblem { cells, nets, sym_pairs, self_sym: Vec::new() }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the problem is empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Total cell area (placement-region sizing).
    pub fn total_area(&self) -> f64 {
        self.cells.iter().map(|c| c.width * c.height).sum()
    }
}

/// Cell positions: lower-left corners.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    /// One `(x, y)` per cell.
    pub positions: Vec<(f64, f64)>,
    /// The shared vertical symmetry axis (x coordinate).
    pub axis: f64,
}

impl Placement {
    /// Centre `(x, y)` of cell `i`.
    pub fn center(&self, problem: &PlacementProblem, i: usize) -> (f64, f64) {
        let (x, y) = self.positions[i];
        let c = &problem.cells[i];
        (x + c.width / 2.0, y + c.height / 2.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ancstr_circuits::comparator::comp2;
    use ancstr_netlist::flat::FlatCircuit;

    #[test]
    fn problem_from_comp2() {
        let flat = FlatCircuit::elaborate(&comp2(1)).unwrap();
        let p = PlacementProblem::from_circuit(&flat, flat.ground_truth());
        assert_eq!(p.len(), 8);
        assert!(!p.is_empty());
        assert!(p.total_area() > 0.0);
        // Three matched pairs from the ground truth.
        assert_eq!(p.sym_pairs.len(), 3);
        // Each cell mirrored at most once.
        let mut seen = std::collections::HashSet::new();
        for &(a, b) in &p.sym_pairs {
            assert!(seen.insert(a));
            assert!(seen.insert(b));
        }
        assert!(!p.nets.is_empty());
    }

    #[test]
    fn empty_constraints_give_no_pairs() {
        let flat = FlatCircuit::elaborate(&comp2(1)).unwrap();
        let p = PlacementProblem::from_circuit(&flat, &ConstraintSet::new());
        assert!(p.sym_pairs.is_empty());
        assert_eq!(p.len(), 8);
    }
}
