//! Row legalization: snap an annealed placement onto uniform rows and
//! pack each row left-to-right so no two cells in a row overlap — the
//! step that turns an analytical/annealed solution into a DRC-legal
//! arrangement in real flows.

use crate::model::{Placement, PlacementProblem};

/// Options for [`legalize_rows`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LegalizeOptions {
    /// Row pitch (µm). Cells taller than one row still occupy one row
    /// slot (this is a placement-topology tool, not a DRC engine).
    pub row_height: f64,
    /// Horizontal spacing inserted between adjacent cells in a row.
    pub spacing: f64,
}

impl Default for LegalizeOptions {
    fn default() -> LegalizeOptions {
        LegalizeOptions { row_height: 2.0, spacing: 0.2 }
    }
}

/// Snap `placement` to rows: each cell's y becomes its nearest row
/// origin; within every row, cells keep their x-order but are packed
/// with `spacing` so same-row overlaps vanish. Mirrored pairs from
/// `problem.sym_pairs` are kept mirrored about the axis by legalizing
/// the pair's leader and re-mirroring the follower afterwards.
///
/// Returns the legalized placement; same-row overlap is zero by
/// construction (cross-row overlap can only come from cells taller than
/// the pitch).
///
/// # Panics
///
/// Panics if `options.row_height <= 0`.
pub fn legalize_rows(
    problem: &PlacementProblem,
    placement: &Placement,
    options: &LegalizeOptions,
) -> Placement {
    assert!(options.row_height > 0.0, "row height must be positive");
    let mut out = placement.clone();
    let followers: std::collections::HashSet<usize> =
        problem.sym_pairs.iter().map(|&(_, b)| b).collect();

    // 1. Snap every non-follower to its nearest row.
    let snap = |y: f64| (y / options.row_height).round() * options.row_height;
    for i in 0..problem.len() {
        if !followers.contains(&i) {
            out.positions[i].1 = snap(out.positions[i].1);
        }
    }

    // 2. Pack each row left-to-right, preserving x-order.
    let mut rows: std::collections::BTreeMap<i64, Vec<usize>> = std::collections::BTreeMap::new();
    for i in 0..problem.len() {
        if followers.contains(&i) {
            continue;
        }
        let key = (out.positions[i].1 / options.row_height).round() as i64;
        rows.entry(key).or_default().push(i);
    }
    for cells in rows.values_mut() {
        cells.sort_by(|&a, &b| {
            out.positions[a]
                .0
                .partial_cmp(&out.positions[b].0)
                .expect("finite coordinates")
        });
        let mut cursor = f64::NEG_INFINITY;
        for &i in cells.iter() {
            let x = out.positions[i].0.max(cursor);
            out.positions[i].0 = x;
            cursor = x + problem.cells[i].width + options.spacing;
        }
    }

    // 3. Re-mirror the followers about the axis.
    for &(a, b) in &problem.sym_pairs {
        let (xa, ya) = out.positions[a];
        let ca = &problem.cells[a];
        let cb = &problem.cells[b];
        let center_a = xa + ca.width / 2.0;
        let center_b = 2.0 * out.axis - center_a;
        out.positions[b] = (center_b - cb.width / 2.0, ya + (ca.height - cb.height) / 2.0);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{overlap_area, symmetry_deviation};
    use crate::model::Cell;

    fn problem(n: usize) -> PlacementProblem {
        PlacementProblem {
            cells: (0..n)
                .map(|i| Cell { name: format!("c{i}"), width: 2.0, height: 1.0 })
                .collect(),
            nets: vec![(0..n).collect()],
            sym_pairs: vec![],
            self_sym: vec![],
        }
    }

    #[test]
    fn rows_are_aligned_and_packed() {
        let p = problem(4);
        let messy = Placement {
            positions: vec![(0.0, 0.3), (0.5, 0.4), (1.0, -0.2), (9.0, 4.1)],
            axis: 5.0,
        };
        let legal = legalize_rows(&p, &messy, &LegalizeOptions::default());
        // All y-coordinates are multiples of the pitch.
        for &(_, y) in &legal.positions {
            assert!((y / 2.0 - (y / 2.0).round()).abs() < 1e-9, "y = {y}");
        }
        // The three row-0 cells no longer overlap.
        assert_eq!(overlap_area(&p, &legal), 0.0);
        // Packing preserves x-order.
        assert!(legal.positions[0].0 < legal.positions[1].0);
        assert!(legal.positions[1].0 < legal.positions[2].0);
    }

    #[test]
    fn symmetry_survives_legalization() {
        let mut p = problem(4);
        p.sym_pairs = vec![(0, 1), (2, 3)];
        let messy = Placement {
            positions: vec![(0.0, 0.3), (7.7, 0.2), (1.0, 2.4), (6.3, 2.6)],
            axis: 5.0,
        };
        let legal = legalize_rows(&p, &messy, &LegalizeOptions::default());
        assert!(symmetry_deviation(&p, &legal) < 1e-9);
        // Leaders snapped to rows.
        assert_eq!(legal.positions[0].1, 0.0);
        assert_eq!(legal.positions[2].1, 2.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_row_height_panics() {
        let p = problem(1);
        let pl = Placement { positions: vec![(0.0, 0.0)], axis: 0.0 };
        let _ = legalize_rows(&p, &pl, &LegalizeOptions { row_height: 0.0, spacing: 0.1 });
    }

    #[test]
    fn end_to_end_anneal_then_legalize() {
        use crate::annealer::{place, AnnealConfig};
        use ancstr_netlist::flat::FlatCircuit;
        let flat = FlatCircuit::elaborate(&ancstr_circuits::comparator::comp2(1)).unwrap();
        let p = crate::model::PlacementProblem::from_circuit(&flat, flat.ground_truth());
        let cfg = AnnealConfig { steps: 40, moves_per_step: 80, ..AnnealConfig::default() };
        let annealed = place(&p, &cfg);
        let legal = legalize_rows(&p, &annealed.placement, &LegalizeOptions::default());
        assert!(symmetry_deviation(&p, &legal) < 1e-9, "pairs stay mirrored");
        for &(_, y) in &legal.positions {
            assert!((y / 2.0 - (y / 2.0).round()).abs() < 1e-9);
        }
    }
}
