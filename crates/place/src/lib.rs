#![warn(missing_docs)]

//! A compact symmetry-aware analog placer.
//!
//! The paper motivates symmetry extraction with post-layout quality
//! (Fig. 1: removing one matched-resistor constraint degrades a ΔΣ
//! modulator's SNDR by 3.1 dB). This crate provides the downstream
//! substrate that turns that story into a measurable experiment: a
//! simulated-annealing placer that can run with the extracted
//! constraints (hard-mirrored pairs about a shared axis) or without
//! them, reporting wirelength and the geometric *symmetry deviation* of
//! the matched pairs — the mismatch proxy behind Fig. 1's performance
//! delta.
//!
//! # Example
//!
//! ```
//! use ancstr_place::{place, AnnealConfig, PlacementProblem};
//! use ancstr_place::cost::symmetry_deviation;
//! use ancstr_netlist::{parse::parse_spice, flat::FlatCircuit};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let nl = parse_spice("\
//! .subckt dp inp inn o1 o2 t vss
//! M1 o1 inp t vss nch w=4u l=0.2u
//! M2 o2 inn t vss nch w=4u l=0.2u
//! *.symmetry M1 M2
//! .ends
//! ")?;
//! let flat = FlatCircuit::elaborate(&nl)?;
//! let problem = PlacementProblem::from_circuit(&flat, flat.ground_truth());
//! let cfg = AnnealConfig { steps: 40, moves_per_step: 60, ..AnnealConfig::default() };
//! let result = place(&problem, &cfg);
//! assert!(symmetry_deviation(&problem, &result.placement) < 1e-9);
//! # Ok(())
//! # }
//! ```

pub mod annealer;
pub mod centroid;
pub mod cost;
pub mod legalize;
pub mod model;

pub use annealer::{place, AnnealConfig, PlaceResult};
pub use cost::{cost, hpwl, overlap_area, symmetry_deviation, CostWeights};
pub use legalize::{legalize_rows, LegalizeOptions};
pub use model::{Cell, Placement, PlacementProblem};
