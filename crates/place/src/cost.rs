//! Placement quality metrics: half-perimeter wirelength, pairwise
//! overlap area, and symmetry deviation.

use crate::model::{Placement, PlacementProblem};

/// Half-perimeter wirelength over all nets, using cell centres.
pub fn hpwl(problem: &PlacementProblem, placement: &Placement) -> f64 {
    let mut total = 0.0;
    for net in &problem.nets {
        let mut min_x = f64::INFINITY;
        let mut max_x = f64::NEG_INFINITY;
        let mut min_y = f64::INFINITY;
        let mut max_y = f64::NEG_INFINITY;
        for &i in net {
            let (x, y) = placement.center(problem, i);
            min_x = min_x.min(x);
            max_x = max_x.max(x);
            min_y = min_y.min(y);
            max_y = max_y.max(y);
        }
        total += (max_x - min_x) + (max_y - min_y);
    }
    total
}

/// Total pairwise overlap area (0 for a legal placement).
pub fn overlap_area(problem: &PlacementProblem, placement: &Placement) -> f64 {
    let n = problem.len();
    let mut total = 0.0;
    for i in 0..n {
        let (xi, yi) = placement.positions[i];
        let ci = &problem.cells[i];
        for j in (i + 1)..n {
            let (xj, yj) = placement.positions[j];
            let cj = &problem.cells[j];
            let ox = (xi + ci.width).min(xj + cj.width) - xi.max(xj);
            let oy = (yi + ci.height).min(yj + cj.height) - yi.max(yj);
            if ox > 0.0 && oy > 0.0 {
                total += ox * oy;
            }
        }
    }
    total
}

/// Mean symmetry deviation of the matched pairs: for each pair, how far
/// the two centres are from mirror positions about the placement's
/// axis, plus their vertical misalignment. Zero for a perfectly
/// symmetric layout; this is the geometric quantity whose growth the
/// paper's Fig. 1 links to SNDR/SFDR degradation.
pub fn symmetry_deviation(problem: &PlacementProblem, placement: &Placement) -> f64 {
    if problem.sym_pairs.is_empty() && problem.self_sym.is_empty() {
        return 0.0;
    }
    let mut total = 0.0;
    let mut count = 0usize;
    for &(a, b) in &problem.sym_pairs {
        let (xa, ya) = placement.center(problem, a);
        let (xb, yb) = placement.center(problem, b);
        total += ((xa + xb) / 2.0 - placement.axis).abs() + (ya - yb).abs();
        count += 1;
    }
    for &s in &problem.self_sym {
        let (x, _) = placement.center(problem, s);
        total += (x - placement.axis).abs();
        count += 1;
    }
    total / count as f64
}

/// Symmetry deviation against the *best possible* axis for this
/// placement (the median of the pair midpoints, the L1 minimizer) —
/// the fair way to judge a placement that never reasoned about an axis.
pub fn symmetry_deviation_best_axis(
    problem: &PlacementProblem,
    placement: &Placement,
) -> f64 {
    if problem.sym_pairs.is_empty() && problem.self_sym.is_empty() {
        return 0.0;
    }
    let mut midpoints: Vec<f64> = problem
        .sym_pairs
        .iter()
        .map(|&(a, b)| {
            let (xa, _) = placement.center(problem, a);
            let (xb, _) = placement.center(problem, b);
            (xa + xb) / 2.0
        })
        .chain(
            problem
                .self_sym
                .iter()
                .map(|&s| placement.center(problem, s).0),
        )
        .collect();
    midpoints.sort_by(|a, b| a.partial_cmp(b).expect("finite coordinates"));
    let axis = midpoints[midpoints.len() / 2];
    let tuned = Placement { positions: placement.positions.clone(), axis };
    symmetry_deviation(problem, &tuned)
}

/// The annealer's scalar objective.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostWeights {
    /// Weight of the overlap penalty.
    pub overlap: f64,
    /// Weight of the symmetry-deviation penalty (only meaningful when
    /// symmetry is *not* enforced by construction).
    pub symmetry: f64,
}

impl Default for CostWeights {
    fn default() -> CostWeights {
        CostWeights { overlap: 30.0, symmetry: 0.0 }
    }
}

/// Combined cost.
pub fn cost(problem: &PlacementProblem, placement: &Placement, w: &CostWeights) -> f64 {
    hpwl(problem, placement)
        + w.overlap * overlap_area(problem, placement)
        + w.symmetry * symmetry_deviation(problem, placement)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Cell;

    fn two_cell_problem() -> PlacementProblem {
        PlacementProblem {
            cells: vec![
                Cell { name: "a".into(), width: 2.0, height: 1.0 },
                Cell { name: "b".into(), width: 2.0, height: 1.0 },
            ],
            nets: vec![vec![0, 1]],
            sym_pairs: vec![(0, 1)],
            self_sym: vec![],
        }
    }

    #[test]
    fn hpwl_is_manhattan_extent() {
        let p = two_cell_problem();
        let pl = Placement { positions: vec![(0.0, 0.0), (4.0, 2.0)], axis: 3.0 };
        // Centres: (1, 0.5) and (5, 2.5) → HPWL = 4 + 2.
        assert!((hpwl(&p, &pl) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn overlap_detects_intersection() {
        let p = two_cell_problem();
        let apart = Placement { positions: vec![(0.0, 0.0), (5.0, 0.0)], axis: 0.0 };
        assert_eq!(overlap_area(&p, &apart), 0.0);
        let stacked = Placement { positions: vec![(0.0, 0.0), (1.0, 0.0)], axis: 0.0 };
        assert!((overlap_area(&p, &stacked) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn deviation_zero_for_mirrored_pair() {
        let p = two_cell_problem();
        // Centres (1, .5) and (5, .5); axis 3 → perfectly mirrored.
        let pl = Placement { positions: vec![(0.0, 0.0), (4.0, 0.0)], axis: 3.0 };
        assert!(symmetry_deviation(&p, &pl) < 1e-12);
        // Shift one cell up: deviation grows by the misalignment.
        let bad = Placement { positions: vec![(0.0, 0.0), (4.0, 2.0)], axis: 3.0 };
        assert!((symmetry_deviation(&p, &bad) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn no_pairs_no_deviation() {
        let mut p = two_cell_problem();
        p.sym_pairs.clear();
        let pl = Placement { positions: vec![(0.0, 0.0), (9.0, 9.0)], axis: 0.0 };
        assert_eq!(symmetry_deviation(&p, &pl), 0.0);
    }
}
