//! Property tests for the placer: cost-metric invariants and hard
//! symmetry enforcement over random problems.

use ancstr_place::{
    cost::symmetry_deviation_best_axis, hpwl, overlap_area, place, symmetry_deviation,
    AnnealConfig, Cell, Placement, PlacementProblem,
};
use proptest::prelude::*;

fn arb_problem() -> impl Strategy<Value = PlacementProblem> {
    let cell = (1u32..6, 1u32..4).prop_map(|(w, h)| (f64::from(w), f64::from(h)));
    prop::collection::vec(cell, 4..10).prop_map(|dims| {
        let cells: Vec<Cell> = dims
            .iter()
            .enumerate()
            .map(|(i, &(w, h))| Cell { name: format!("c{i}"), width: w, height: h })
            .collect();
        let n = cells.len();
        // A ring net structure plus one global net.
        let mut nets: Vec<Vec<usize>> = (0..n).map(|i| vec![i, (i + 1) % n]).collect();
        nets.push((0..n).collect());
        // Pair up the first 2·k cells.
        let k = n / 2;
        let sym_pairs = (0..k.min(3)).map(|i| (2 * i, 2 * i + 1)).collect();
        PlacementProblem { cells, nets, sym_pairs, self_sym: vec![] }
    })
}

fn quick_config(seed: u64, enforce: bool) -> AnnealConfig {
    AnnealConfig {
        enforce_symmetry: enforce,
        moves_per_step: 40,
        steps: 30,
        seed,
        ..AnnealConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Hard-enforced placements keep deviation at zero regardless of the
    /// problem or seed.
    #[test]
    fn enforcement_is_exact(p in arb_problem(), seed in 0u64..50) {
        let r = place(&p, &quick_config(seed, true));
        prop_assert!(symmetry_deviation(&p, &r.placement) < 1e-9);
    }

    /// Cost metrics are non-negative and finite everywhere.
    #[test]
    fn metrics_are_sane(p in arb_problem(), seed in 0u64..50) {
        let r = place(&p, &quick_config(seed, false));
        let h = hpwl(&p, &r.placement);
        let o = overlap_area(&p, &r.placement);
        prop_assert!(h.is_finite() && h >= 0.0);
        prop_assert!(o.is_finite() && o >= 0.0);
        let d = symmetry_deviation_best_axis(&p, &r.placement);
        prop_assert!(d.is_finite() && d >= 0.0);
    }

    /// The best-axis deviation never exceeds the fixed-axis deviation.
    #[test]
    fn best_axis_is_at_least_as_good(p in arb_problem(), seed in 0u64..50) {
        let r = place(&p, &quick_config(seed, false));
        let fixed = symmetry_deviation(&p, &r.placement);
        let best = symmetry_deviation_best_axis(&p, &r.placement);
        prop_assert!(best <= fixed + 1e-9, "best {best} vs fixed {fixed}");
    }

    /// Translating the whole placement leaves HPWL and overlap invariant.
    #[test]
    fn metrics_are_translation_invariant(
        p in arb_problem(),
        dx in -10.0f64..10.0,
        dy in -10.0f64..10.0,
    ) {
        let r = place(&p, &quick_config(1, false));
        let shifted = Placement {
            positions: r
                .placement
                .positions
                .iter()
                .map(|&(x, y)| (x + dx, y + dy))
                .collect(),
            axis: r.placement.axis + dx,
        };
        prop_assert!((hpwl(&p, &r.placement) - hpwl(&p, &shifted)).abs() < 1e-9);
        prop_assert!(
            (overlap_area(&p, &r.placement) - overlap_area(&p, &shifted)).abs() < 1e-9
        );
        prop_assert!(
            (symmetry_deviation(&p, &r.placement) - symmetry_deviation(&p, &shifted)).abs()
                < 1e-9
        );
    }
}
