//! Property tests for the NN substrate: linear-algebra identities,
//! autograd linearity, and eigen-solver invariants.

use ancstr_nn::linalg::{normalized_laplacian, symmetric_eigenvalues};
use ancstr_nn::{cosine_similarity, Matrix, SparseMatrix, Tape};
use proptest::prelude::*;

fn arb_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-2.0f64..2.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

proptest! {
    /// (A·B)ᵀ = Bᵀ·Aᵀ.
    #[test]
    fn matmul_transpose_identity(a in arb_matrix(3, 4), b in arb_matrix(4, 2)) {
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        prop_assert!(left.sub(&right).max_abs() < 1e-12);
    }

    /// Matmul distributes over addition.
    #[test]
    fn matmul_distributes(a in arb_matrix(2, 3), b in arb_matrix(3, 2), c in arb_matrix(3, 2)) {
        let left = a.matmul(&b.add(&c));
        let right = a.matmul(&b).add(&a.matmul(&c));
        prop_assert!(left.sub(&right).max_abs() < 1e-12);
    }

    /// Cosine similarity is bounded and symmetric.
    #[test]
    fn cosine_bounded_symmetric(
        a in prop::collection::vec(-5.0f64..5.0, 1..10),
        b in prop::collection::vec(-5.0f64..5.0, 1..10),
    ) {
        let s1 = cosine_similarity(&a, &b);
        let s2 = cosine_similarity(&b, &a);
        prop_assert!((-1.0 - 1e-12..=1.0 + 1e-12).contains(&s1));
        prop_assert!((s1 - s2).abs() < 1e-12);
        // Self-similarity is 1 for nonzero vectors.
        if a.iter().any(|&x| x != 0.0) {
            prop_assert!((cosine_similarity(&a, &a) - 1.0).abs() < 1e-12);
        }
    }

    /// Autograd is linear: grad of (αf) equals α · grad of f.
    #[test]
    fn backward_is_linear(x in arb_matrix(2, 3), alpha in 0.1f64..3.0) {
        let run = |scale: f64| {
            let mut t = Tape::new();
            let xn = t.leaf(x.clone());
            let s = t.sigmoid(xn);
            let sq = t.mul_elem(s, s);
            let scaled = t.scale(sq, scale);
            let loss = t.sum(scaled);
            let grads = t.backward(loss);
            grads.grad(xn).expect("x influences loss").clone()
        };
        let g1 = run(1.0);
        let ga = run(alpha);
        prop_assert!(ga.sub(&g1.scale(alpha)).max_abs() < 1e-10);
    }

    /// Sparse products agree with their dense materialization.
    #[test]
    fn sparse_matches_dense(
        triplets in prop::collection::vec((0usize..4, 0usize..4, -2.0f64..2.0), 0..12),
        x in arb_matrix(4, 3),
    ) {
        let s = SparseMatrix::from_triplets(4, 4, triplets);
        let via_sparse = s.matmul_dense(&x);
        let via_dense = s.to_dense().matmul(&x);
        prop_assert!(via_sparse.sub(&via_dense).max_abs() < 1e-12);
        let yt = s.transpose_matmul_dense(&x);
        let yt_dense = s.to_dense().transpose().matmul(&x);
        prop_assert!(yt.sub(&yt_dense).max_abs() < 1e-12);
    }

    /// Normalized-Laplacian eigenvalues of a random undirected graph lie
    /// in [0, 2] and include 0.
    #[test]
    fn laplacian_spectrum_in_range(
        edges in prop::collection::vec((0usize..6, 0usize..6), 1..15),
    ) {
        let mut a = Matrix::zeros(6, 6);
        for (u, v) in edges {
            if u != v {
                a[(u, v)] = 1.0;
                a[(v, u)] = 1.0;
            }
        }
        let lap = normalized_laplacian(&a);
        let ev = symmetric_eigenvalues(&lap);
        prop_assert!(ev[0].abs() < 1e-8, "smallest eigenvalue is 0, got {}", ev[0]);
        for &e in &ev {
            prop_assert!((-1e-8..=2.0 + 1e-8).contains(&e));
        }
    }

    /// Jacobi preserves the trace.
    #[test]
    fn jacobi_preserves_trace(m in arb_matrix(5, 5)) {
        let sym = m.add(&m.transpose()).scale(0.5);
        let ev = symmetric_eigenvalues(&sym);
        let trace: f64 = (0..5).map(|i| sym[(i, i)]).sum();
        let sum: f64 = ev.iter().sum();
        prop_assert!((trace - sum).abs() < 1e-8);
    }
}
