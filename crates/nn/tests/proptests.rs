//! Property tests for the NN substrate: linear-algebra identities,
//! autograd linearity, and eigen-solver invariants.

use ancstr_nn::linalg::{normalized_laplacian, symmetric_eigenvalues};
use ancstr_nn::{cosine_similarity, Matrix, SparseMatrix, Tape};
use proptest::prelude::*;

fn arb_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-2.0f64..2.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

proptest! {
    /// (A·B)ᵀ = Bᵀ·Aᵀ.
    #[test]
    fn matmul_transpose_identity(a in arb_matrix(3, 4), b in arb_matrix(4, 2)) {
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        prop_assert!(left.sub(&right).max_abs() < 1e-12);
    }

    /// Matmul distributes over addition.
    #[test]
    fn matmul_distributes(a in arb_matrix(2, 3), b in arb_matrix(3, 2), c in arb_matrix(3, 2)) {
        let left = a.matmul(&b.add(&c));
        let right = a.matmul(&b).add(&a.matmul(&c));
        prop_assert!(left.sub(&right).max_abs() < 1e-12);
    }

    /// Cosine similarity is bounded and symmetric.
    #[test]
    fn cosine_bounded_symmetric(
        a in prop::collection::vec(-5.0f64..5.0, 1..10),
        b in prop::collection::vec(-5.0f64..5.0, 1..10),
    ) {
        let s1 = cosine_similarity(&a, &b);
        let s2 = cosine_similarity(&b, &a);
        prop_assert!((-1.0 - 1e-12..=1.0 + 1e-12).contains(&s1));
        prop_assert!((s1 - s2).abs() < 1e-12);
        // Self-similarity is 1 for nonzero vectors.
        if a.iter().any(|&x| x != 0.0) {
            prop_assert!((cosine_similarity(&a, &a) - 1.0).abs() < 1e-12);
        }
    }

    /// Autograd is linear: grad of (αf) equals α · grad of f.
    #[test]
    fn backward_is_linear(x in arb_matrix(2, 3), alpha in 0.1f64..3.0) {
        let run = |scale: f64| {
            let mut t = Tape::new();
            let xn = t.leaf(x.clone());
            let s = t.sigmoid(xn);
            let sq = t.mul_elem(s, s);
            let scaled = t.scale(sq, scale);
            let loss = t.sum(scaled);
            let grads = t.backward(loss);
            grads.grad(xn).expect("x influences loss").clone()
        };
        let g1 = run(1.0);
        let ga = run(alpha);
        prop_assert!(ga.sub(&g1.scale(alpha)).max_abs() < 1e-10);
    }

    /// Sparse products agree with their dense materialization.
    #[test]
    fn sparse_matches_dense(
        triplets in prop::collection::vec((0usize..4, 0usize..4, -2.0f64..2.0), 0..12),
        x in arb_matrix(4, 3),
    ) {
        let s = SparseMatrix::from_triplets(4, 4, triplets);
        let via_sparse = s.matmul_dense(&x);
        let via_dense = s.to_dense().matmul(&x);
        prop_assert!(via_sparse.sub(&via_dense).max_abs() < 1e-12);
        let yt = s.transpose_matmul_dense(&x);
        let yt_dense = s.to_dense().transpose().matmul(&x);
        prop_assert!(yt.sub(&yt_dense).max_abs() < 1e-12);
    }

    /// Normalized-Laplacian eigenvalues of a random undirected graph lie
    /// in [0, 2] and include 0.
    #[test]
    fn laplacian_spectrum_in_range(
        edges in prop::collection::vec((0usize..6, 0usize..6), 1..15),
    ) {
        let mut a = Matrix::zeros(6, 6);
        for (u, v) in edges {
            if u != v {
                a[(u, v)] = 1.0;
                a[(v, u)] = 1.0;
            }
        }
        let lap = normalized_laplacian(&a);
        let ev = symmetric_eigenvalues(&lap);
        prop_assert!(ev[0].abs() < 1e-8, "smallest eigenvalue is 0, got {}", ev[0]);
        for &e in &ev {
            prop_assert!((-1e-8..=2.0 + 1e-8).contains(&e));
        }
    }

    /// Jacobi preserves the trace.
    #[test]
    fn jacobi_preserves_trace(m in arb_matrix(5, 5)) {
        let sym = m.add(&m.transpose()).scale(0.5);
        let ev = symmetric_eigenvalues(&sym);
        let trace: f64 = (0..5).map(|i| sym[(i, i)]).sum();
        let sum: f64 = ev.iter().sum();
        prop_assert!((trace - sum).abs() < 1e-8);
    }
}

// Bit-exactness properties: the CSR-cached sparse products and the SIMD
// backend must reproduce their reference computations *bitwise*, not
// just within tolerance — they are the substrate of the repo-wide
// identity contract.
proptest! {
    /// `matmul_dense` (the cached-CSR walk) matches a plain
    /// storage-order triplet walk bit-for-bit: per output row, the CSR
    /// view visits that row's triplets in storage order, so every
    /// accumulation happens in the same sequence as the naive loop.
    #[test]
    fn csr_spmm_matches_triplet_reference_bitwise(
        raw in prop::collection::vec(
            (0usize..7, 0usize..5, -2.0f64..2.0, 0u8..4),
            0..40,
        ),
        dense in arb_matrix(5, 6),
    ) {
        // A quarter of the weights are exact zeros — the axpy walk and
        // the reference must agree on them too.
        let triplets: Vec<(usize, usize, f64)> = raw
            .into_iter()
            .map(|(r, c, w, z)| (r, c, if z == 0 { 0.0 } else { w }))
            .collect();
        let s = SparseMatrix::from_triplets(7, 5, triplets.clone());

        let mut reference = Matrix::zeros(7, 6);
        for &(r, c, w) in &triplets {
            for j in 0..6 {
                reference[(r, j)] += w * dense[(c, j)];
            }
        }
        // Twice: cold (builds the CSR cache) and warm (reuses it).
        for pass in 0..2 {
            let got = s.matmul_dense(&dense);
            for r in 0..7 {
                for j in 0..6 {
                    prop_assert_eq!(
                        got[(r, j)].to_bits(),
                        reference[(r, j)].to_bits(),
                        "spmm pass {} diverged at ({}, {})", pass, r, j
                    );
                }
            }
        }

        // Transpose product against its own triplet reference (operand
        // shaped rows×k, output cols×k); operand derived from `dense`'s
        // entries so the case stays fully driven by the strategy.
        let mut dense_t = Matrix::zeros(7, 4);
        for r in 0..7 {
            for j in 0..4 {
                dense_t[(r, j)] = dense[(r % 5, (r + j) % 6)] - 0.25;
            }
        }
        let mut reference_t = Matrix::zeros(5, 4);
        for &(r, c, w) in &triplets {
            for j in 0..4 {
                reference_t[(c, j)] += w * dense_t[(r, j)];
            }
        }
        for pass in 0..2 {
            let got = s.transpose_matmul_dense(&dense_t);
            for r in 0..5 {
                for j in 0..4 {
                    prop_assert_eq!(
                        got[(r, j)].to_bits(),
                        reference_t[(r, j)].to_bits(),
                        "spmmT pass {} diverged at ({}, {})", pass, r, j
                    );
                }
            }
        }
    }

    /// The SIMD backend's blocked matmul kernel is bit-identical to the
    /// scalar reference on random shapes and inputs, zeros included
    /// (the `a == 0.0` skip must agree between backends).
    #[test]
    fn simd_matmul_rows_matches_scalar_bitwise(
        m in 1usize..5,
        inner in 1usize..24,
        n in 1usize..24,
        seed in 0u64..u64::MAX,
        zero_every in 2usize..7,
    ) {
        use ancstr_nn::backend::BackendKind;

        // Seeded LCG fill with planted exact zeros.
        let mut state = seed;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64 * 4.0 - 2.0
        };
        let a: Vec<f64> = (0..m * inner)
            .map(|i| if i % zero_every == 0 { 0.0 } else { next() })
            .collect();
        let b: Vec<f64> = (0..inner * n).map(|_| next()).collect();

        let mut scalar = vec![0.0f64; m * n];
        let mut simd = vec![0.0f64; m * n];
        BackendKind::Scalar.backend().matmul_rows(&a, inner, 0..m, &b, n, &mut scalar);
        BackendKind::Simd.backend().matmul_rows(&a, inner, 0..m, &b, n, &mut simd);
        for (i, (s, v)) in scalar.iter().zip(&simd).enumerate() {
            prop_assert_eq!(s.to_bits(), v.to_bits(), "matmul diverged at flat index {}", i);
        }

        // The lane-grouped AXPY is bitwise too (independent elements,
        // but the grouping must not change the arithmetic).
        let alpha = next();
        let x: Vec<f64> = (0..m * n).map(|_| next()).collect();
        let mut ys = scalar.clone();
        let mut yv = simd.clone();
        BackendKind::Scalar.backend().axpy(&mut ys, alpha, &x);
        BackendKind::Simd.backend().axpy(&mut yv, alpha, &x);
        for (i, (s, v)) in ys.iter().zip(&yv).enumerate() {
            prop_assert_eq!(s.to_bits(), v.to_bits(), "axpy diverged at flat index {}", i);
        }
    }
}
