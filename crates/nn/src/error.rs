//! Typed errors for the numeric substrate.
//!
//! The hot-path kernels ([`Matrix::matmul`](crate::Matrix::matmul) and
//! friends) keep their `assert!` contracts — a shape mismatch deep in a
//! training step is a programming error, and branch-free inner loops
//! matter there. This module adds *checked entry points* for the places
//! where data crosses a trust boundary (deserialized weights, injected
//! test inputs, user-supplied buffers), so callers can turn malformed
//! numerics into recoverable [`NnError`]s instead of panics.

use std::fmt;

use crate::matrix::Matrix;

/// A recoverable numeric-substrate error.
#[derive(Debug, Clone, PartialEq)]
pub enum NnError {
    /// Two operands had incompatible shapes for the named operation.
    ShapeMismatch {
        /// The operation that was attempted (e.g. `matmul`).
        op: &'static str,
        /// Left-hand shape.
        lhs: (usize, usize),
        /// Right-hand shape.
        rhs: (usize, usize),
    },
    /// A buffer's length disagreed with the requested shape.
    BufferLength {
        /// Requested shape.
        shape: (usize, usize),
        /// Actual buffer length.
        len: usize,
    },
    /// A matrix that must be finite contained a NaN or infinity.
    NonFinite {
        /// What the matrix was (caller-supplied label, e.g. `gradient`).
        what: String,
        /// Row of the first offending element.
        row: usize,
        /// Column of the first offending element.
        col: usize,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::ShapeMismatch { op, lhs, rhs } => {
                write!(f, "{op}: incompatible shapes {lhs:?} and {rhs:?}")
            }
            NnError::BufferLength { shape, len } => {
                write!(f, "buffer of length {len} cannot fill a {shape:?} matrix")
            }
            NnError::NonFinite { what, row, col, value } => {
                write!(f, "{what} has non-finite value {value} at ({row}, {col})")
            }
        }
    }
}

impl std::error::Error for NnError {}

impl Matrix {
    /// Checked [`Matrix::from_vec`]: wrap a buffer, or report the length
    /// mismatch instead of panicking.
    ///
    /// # Errors
    ///
    /// [`NnError::BufferLength`] when `data.len() != rows * cols`.
    pub fn try_from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Matrix, NnError> {
        if data.len() != rows * cols {
            return Err(NnError::BufferLength { shape: (rows, cols), len: data.len() });
        }
        Ok(Matrix::from_vec(rows, cols, data))
    }

    /// Checked [`Matrix::matmul`]: report inner-dimension mismatches
    /// instead of panicking.
    ///
    /// # Errors
    ///
    /// [`NnError::ShapeMismatch`] when `self.cols() != other.rows()`.
    pub fn try_matmul(&self, other: &Matrix) -> Result<Matrix, NnError> {
        if self.cols() != other.rows() {
            return Err(NnError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        Ok(self.matmul(other))
    }

    /// Verify every element is finite, reporting the first offender with
    /// its position (a structured alternative to
    /// [`Matrix::is_finite`](Matrix::is_finite) for error paths).
    ///
    /// # Errors
    ///
    /// [`NnError::NonFinite`] naming `what` and the first bad element.
    pub fn ensure_finite(&self, what: &str) -> Result<(), NnError> {
        for r in 0..self.rows() {
            for (c, &value) in self.row(r).iter().enumerate() {
                if !value.is_finite() {
                    return Err(NnError::NonFinite {
                        what: what.to_owned(),
                        row: r,
                        col: c,
                        value,
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn try_from_vec_checks_length() {
        assert!(Matrix::try_from_vec(2, 2, vec![0.0; 4]).is_ok());
        let err = Matrix::try_from_vec(2, 2, vec![0.0; 3]).unwrap_err();
        assert_eq!(err, NnError::BufferLength { shape: (2, 2), len: 3 });
        assert!(err.to_string().contains("length 3"));
    }

    #[test]
    fn try_matmul_checks_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let err = a.try_matmul(&b).unwrap_err();
        assert!(matches!(err, NnError::ShapeMismatch { op: "matmul", .. }));
        let c = Matrix::zeros(3, 4);
        assert_eq!(a.try_matmul(&c).unwrap().shape(), (2, 4));
    }

    #[test]
    fn ensure_finite_locates_first_offender() {
        let mut m = Matrix::zeros(3, 2);
        assert!(m.ensure_finite("weights").is_ok());
        m[(1, 1)] = f64::NAN;
        m[(2, 0)] = f64::INFINITY;
        let err = m.ensure_finite("weights").unwrap_err();
        match err {
            NnError::NonFinite { ref what, row, col, value } => {
                assert_eq!(what, "weights");
                assert_eq!((row, col), (1, 1));
                assert!(value.is_nan());
            }
            other => panic!("unexpected error {other:?}"),
        }
        assert!(err.to_string().contains("weights"));
    }
}
