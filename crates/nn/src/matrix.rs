//! Dense row-major `f64` matrices — the numeric workhorse of the
//! substrate.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major matrix of `f64`.
///
/// # Example
///
/// ```
/// use ancstr_nn::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::identity(2);
/// assert_eq!(a.matmul(&b), a);
/// assert_eq!(a[(1, 0)], 3.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// A `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// A matrix filled with one value.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Matrix {
        Matrix { rows, cols, data: vec![value; rows * cols] }
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Matrix {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a generator `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Matrix {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Build from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have differing lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Matrix {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "all rows must have the same length");
            data.extend_from_slice(row);
        }
        Matrix { rows: r, cols: c, data }
    }

    /// Wrap an existing buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Matrix {
        assert_eq!(data.len(), rows * cols, "buffer length must match shape");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// The underlying row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the underlying buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// A row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row {r} out of range");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// A row as a mutable slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row {r} out of range");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self · other`.
    ///
    /// # Panics
    ///
    /// Panics on an inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {:?} · {:?}",
            self.shape(),
            other.shape()
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let brow = &other.data[k * other.cols..(k + 1) * other.cols];
                let orow = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }

    /// Element-wise sum `self + other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a + b)
    }

    /// Element-wise difference `self − other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn mul_elem(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a * b)
    }

    /// Scalar multiple.
    pub fn scale(&self, k: f64) -> Matrix {
        self.map(|x| x * k)
    }

    /// Apply `f` element-wise.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// `+=` in place.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Column sums as a `1 × cols` matrix.
    pub fn column_sums(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c] += self[(r, c)];
            }
        }
        out
    }

    /// Maximum absolute element (0 for an empty matrix).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, &x| m.max(x.abs()))
    }

    /// Whether every element is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    fn zip_with(&self, other: &Matrix, f: impl Fn(f64, f64) -> f64) -> Matrix {
        assert_eq!(
            self.shape(),
            other.shape(),
            "element-wise op shape mismatch"
        );
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of range");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of range");
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:>10.4} ", self[(r, c)])?;
            }
            writeln!(f, "{}", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

/// Cosine similarity between two equal-or-different-length vectors; the
/// shorter is zero-padded (used by the variable-length circuit
/// embeddings of Algorithm 2). Returns 0 when either vector is all-zero.
///
/// # Example
///
/// ```
/// use ancstr_nn::matrix::cosine_similarity;
///
/// assert!((cosine_similarity(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-12);
/// assert!(cosine_similarity(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-12);
/// // zero-padding: [1,1] vs [1,1,0]
/// assert!((cosine_similarity(&[1.0, 1.0], &[1.0, 1.0, 0.0]) - 1.0).abs() < 1e-12);
/// ```
pub fn cosine_similarity(a: &[f64], b: &[f64]) -> f64 {
    let dot: f64 = a.iter().zip(b.iter()).map(|(x, y)| x * y).sum();
    let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
    let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    dot / (na * nb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m[(0, 2)], 3.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        let id = Matrix::identity(3);
        assert_eq!(id[(1, 1)], 1.0);
        assert_eq!(id[(0, 1)], 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn index_out_of_range_panics() {
        let m = Matrix::zeros(2, 2);
        let _ = m[(2, 0)];
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_checks_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_is_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().shape(), (3, 2));
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(a.add(&b), Matrix::from_rows(&[&[4.0, 6.0]]));
        assert_eq!(b.sub(&a), Matrix::from_rows(&[&[2.0, 2.0]]));
        assert_eq!(a.mul_elem(&b), Matrix::from_rows(&[&[3.0, 8.0]]));
        assert_eq!(a.scale(2.0), Matrix::from_rows(&[&[2.0, 4.0]]));
        assert_eq!(a.sum(), 3.0);
        assert!((a.frobenius_norm() - 5f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn column_sums_and_max_abs() {
        let a = Matrix::from_rows(&[&[1.0, -2.0], &[3.0, 4.0]]);
        assert_eq!(a.column_sums(), Matrix::from_rows(&[&[4.0, 2.0]]));
        assert_eq!(a.max_abs(), 4.0);
        assert!(a.is_finite());
        let bad = Matrix::from_rows(&[&[f64::NAN]]);
        assert!(!bad.is_finite());
    }

    #[test]
    fn cosine_basics() {
        assert!((cosine_similarity(&[3.0, 4.0], &[3.0, 4.0]) - 1.0).abs() < 1e-12);
        assert!((cosine_similarity(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-12);
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
        assert_eq!(cosine_similarity(&[], &[]), 0.0);
    }

    #[test]
    fn display_is_nonempty() {
        let a = Matrix::zeros(2, 2);
        assert!(!format!("{a}").is_empty());
    }
}
