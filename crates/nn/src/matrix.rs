//! Dense row-major `f64` matrices — the numeric workhorse of the
//! substrate.
//!
//! # Kernel design
//!
//! The hot kernels ([`Matrix::matmul`], [`Matrix::matmul_transposed`],
//! [`Matrix::map_par`]) are written so that the parallel path is
//! **bit-identical** to the sequential one at any thread count:
//!
//! * work is split across *output rows*, so every output element is
//!   written by exactly one thread;
//! * the per-element accumulation order (ascending `k`) is the same in
//!   the scalar, cache-blocked, and parallel variants — tiles advance
//!   in ascending `k`, and column-blocking only regroups independent
//!   output elements;
//! * the `a == 0.0` multiplicand skip is applied identically
//!   everywhere (skipping is *not* the same as multiplying when the
//!   other operand holds an `inf`/`NaN`, so every variant must agree).
//!
//! The kernel arithmetic itself lives behind the [`crate::backend`]
//! dispatch point (scalar reference vs. SIMD lanes, byte-identical by
//! contract); this module owns shapes, profiling, and the parallel
//! row-chunk scheduling.

use std::fmt;
use std::ops::{Index, IndexMut, Range};

use crate::backend;

/// A dense row-major matrix of `f64`.
///
/// # Example
///
/// ```
/// use ancstr_nn::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::identity(2);
/// assert_eq!(a.matmul(&b), a);
/// assert_eq!(a[(1, 0)], 3.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// A `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// A matrix filled with one value.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Matrix {
        Matrix { rows, cols, data: vec![value; rows * cols] }
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Matrix {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a generator `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Matrix {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Build from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have differing lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Matrix {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "all rows must have the same length");
            data.extend_from_slice(row);
        }
        Matrix { rows: r, cols: c, data }
    }

    /// Wrap an existing buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Matrix {
        assert_eq!(data.len(), rows * cols, "buffer length must match shape");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// The underlying row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the underlying buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// A row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row {r} out of range");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// A row as a mutable slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row {r} out of range");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self · other`.
    ///
    /// Cache-blocked ikj kernel, row-parallel for large products; the
    /// result is bit-identical at every thread count (see the module
    /// docs).
    ///
    /// # Panics
    ///
    /// Panics on an inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {:?} · {:?}",
            self.shape(),
            other.shape()
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        let inner = self.cols;
        let n = other.cols;
        let _prof = ancstr_par::profile::time(
            ancstr_par::profile::Kernel::Matmul,
            (self.rows * inner * n) as u64,
        );
        let be = backend::active();
        par_row_chunks(
            self.rows,
            n,
            &mut out.data,
            min_rows_for(inner * n),
            |rows, chunk| be.matmul_rows(&self.data, inner, rows, &other.data, n, chunk),
        );
        out
    }

    /// Transposed-RHS matrix product `self · otherᵀ` — the backward
    /// pass's `dC · Bᵀ` without asking every caller to transpose.
    ///
    /// Bit-identical to `self.matmul(&other.transpose())` by
    /// construction: one transposed copy of `other` feeds the blocked
    /// kernel. The copy costs `O(k·n)` but keeps the inner loop in the
    /// ikj orientation, whose independent per-`j` accumulators
    /// vectorize; a copy-free row-dot formulation pays a loop-carried
    /// dependence on the accumulator (reassociating it would change the
    /// bits) and measured slower than transpose-then-multiply.
    ///
    /// # Panics
    ///
    /// Panics unless `self.cols() == other.cols()`.
    pub fn matmul_transposed(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols,
            other.cols,
            "matmul_transposed shape mismatch: {:?} · {:?}ᵀ",
            self.shape(),
            other.shape()
        );
        self.matmul(&other.transpose())
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }

    /// Stack matrices vertically (row-wise concatenation).
    ///
    /// The building block of batched execution: because every row-major
    /// kernel in this crate computes each output row independently,
    /// stacking `k` left-hand sides, running one kernel call, and
    /// [`Matrix::split_rows`]-ing the result is bit-identical to `k`
    /// separate calls.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or the column counts disagree.
    pub fn vstack(parts: &[&Matrix]) -> Matrix {
        let cols = parts.first().expect("vstack needs at least one part").cols;
        let rows = parts.iter().map(|p| p.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for p in parts {
            assert_eq!(p.cols, cols, "vstack column mismatch");
            data.extend_from_slice(&p.data);
        }
        Matrix { rows, cols, data }
    }

    /// Split into row blocks of the given sizes — the inverse of
    /// [`Matrix::vstack`].
    ///
    /// # Panics
    ///
    /// Panics unless `sizes` sums to exactly `self.rows()`.
    pub fn split_rows(&self, sizes: &[usize]) -> Vec<Matrix> {
        assert_eq!(
            sizes.iter().sum::<usize>(),
            self.rows,
            "split_rows sizes must cover every row"
        );
        let mut out = Vec::with_capacity(sizes.len());
        let mut start = 0;
        for &n in sizes {
            out.push(Matrix {
                rows: n,
                cols: self.cols,
                data: self.data[start * self.cols..(start + n) * self.cols].to_vec(),
            });
            start += n;
        }
        out
    }

    /// Batched matrix product: each left-hand block times one shared
    /// right-hand side, executed as a single stacked [`Matrix::matmul`]
    /// call.
    ///
    /// Bit-identical to `blocks.iter().map(|a| a.matmul(rhs))` because
    /// the blocked ikj kernel computes every output row from exactly one
    /// LHS row (accumulating over `k` in ascending order, with the
    /// `a == 0.0` skip applied per LHS element) — stacking only changes
    /// how rows are grouped for dispatch, never what any single row
    /// computes. A NaN/Inf in one block therefore cannot leak into
    /// another block's rows. This is the serving layer's batched-forward
    /// entry point.
    ///
    /// # Panics
    ///
    /// Panics if `blocks` is empty or any inner dimension mismatches.
    pub fn matmul_batched(blocks: &[&Matrix], rhs: &Matrix) -> Vec<Matrix> {
        let stacked = Matrix::vstack(blocks);
        let product = stacked.matmul(rhs);
        let sizes: Vec<usize> = blocks.iter().map(|b| b.rows).collect();
        product.split_rows(&sizes)
    }

    /// Element-wise sum `self + other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a + b)
    }

    /// Element-wise difference `self − other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn mul_elem(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a * b)
    }

    /// Scalar multiple.
    pub fn scale(&self, k: f64) -> Matrix {
        self.map(|x| x * k)
    }

    /// Apply `f` element-wise.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Apply `f` element-wise, in parallel for large matrices.
    ///
    /// Bit-identical to [`Matrix::map`] at any thread count (each
    /// element is independent). Worth it only when `f` is expensive —
    /// the activation transcendentals (`tanh`, `exp`) qualify; `x * k`
    /// does not.
    pub fn map_par(&self, f: impl Fn(f64) -> f64 + Sync) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        let base = ancstr_par::SendPtr::new(out.data.as_mut_ptr());
        ancstr_par::for_each_chunk(self.data.len(), MAP_PAR_MIN_CHUNK, |range| {
            // Sound: chunk ranges are disjoint, so each element is
            // written by exactly one thread.
            let dst = unsafe {
                std::slice::from_raw_parts_mut(base.get().add(range.start), range.len())
            };
            for (o, &x) in dst.iter_mut().zip(&self.data[range]) {
                *o = f(x);
            }
        });
        out
    }

    /// The L2 norm of every row, computed exactly as
    /// [`cosine_similarity`] computes its per-vector norms (sum of
    /// squares in index order, then square root).
    pub fn row_norms(&self) -> Vec<f64> {
        let _prof = ancstr_par::profile::time(
            ancstr_par::profile::Kernel::RowNorms,
            (self.rows * self.cols) as u64,
        );
        let be = backend::active();
        ancstr_par::map_chunks(self.rows, min_rows_for(self.cols), |rows| {
            rows.map(|r| be.row_norm(self.row(r))).collect::<Vec<f64>>()
        })
        .into_iter()
        .flatten()
        .collect()
    }

    /// `+=` in place.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Column sums as a `1 × cols` matrix.
    pub fn column_sums(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c] += self[(r, c)];
            }
        }
        out
    }

    /// Maximum absolute element (0 for an empty matrix).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, &x| m.max(x.abs()))
    }

    /// Whether every element is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    fn zip_with(&self, other: &Matrix, f: impl Fn(f64, f64) -> f64) -> Matrix {
        assert_eq!(
            self.shape(),
            other.shape(),
            "element-wise op shape mismatch"
        );
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of range");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of range");
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:>10.4} ", self[(r, c)])?;
            }
            writeln!(f, "{}", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

/// Minimum elements per chunk for parallel element-wise maps; sized so
/// a chunk of transcendentals clearly outweighs pool dispatch.
const MAP_PAR_MIN_CHUNK: usize = 2048;

/// Per-chunk floor of ~32k mul-adds keeps pool dispatch overhead under
/// a few percent of chunk compute.
const PAR_MIN_CHUNK_WORK: usize = 32_768;

/// Minimum rows per parallel chunk for a kernel doing `work_per_row`
/// mul-adds per row.
pub(crate) fn min_rows_for(work_per_row: usize) -> usize {
    (PAR_MIN_CHUNK_WORK / work_per_row.max(1)).max(1)
}

/// Run `f` over chunks of rows, handing each invocation the mutable
/// sub-slice of `data` covering exactly its rows. Chunks are disjoint,
/// so the parallel writes are race-free.
pub(crate) fn par_row_chunks(
    rows: usize,
    cols: usize,
    data: &mut [f64],
    min_rows: usize,
    f: impl Fn(Range<usize>, &mut [f64]) + Sync,
) {
    assert_eq!(data.len(), rows * cols, "row-chunk buffer shape mismatch");
    let base = ancstr_par::SendPtr::new(data.as_mut_ptr());
    ancstr_par::for_each_chunk(rows, min_rows, |range| {
        // Sound: row ranges are disjoint and each slice covers only
        // this chunk's rows.
        let chunk = unsafe {
            std::slice::from_raw_parts_mut(base.get().add(range.start * cols), range.len() * cols)
        };
        f(range, chunk);
    });
}

/// Fused AXPY: `y += a · x`, the accumulation primitive the sparse
/// kernels share. Dispatches to the active [`crate::backend`].
///
/// # Panics
///
/// Panics on a length mismatch.
pub fn axpy(y: &mut [f64], a: f64, x: &[f64]) {
    let _prof = ancstr_par::profile::time(
        ancstr_par::profile::Kernel::Axpy,
        y.len() as u64,
    );
    backend::active().axpy(y, a, x);
}

/// Dot product in ascending index order — the exact accumulation
/// [`cosine_similarity`] uses for its numerator, so callers that cache
/// [`Matrix::row_norms`] can reproduce its quotient bit-for-bit.
///
/// Sequential on every backend: lane-splitting a loop-carried sum
/// would reassociate it (see the [`crate::backend`] docs).
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    backend::active().dot(a, b)
}

/// L2 norm of one vector, computed exactly as [`cosine_similarity`]
/// computes its per-vector denominators (and as [`Matrix::row_norms`]
/// computes each row's norm). The single source of truth for norm
/// arithmetic: callers that hoist norms out of pair loops — constraint
/// detection scores O(n²) pairs over n vectors — get quotients
/// bit-identical to calling [`cosine_similarity`] per pair.
pub fn row_norm(x: &[f64]) -> f64 {
    backend::active().row_norm(x)
}

/// Cosine similarity between two equal-or-different-length vectors; the
/// shorter is zero-padded (used by the variable-length circuit
/// embeddings of Algorithm 2). Returns 0 when either vector is all-zero.
///
/// # Example
///
/// ```
/// use ancstr_nn::matrix::cosine_similarity;
///
/// assert!((cosine_similarity(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-12);
/// assert!(cosine_similarity(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-12);
/// // zero-padding: [1,1] vs [1,1,0]
/// assert!((cosine_similarity(&[1.0, 1.0], &[1.0, 1.0, 0.0]) - 1.0).abs() < 1e-12);
/// ```
pub fn cosine_similarity(a: &[f64], b: &[f64]) -> f64 {
    let be = backend::active();
    let (na, nb) = (be.row_norm(a), be.row_norm(b));
    be.cosine_with_norms(a, b, na, nb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m[(0, 2)], 3.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        let id = Matrix::identity(3);
        assert_eq!(id[(1, 1)], 1.0);
        assert_eq!(id[(0, 1)], 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn index_out_of_range_panics() {
        let m = Matrix::zeros(2, 2);
        let _ = m[(2, 0)];
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_checks_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_is_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().shape(), (3, 2));
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(a.add(&b), Matrix::from_rows(&[&[4.0, 6.0]]));
        assert_eq!(b.sub(&a), Matrix::from_rows(&[&[2.0, 2.0]]));
        assert_eq!(a.mul_elem(&b), Matrix::from_rows(&[&[3.0, 8.0]]));
        assert_eq!(a.scale(2.0), Matrix::from_rows(&[&[2.0, 4.0]]));
        assert_eq!(a.sum(), 3.0);
        assert!((a.frobenius_norm() - 5f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn column_sums_and_max_abs() {
        let a = Matrix::from_rows(&[&[1.0, -2.0], &[3.0, 4.0]]);
        assert_eq!(a.column_sums(), Matrix::from_rows(&[&[4.0, 2.0]]));
        assert_eq!(a.max_abs(), 4.0);
        assert!(a.is_finite());
        let bad = Matrix::from_rows(&[&[f64::NAN]]);
        assert!(!bad.is_finite());
    }

    #[test]
    fn cosine_basics() {
        assert!((cosine_similarity(&[3.0, 4.0], &[3.0, 4.0]) - 1.0).abs() < 1e-12);
        assert!((cosine_similarity(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-12);
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
        assert_eq!(cosine_similarity(&[], &[]), 0.0);
    }

    #[test]
    fn display_is_nonempty() {
        let a = Matrix::zeros(2, 2);
        assert!(!format!("{a}").is_empty());
    }

    /// Deterministic pseudo-random matrix (no RNG dep in this crate).
    fn lcg_matrix(rows: usize, cols: usize, seed: &mut u64) -> Matrix {
        Matrix::from_fn(rows, cols, |_, _| {
            *seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((*seed >> 11) as f64 / (1u64 << 53) as f64) * 4.0 - 2.0
        })
    }

    /// The historical reference: naive ijk with the `a == 0.0` skip.
    fn matmul_naive(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                for k in 0..a.cols() {
                    let av = a[(i, k)];
                    if av == 0.0 {
                        continue;
                    }
                    out[(i, j)] += av * b[(k, j)];
                }
            }
        }
        out
    }

    fn assert_same_bits(a: &Matrix, b: &Matrix) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits(), "bit divergence: {x} vs {y}");
        }
    }

    #[test]
    fn blocked_matmul_is_bit_identical_to_naive_across_block_boundaries() {
        let mut seed = 7;
        // Shapes straddling J_BLOCK/K_BLOCK boundaries and the
        // parallel-dispatch threshold.
        for (m, k, n) in [(3, 5, 4), (17, 300, 9), (5, 260, 270), (600, 18, 18), (64, 257, 31)] {
            let mut a = lcg_matrix(m, k, &mut seed);
            // Exercise the zero-skip path too.
            if m > 1 && k > 2 {
                a[(1, 2)] = 0.0;
            }
            let b = lcg_matrix(k, n, &mut seed);
            assert_same_bits(&a.matmul(&b), &matmul_naive(&a, &b));
        }
    }

    #[test]
    fn matmul_is_bit_identical_at_every_thread_count() {
        let before = ancstr_par::threads();
        let mut seed = 99;
        let a = lcg_matrix(700, 19, &mut seed);
        let b = lcg_matrix(19, 23, &mut seed);
        ancstr_par::set_threads(1);
        let reference = a.matmul(&b);
        for t in [2usize, 4, 8] {
            ancstr_par::set_threads(t);
            assert_same_bits(&a.matmul(&b), &reference);
        }
        ancstr_par::set_threads(before);
    }

    #[test]
    fn matmul_transposed_matches_explicit_transpose_bitwise() {
        let mut seed = 13;
        for (m, k, n) in [(4, 6, 3), (320, 18, 18), (9, 270, 12)] {
            let mut a = lcg_matrix(m, k, &mut seed);
            a[(0, 0)] = 0.0;
            let bt = lcg_matrix(n, k, &mut seed);
            assert_same_bits(&a.matmul_transposed(&bt), &a.matmul(&bt.transpose()));
        }
    }

    #[test]
    fn matmul_zero_skip_semantics_preserved() {
        // Skipping a == 0.0 must keep ignoring inf/NaN in the other
        // operand, exactly like the historical kernel.
        let a = Matrix::from_rows(&[&[0.0, 1.0]]);
        let b = Matrix::from_rows(&[&[f64::INFINITY], &[2.0]]);
        assert_eq!(a.matmul(&b)[(0, 0)], 2.0);
        assert_eq!(a.matmul_transposed(&b.transpose())[(0, 0)], 2.0);
    }

    #[test]
    #[should_panic(expected = "matmul_transposed shape mismatch")]
    fn matmul_transposed_checks_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(5, 4);
        let _ = a.matmul_transposed(&b);
    }

    #[test]
    fn map_par_matches_map_bitwise() {
        let mut seed = 3;
        let m = lcg_matrix(123, 45, &mut seed);
        let before = ancstr_par::threads();
        for t in [1usize, 4] {
            ancstr_par::set_threads(t);
            assert_same_bits(&m.map_par(|x| x.tanh()), &m.map(|x| x.tanh()));
        }
        ancstr_par::set_threads(before);
    }

    #[test]
    fn row_norms_match_cosine_denominators() {
        let mut seed = 21;
        let m = lcg_matrix(40, 7, &mut seed);
        let norms = m.row_norms();
        assert_eq!(norms.len(), m.rows());
        for (r, norm) in norms.iter().enumerate() {
            let expect = m.row(r).iter().map(|x| x * x).sum::<f64>().sqrt();
            assert_eq!(norm.to_bits(), expect.to_bits());
        }
    }

    #[test]
    fn vstack_and_split_rows_round_trip() {
        let mut seed = 31;
        let a = lcg_matrix(3, 5, &mut seed);
        let b = lcg_matrix(1, 5, &mut seed);
        let c = lcg_matrix(4, 5, &mut seed);
        let stacked = Matrix::vstack(&[&a, &b, &c]);
        assert_eq!(stacked.shape(), (8, 5));
        let parts = stacked.split_rows(&[3, 1, 4]);
        assert_same_bits(&parts[0], &a);
        assert_same_bits(&parts[1], &b);
        assert_same_bits(&parts[2], &c);
    }

    #[test]
    #[should_panic(expected = "vstack column mismatch")]
    fn vstack_checks_columns() {
        let _ = Matrix::vstack(&[&Matrix::zeros(1, 2), &Matrix::zeros(1, 3)]);
    }

    #[test]
    #[should_panic(expected = "cover every row")]
    fn split_rows_checks_sizes() {
        let _ = Matrix::zeros(4, 2).split_rows(&[1, 2]);
    }

    #[test]
    fn batched_matmul_is_bit_identical_to_per_block_calls() {
        let mut seed = 17;
        // Block heights straddle the parallel-dispatch threshold so the
        // stacked run parallelizes even when solo runs would not.
        let before = ancstr_par::threads();
        for t in [1usize, 4] {
            ancstr_par::set_threads(t);
            let blocks: Vec<Matrix> = [3usize, 700, 1, 64]
                .iter()
                .map(|&r| lcg_matrix(r, 19, &mut seed))
                .collect();
            let rhs = lcg_matrix(19, 23, &mut seed);
            let refs: Vec<&Matrix> = blocks.iter().collect();
            let batched = Matrix::matmul_batched(&refs, &rhs);
            assert_eq!(batched.len(), blocks.len());
            for (got, solo) in batched.iter().zip(&blocks) {
                assert_same_bits(got, &solo.matmul(&rhs));
            }
        }
        ancstr_par::set_threads(before);
    }

    #[test]
    fn batched_matmul_contains_nan_to_its_own_block() {
        let mut seed = 41;
        let mut poisoned = lcg_matrix(4, 6, &mut seed);
        poisoned[(2, 3)] = f64::NAN;
        let clean = lcg_matrix(5, 6, &mut seed);
        let rhs = lcg_matrix(6, 7, &mut seed);
        let out = Matrix::matmul_batched(&[&poisoned, &clean], &rhs);
        assert!(!out[0].is_finite(), "the poisoned block carries its NaN");
        assert_same_bits(&out[1], &clean.matmul(&rhs));
    }

    #[test]
    fn axpy_and_dot_basics() {
        let mut y = vec![1.0, 2.0];
        axpy(&mut y, 2.0, &[10.0, 20.0]);
        assert_eq!(y, vec![21.0, 42.0]);
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }
}
