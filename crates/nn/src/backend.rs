//! Runtime-dispatched compute backends for the hot kernels.
//!
//! Every dense/sparse product in this crate bottoms out in four
//! primitives — a blocked matmul row kernel, fused AXPY, dot, and
//! sum-of-squares. [`Backend`] abstracts those primitives so the same
//! call sites can run the cache-blocked scalar reference
//! ([`ScalarBackend`]) or the register-tiled SIMD-friendly variant
//! ([`crate::simd::SimdBackend`]), selected once per process.
//!
//! # Bit-identity contract
//!
//! Backends must be **byte-identical**: for every primitive, each
//! output element is produced by the same sequence of IEEE-754
//! operations in the same order as the scalar reference. The SIMD
//! backend therefore wins by *register tiling* (fewer memory round
//! trips, independent per-lane accumulators the compiler can
//! vectorize), never by reassociating a reduction:
//!
//! * `matmul_rows` may group `k` steps, but each output element still
//!   receives its `a[k]·b[k][j]` contributions as separate adds in
//!   ascending `k` order — fusing them (`a0*b0 + a1*b1` in one
//!   expression tree) would change rounding and is forbidden;
//! * `dot` and `sum_squares` are loop-carried sequential reductions:
//!   splitting them across lanes reassociates the sum and changes bits,
//!   so **both backends share the sequential implementation** (the
//!   provided trait methods). This is a deliberate design decision, not
//!   an omission — the pairwise-cosine and `row_norms` kernels instead
//!   win by hoisting (compute each norm once, not once per pair).
//!
//! The contract is pinned by `tests/` in this crate and by the
//! cross-backend identity suite in `crates/bench/tests/`.
//!
//! # Selection
//!
//! The active backend is process-wide: [`set_backend`] (the CLI
//! `--backend` flag lands here) or the `ANCSTR_BACKEND` environment
//! variable (`scalar` | `simd`), read lazily on first kernel use.
//! Unset means [`BackendKind::Simd`] — the fast path is the default
//! because it is bit-identical. Unlike a `OnceLock`, the selection is
//! re-settable: `ancstr bench` runs both backends in one process to
//! compare them.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Column-block width for the blocked matmul tiles: sized so one
/// output-row block plus one RHS-row block stay L1-resident.
pub(crate) const J_BLOCK: usize = 256;

/// Inner-dimension block depth: bounds the RHS tile (`K_BLOCK ×
/// J_BLOCK` doubles ≈ 512 KiB) touched per output-row block.
pub(crate) const K_BLOCK: usize = 256;

/// A compute backend over the hot kernel primitives.
///
/// Required methods are the primitives that differ between backends;
/// provided methods are the loop-carried reductions every backend must
/// share (see the module docs) plus the composites built on them.
pub trait Backend: Sync {
    /// The backend's stable name (`"scalar"` / `"simd"`), reported in
    /// bench attribution.
    fn name(&self) -> &'static str;

    /// The ikj matmul kernel for one block of output rows,
    /// cache-blocked over the inner dimension and the output columns.
    ///
    /// `out` must be zeroed and cover exactly `rows`. Per output
    /// element the accumulation must visit `k` in globally ascending
    /// order with the `a == 0.0` skip applied per LHS element —
    /// skipping is *not* the same as multiplying when the other operand
    /// holds an `inf`/`NaN`, so every backend must agree.
    fn matmul_rows(
        &self,
        a: &[f64],
        inner: usize,
        rows: Range<usize>,
        b: &[f64],
        n: usize,
        out: &mut [f64],
    );

    /// Fused AXPY: `y += a · x`, the accumulation primitive the sparse
    /// kernels share. Elements are independent, so backends may process
    /// them in any grouping.
    ///
    /// # Panics
    ///
    /// Panics on a length mismatch.
    fn axpy(&self, y: &mut [f64], a: f64, x: &[f64]);

    /// Dot product in ascending index order, zipped to the shorter
    /// operand — the exact accumulation [`crate::cosine_similarity`]
    /// uses for its numerator.
    ///
    /// Loop-carried reduction: shared by every backend (see module
    /// docs), so it is a provided method and must not be overridden
    /// with a lane-split variant.
    fn dot(&self, a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
    }

    /// Sum of squares in ascending index order — the radicand of
    /// [`Backend::row_norm`] and of the cosine denominators. Shared by
    /// every backend for the same reason as [`Backend::dot`].
    fn sum_squares(&self, v: &[f64]) -> f64 {
        v.iter().map(|x| x * x).sum()
    }

    /// The L2 norm of one row, computed exactly as
    /// [`crate::cosine_similarity`] computes its per-vector norms.
    fn row_norm(&self, row: &[f64]) -> f64 {
        self.sum_squares(row).sqrt()
    }

    /// Cosine similarity with hoisted norms: `dot / (na · nb)`, or 0
    /// when either norm is 0. Bit-identical to
    /// [`crate::cosine_similarity`] when `na`/`nb` come from
    /// [`Backend::row_norm`] over the full vectors.
    fn cosine_with_norms(&self, a: &[f64], b: &[f64], na: f64, nb: f64) -> f64 {
        if na == 0.0 || nb == 0.0 {
            return 0.0;
        }
        self.dot(a, b) / (na * nb)
    }
}

/// The cache-blocked scalar reference backend — the historical kernels,
/// verbatim. Every other backend is pinned bit-for-bit against this
/// one.
pub struct ScalarBackend;

impl Backend for ScalarBackend {
    fn name(&self) -> &'static str {
        "scalar"
    }

    fn matmul_rows(
        &self,
        a: &[f64],
        inner: usize,
        rows: Range<usize>,
        b: &[f64],
        n: usize,
        out: &mut [f64],
    ) {
        for (li, i) in rows.enumerate() {
            let arow = &a[i * inner..(i + 1) * inner];
            let orow = &mut out[li * n..(li + 1) * n];
            for k0 in (0..inner).step_by(K_BLOCK) {
                let k1 = (k0 + K_BLOCK).min(inner);
                for j0 in (0..n).step_by(J_BLOCK) {
                    let j1 = (j0 + J_BLOCK).min(n);
                    for (k, &av) in (k0..k1).zip(&arow[k0..k1]) {
                        if av == 0.0 {
                            continue;
                        }
                        let brow = &b[k * n + j0..k * n + j1];
                        for (o, &bv) in orow[j0..j1].iter_mut().zip(brow) {
                            *o += av * bv;
                        }
                    }
                }
            }
        }
    }

    fn axpy(&self, y: &mut [f64], a: f64, x: &[f64]) {
        assert_eq!(y.len(), x.len(), "axpy length mismatch");
        for (yv, &xv) in y.iter_mut().zip(x) {
            *yv += a * xv;
        }
    }
}

/// Which backend implementation to dispatch to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// The cache-blocked scalar reference.
    Scalar,
    /// Register-tiled fixed-width-lane kernels ([`crate::simd`]).
    Simd,
}

impl BackendKind {
    /// Every selectable backend, in reference-first order.
    pub const ALL: [BackendKind; 2] = [BackendKind::Scalar, BackendKind::Simd];

    /// The stable name (`"scalar"` / `"simd"`).
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Scalar => "scalar",
            BackendKind::Simd => "simd",
        }
    }

    /// Parse a backend name as accepted by `--backend` and
    /// `ANCSTR_BACKEND`.
    pub fn parse(s: &str) -> Option<BackendKind> {
        match s.trim().to_ascii_lowercase().as_str() {
            "scalar" => Some(BackendKind::Scalar),
            "simd" => Some(BackendKind::Simd),
            _ => None,
        }
    }

    /// The backend implementation.
    pub fn backend(self) -> &'static dyn Backend {
        match self {
            BackendKind::Scalar => &ScalarBackend,
            BackendKind::Simd => &crate::simd::SimdBackend,
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// 0 = unresolved (consult `ANCSTR_BACKEND` on first use), 1 = scalar,
/// 2 = simd. Re-settable, unlike a `OnceLock`: the bench harness flips
/// backends mid-process to compare them.
static ACTIVE: AtomicUsize = AtomicUsize::new(0);

fn encode(kind: BackendKind) -> usize {
    match kind {
        BackendKind::Scalar => 1,
        BackendKind::Simd => 2,
    }
}

/// Select the process-wide backend (overrides `ANCSTR_BACKEND`).
pub fn set_backend(kind: BackendKind) {
    ACTIVE.store(encode(kind), Ordering::SeqCst);
}

/// The currently selected backend kind, resolving `ANCSTR_BACKEND`
/// (default [`BackendKind::Simd`]) on first use.
///
/// # Panics
///
/// Panics if `ANCSTR_BACKEND` is set to an unknown name — a misspelled
/// backend silently falling back to the default would make benchmark
/// comparisons lie.
pub fn backend_kind() -> BackendKind {
    match ACTIVE.load(Ordering::SeqCst) {
        1 => BackendKind::Scalar,
        2 => BackendKind::Simd,
        _ => {
            let kind = match std::env::var("ANCSTR_BACKEND") {
                Ok(v) => BackendKind::parse(&v).unwrap_or_else(|| {
                    panic!("ANCSTR_BACKEND must be 'scalar' or 'simd', got '{v}'")
                }),
                Err(_) => BackendKind::Simd,
            };
            ACTIVE.store(encode(kind), Ordering::SeqCst);
            kind
        }
    }
}

/// The active backend implementation — the single dispatch point every
/// kernel call site goes through.
pub fn active() -> &'static dyn Backend {
    backend_kind().backend()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_parse_and_names_round_trip() {
        for kind in BackendKind::ALL {
            assert_eq!(BackendKind::parse(kind.name()), Some(kind));
            assert_eq!(kind.backend().name(), kind.name());
            assert_eq!(kind.to_string(), kind.name());
        }
        assert_eq!(BackendKind::parse(" SIMD "), Some(BackendKind::Simd));
        assert_eq!(BackendKind::parse("avx512"), None);
    }

    #[test]
    fn set_backend_switches_dispatch() {
        // Serialize against other tests touching the global selection.
        let before = backend_kind();
        set_backend(BackendKind::Scalar);
        assert_eq!(backend_kind(), BackendKind::Scalar);
        assert_eq!(active().name(), "scalar");
        set_backend(BackendKind::Simd);
        assert_eq!(backend_kind(), BackendKind::Simd);
        assert_eq!(active().name(), "simd");
        set_backend(before);
    }

    #[test]
    fn shared_reductions_are_sequential_and_identical() {
        let v: Vec<f64> = (0..131).map(|i| (i as f64) * 0.37 - 19.0).collect();
        let w: Vec<f64> = (0..131).map(|i| (i as f64).sin()).collect();
        for kind in BackendKind::ALL {
            let b = kind.backend();
            let expect_dot: f64 = v.iter().zip(&w).map(|(x, y)| x * y).sum();
            assert_eq!(b.dot(&v, &w).to_bits(), expect_dot.to_bits());
            let expect_sq: f64 = v.iter().map(|x| x * x).sum();
            assert_eq!(b.sum_squares(&v).to_bits(), expect_sq.to_bits());
            assert_eq!(b.row_norm(&v).to_bits(), expect_sq.sqrt().to_bits());
        }
    }

    #[test]
    fn cosine_with_norms_matches_cosine_similarity() {
        let a: Vec<f64> = (0..37).map(|i| (i as f64) * 0.11 - 2.0).collect();
        let b: Vec<f64> = (0..41).map(|i| (i as f64) * -0.07 + 1.5).collect();
        for kind in BackendKind::ALL {
            let be = kind.backend();
            let (na, nb) = (be.row_norm(&a), be.row_norm(&b));
            let hoisted = be.cosine_with_norms(&a, &b, na, nb);
            let direct = crate::cosine_similarity(&a, &b);
            assert_eq!(hoisted.to_bits(), direct.to_bits());
            assert_eq!(be.cosine_with_norms(&a, &b, 0.0, nb), 0.0);
        }
    }
}
