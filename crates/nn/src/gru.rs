//! A gated recurrent unit cell, the combiner of Eq. 1:
//! `h_v^{(k)} = GRU(h_v^{(k-1)}, m_v)` where `m_v` is the aggregated
//! neighbour message.

use rand::Rng;

use crate::init::xavier_uniform;
use crate::matrix::Matrix;
use crate::tape::{NodeId, Tape};

/// Learnable parameters of a GRU cell.
///
/// Gate equations (x = message input, h = previous state):
///
/// ```text
/// z = σ(x·Wz + h·Uz + bz)        update gate
/// r = σ(x·Wr + h·Ur + br)        reset gate
/// h̃ = tanh(x·Wh + (r ⊙ h)·Uh + bh)
/// h' = (1 − z) ⊙ h + z ⊙ h̃
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GruCell {
    input_dim: usize,
    hidden_dim: usize,
    /// `[Wz, Wr, Wh, Uz, Ur, Uh, bz, br, bh]`.
    params: Vec<Matrix>,
}

/// Tape leaves for one forward pass of a [`GruCell`], in the same order
/// as [`GruCell::matrices`].
#[derive(Debug, Clone)]
pub struct GruLeaves {
    ids: Vec<NodeId>,
}

impl GruLeaves {
    /// The leaf node ids, ordered as [`GruCell::matrices`].
    pub fn ids(&self) -> &[NodeId] {
        &self.ids
    }
}

impl GruCell {
    /// Number of parameter matrices in a cell.
    pub const PARAM_COUNT: usize = 9;

    /// A new cell with Xavier-uniform weights and zero biases.
    pub fn new(input_dim: usize, hidden_dim: usize, rng: &mut impl Rng) -> GruCell {
        let params = vec![
            xavier_uniform(input_dim, hidden_dim, rng),
            xavier_uniform(input_dim, hidden_dim, rng),
            xavier_uniform(input_dim, hidden_dim, rng),
            xavier_uniform(hidden_dim, hidden_dim, rng),
            xavier_uniform(hidden_dim, hidden_dim, rng),
            xavier_uniform(hidden_dim, hidden_dim, rng),
            Matrix::zeros(1, hidden_dim),
            Matrix::zeros(1, hidden_dim),
            Matrix::zeros(1, hidden_dim),
        ];
        GruCell { input_dim, hidden_dim, params }
    }

    /// Input (message) dimensionality.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Hidden-state dimensionality.
    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    /// The parameter matrices `[Wz, Wr, Wh, Uz, Ur, Uh, bz, br, bh]`.
    pub fn matrices(&self) -> &[Matrix] {
        &self.params
    }

    /// Mutable access to the parameter matrices (same order).
    pub fn matrices_mut(&mut self) -> &mut [Matrix] {
        &mut self.params
    }

    /// Register the parameters as leaves on `tape`.
    pub fn leaves(&self, tape: &mut Tape) -> GruLeaves {
        GruLeaves {
            ids: self.params.iter().map(|m| tape.leaf(m.clone())).collect(),
        }
    }

    /// One GRU step: combine message `x` (`n × input_dim`) with state `h`
    /// (`n × hidden_dim`) into the next state (`n × hidden_dim`).
    ///
    /// # Panics
    ///
    /// Panics (inside tape ops) on shape mismatches.
    pub fn forward(tape: &mut Tape, leaves: &GruLeaves, x: NodeId, h: NodeId) -> NodeId {
        let [wz, wr, wh, uz, ur, uh, bz, br, bh] = leaves.ids[..] else {
            unreachable!("GruLeaves always holds {} ids", GruCell::PARAM_COUNT)
        };
        let gate = |tape: &mut Tape, w: NodeId, u_in: NodeId, b: NodeId, state: NodeId| {
            let xw = tape.matmul(x, w);
            let hu = tape.matmul(state, u_in);
            let s = tape.add(xw, hu);
            tape.add_row(s, b)
        };
        let z_pre = gate(tape, wz, uz, bz, h);
        let z = tape.sigmoid(z_pre);
        let r_pre = gate(tape, wr, ur, br, h);
        let r = tape.sigmoid(r_pre);
        let rh = tape.mul_elem(r, h);
        let cand_pre = gate(tape, wh, uh, bh, rh);
        let cand = tape.tanh(cand_pre);
        // h' = h + z ⊙ (h̃ − h)
        let delta = tape.sub(cand, h);
        let zd = tape.mul_elem(z, delta);
        tape.add(h, zd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cell() -> GruCell {
        let mut rng = StdRng::seed_from_u64(7);
        GruCell::new(4, 3, &mut rng)
    }

    #[test]
    fn shapes_are_correct() {
        let c = cell();
        assert_eq!(c.matrices().len(), GruCell::PARAM_COUNT);
        assert_eq!(c.matrices()[0].shape(), (4, 3)); // Wz
        assert_eq!(c.matrices()[3].shape(), (3, 3)); // Uz
        assert_eq!(c.matrices()[6].shape(), (1, 3)); // bz
        assert_eq!(c.input_dim(), 4);
        assert_eq!(c.hidden_dim(), 3);
    }

    #[test]
    fn forward_produces_bounded_update() {
        let c = cell();
        let mut tape = Tape::new();
        let leaves = c.leaves(&mut tape);
        let x = tape.leaf(Matrix::filled(5, 4, 0.3));
        let h = tape.leaf(Matrix::filled(5, 3, 0.1));
        let out = GruCell::forward(&mut tape, &leaves, x, h);
        let v = tape.value(out);
        assert_eq!(v.shape(), (5, 3));
        assert!(v.is_finite());
        // GRU output is a convex combination of h and tanh(·), so |h'| ≤ max(|h|, 1).
        assert!(v.max_abs() <= 1.0 + 1e-12);
    }

    #[test]
    fn zero_message_zero_state_stays_small() {
        let c = cell();
        let mut tape = Tape::new();
        let leaves = c.leaves(&mut tape);
        let x = tape.leaf(Matrix::zeros(2, 4));
        let h = tape.leaf(Matrix::zeros(2, 3));
        let out = GruCell::forward(&mut tape, &leaves, x, h);
        // z = σ(0) = 0.5, h̃ = tanh(0) = 0 → h' = 0.
        assert!(tape.value(out).max_abs() < 1e-12);
    }

    #[test]
    fn gradients_reach_every_parameter() {
        let c = cell();
        let mut tape = Tape::new();
        let leaves = c.leaves(&mut tape);
        let x = tape.leaf(Matrix::filled(3, 4, 0.2));
        let h = tape.leaf(Matrix::filled(3, 3, -0.1));
        let out = GruCell::forward(&mut tape, &leaves, x, h);
        let loss = tape.sum(out);
        let grads = tape.backward(loss);
        for (i, &id) in leaves.ids().iter().enumerate() {
            let g = grads.grad(id).unwrap_or_else(|| panic!("param {i} missing grad"));
            assert!(g.is_finite());
            assert!(g.max_abs() > 0.0, "param {i} has zero gradient");
        }
    }

    #[test]
    fn gru_finite_difference_check() {
        // Check dLoss/dWz numerically on a tiny instance.
        let c = cell();
        let xv = Matrix::from_rows(&[&[0.4, -0.3, 0.2, 0.1]]);
        let hv = Matrix::from_rows(&[&[0.05, -0.2, 0.15]]);

        let run = |cell: &GruCell| -> (f64, Matrix) {
            let mut tape = Tape::new();
            let leaves = cell.leaves(&mut tape);
            let x = tape.leaf(xv.clone());
            let h = tape.leaf(hv.clone());
            let out = GruCell::forward(&mut tape, &leaves, x, h);
            let loss = tape.sum(out);
            let grads = tape.backward(loss);
            (
                tape.value(loss)[(0, 0)],
                grads.grad(leaves.ids()[0]).unwrap().clone(),
            )
        };
        let (_, g_wz) = run(&c);
        let eps = 1e-6;
        for r in 0..4 {
            for col in 0..3 {
                let mut cp = c.clone();
                cp.matrices_mut()[0][(r, col)] += eps;
                let mut cm = c.clone();
                cm.matrices_mut()[0][(r, col)] -= eps;
                let numeric = (run(&cp).0 - run(&cm).0) / (2.0 * eps);
                assert!(
                    (numeric - g_wz[(r, col)]).abs() < 1e-6,
                    "dWz[{r},{col}] numeric {numeric} vs {}",
                    g_wz[(r, col)]
                );
            }
        }
    }
}
