//! The Adam optimizer.

use crate::matrix::Matrix;

/// Adam (Kingma & Ba) with per-parameter first/second moment estimates.
///
/// Slots are allocated lazily on the first [`Adam::step`]; every later
/// step must pass the same number of parameters in the same order.
///
/// # Example
///
/// ```
/// use ancstr_nn::{Adam, Matrix};
///
/// // Minimize f(w) = w² from w = 1.
/// let mut w = Matrix::from_rows(&[&[1.0]]);
/// let mut opt = Adam::new(0.1);
/// for _ in 0..200 {
///     let grad = w.scale(2.0); // df/dw = 2w
///     opt.step(&mut [&mut w], &[grad]);
/// }
/// assert!(w[(0, 0)].abs() < 1e-3);
/// ```
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    t: u64,
    slots: Vec<(Matrix, Matrix)>,
}

impl Adam {
    /// Adam with the given learning rate and the standard
    /// `β₁ = 0.9, β₂ = 0.999, ε = 1e−8`.
    pub fn new(lr: f64) -> Adam {
        Adam { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, t: 0, slots: Vec::new() }
    }

    /// Override the moment decay rates.
    pub fn with_betas(mut self, beta1: f64, beta2: f64) -> Adam {
        self.beta1 = beta1;
        self.beta2 = beta2;
        self
    }

    /// The configured learning rate.
    pub fn learning_rate(&self) -> f64 {
        self.lr
    }

    /// Number of completed steps.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// The per-parameter `(first, second)` moment slots, in parameter
    /// order. Empty before the first [`Adam::step`].
    pub fn moments(&self) -> &[(Matrix, Matrix)] {
        &self.slots
    }

    /// Rebuild an optimizer mid-run from a durable checkpoint: the step
    /// counter and moment slots captured by [`Adam::steps`] and
    /// [`Adam::moments`]. The next [`Adam::step`] continues the exact
    /// update sequence the checkpointed optimizer would have produced.
    pub fn restore(lr: f64, t: u64, slots: Vec<(Matrix, Matrix)>) -> Adam {
        Adam { t, slots, ..Adam::new(lr) }
    }

    /// Apply one update to `params` given matching `grads`.
    ///
    /// # Panics
    ///
    /// Panics if the parameter count or any shape differs from the first
    /// step, or if `params.len() != grads.len()`.
    pub fn step(&mut self, params: &mut [&mut Matrix], grads: &[Matrix]) {
        assert_eq!(params.len(), grads.len(), "one gradient per parameter");
        if self.slots.is_empty() {
            self.slots = params
                .iter()
                .map(|p| {
                    let (r, c) = p.shape();
                    (Matrix::zeros(r, c), Matrix::zeros(r, c))
                })
                .collect();
        }
        assert_eq!(self.slots.len(), params.len(), "parameter count changed");
        self.t += 1;
        let t = self.t as i32;
        let bc1 = 1.0 - self.beta1.powi(t);
        let bc2 = 1.0 - self.beta2.powi(t);

        for ((p, g), (m, v)) in params.iter_mut().zip(grads).zip(&mut self.slots) {
            assert_eq!(p.shape(), g.shape(), "parameter/gradient shape mismatch");
            let n = p.as_slice().len();
            for i in 0..n {
                let grad = g.as_slice()[i];
                let mi = &mut m.as_mut_slice()[i];
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * grad;
                let vi = &mut v.as_mut_slice()[i];
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * grad * grad;
                let m_hat = *mi / bc1;
                let v_hat = *vi / bc2;
                p.as_mut_slice()[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_quadratic_bowl() {
        // f(w) = Σ (w − c)², c = [3, −2]
        let c = [3.0, -2.0];
        let mut w = Matrix::zeros(1, 2);
        let mut opt = Adam::new(0.1);
        for _ in 0..500 {
            let grad = Matrix::from_fn(1, 2, |_, j| 2.0 * (w[(0, j)] - c[j]));
            opt.step(&mut [&mut w], &[grad]);
        }
        assert!((w[(0, 0)] - 3.0).abs() < 1e-2);
        assert!((w[(0, 1)] + 2.0).abs() < 1e-2);
        assert_eq!(opt.steps(), 500);
    }

    #[test]
    fn handles_multiple_parameters() {
        let mut a = Matrix::filled(2, 2, 1.0);
        let mut b = Matrix::filled(1, 3, -1.0);
        let mut opt = Adam::new(0.05);
        for _ in 0..400 {
            let ga = a.scale(2.0);
            let gb = b.scale(2.0);
            opt.step(&mut [&mut a, &mut b], &[ga, gb]);
        }
        assert!(a.max_abs() < 1e-2);
        assert!(b.max_abs() < 1e-2);
    }

    #[test]
    #[should_panic(expected = "one gradient per parameter")]
    fn mismatched_lengths_panic() {
        let mut w = Matrix::zeros(1, 1);
        let mut opt = Adam::new(0.1);
        opt.step(&mut [&mut w], &[]);
    }

    #[test]
    #[should_panic(expected = "parameter count changed")]
    fn changing_param_count_panics() {
        let mut a = Matrix::zeros(1, 1);
        let mut b = Matrix::zeros(1, 1);
        let mut opt = Adam::new(0.1);
        let g = Matrix::zeros(1, 1);
        opt.step(&mut [&mut a], std::slice::from_ref(&g));
        opt.step(&mut [&mut a, &mut b], &[g.clone(), g]);
    }

    #[test]
    fn custom_betas_still_converge() {
        let mut w = Matrix::from_rows(&[&[5.0]]);
        let mut opt = Adam::new(0.2).with_betas(0.8, 0.99);
        for _ in 0..300 {
            let g = w.scale(2.0);
            opt.step(&mut [&mut w], &[g]);
        }
        assert!(w.max_abs() < 1e-2);
    }
}
