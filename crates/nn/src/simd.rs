//! The SIMD-friendly backend: register-tiled kernels over fixed-width
//! `[f64; 4]` lanes, zero-dependency stable Rust.
//!
//! No intrinsics — the kernels are written so the compiler's
//! autovectorizer sees independent, fixed-width lane operations
//! (`[f64; 4]` accumulators, `chunks_exact` bodies with no bounds
//! checks or carried dependence) and emits packed SSE2/AVX on its own.
//!
//! Bit-identity with [`crate::backend::ScalarBackend`] is structural,
//! not incidental (see the `backend` module docs): the matmul tile
//! performs the same adds on the same elements in the same ascending-`k`
//! order — it only keeps a 4-wide strip of the output row in registers
//! across 4 `k` steps instead of round-tripping through memory per
//! step, and memory round trips do not change `f64` bits. Reductions
//! that would need reassociation to vectorize (`dot`, `sum_squares`)
//! are inherited sequential from the trait.

use std::ops::Range;

use crate::backend::{Backend, J_BLOCK, K_BLOCK};

/// Lane width: 4 × f64 = one AVX register (or two SSE2 registers).
const LANES: usize = 4;

/// The register-tiled fixed-width-lane backend.
pub struct SimdBackend;

impl Backend for SimdBackend {
    fn name(&self) -> &'static str {
        "simd"
    }

    /// Cache-blocked ikj matmul with a 4×4 register tile: `k` advances
    /// in groups of 4 and a `[f64; 4]` strip of the output row stays in
    /// registers across the group.
    ///
    /// Per output element the contributions are still four *separate*
    /// adds in ascending `k` order — never a fused
    /// `a0*b0 + a1*b1 + …` expression, which would reassociate the
    /// rounding. The all-nonzero fast path is taken per `k`-group; any
    /// zero in the group falls back to the per-`k` scalar loop so the
    /// `a == 0.0` skip semantics (inf/NaN in `b` stays untouched) match
    /// the reference exactly.
    fn matmul_rows(
        &self,
        a: &[f64],
        inner: usize,
        rows: Range<usize>,
        b: &[f64],
        n: usize,
        out: &mut [f64],
    ) {
        for (li, i) in rows.enumerate() {
            let arow = &a[i * inner..(i + 1) * inner];
            let orow = &mut out[li * n..(li + 1) * n];
            for k0 in (0..inner).step_by(K_BLOCK) {
                let k1 = (k0 + K_BLOCK).min(inner);
                for j0 in (0..n).step_by(J_BLOCK) {
                    let j1 = (j0 + J_BLOCK).min(n);
                    let mut k = k0;
                    while k + LANES <= k1 {
                        let ak: [f64; LANES] =
                            arow[k..k + LANES].try_into().expect("lane slice");
                        if ak.iter().all(|&v| v != 0.0) {
                            kgroup_tile(ak, &b[k * n..(k + LANES) * n], n, j0, j1, orow);
                        } else {
                            kgroup_scalar(&ak, k, b, n, j0, j1, orow);
                        }
                        k += LANES;
                    }
                    // Inner-dimension remainder: the reference loop.
                    for (kk, &av) in (k..k1).zip(&arow[k..k1]) {
                        if av == 0.0 {
                            continue;
                        }
                        let brow = &b[kk * n + j0..kk * n + j1];
                        for (o, &bv) in orow[j0..j1].iter_mut().zip(brow) {
                            *o += av * bv;
                        }
                    }
                }
            }
        }
    }

    /// AXPY over `[f64; 4]` chunks; every element is independent, so
    /// lane grouping cannot change bits.
    fn axpy(&self, y: &mut [f64], a: f64, x: &[f64]) {
        assert_eq!(y.len(), x.len(), "axpy length mismatch");
        let mut yc = y.chunks_exact_mut(LANES);
        let mut xc = x.chunks_exact(LANES);
        for (yl, xl) in (&mut yc).zip(&mut xc) {
            let yl: &mut [f64; LANES] = yl.try_into().expect("lane slice");
            let xl: &[f64; LANES] = xl.try_into().expect("lane slice");
            for l in 0..LANES {
                yl[l] += a * xl[l];
            }
        }
        for (yv, &xv) in yc.into_remainder().iter_mut().zip(xc.remainder()) {
            *yv += a * xv;
        }
    }
}

/// One all-nonzero `k`-group over one column block: accumulate 4 `k`
/// steps into a register-resident strip of the output row.
///
/// `bgroup` holds the 4 RHS rows of the group (`bgroup[l*n + j]` =
/// `b[(k+l)*n + j]`).
#[inline]
fn kgroup_tile(ak: [f64; LANES], bgroup: &[f64], n: usize, j0: usize, j1: usize, orow: &mut [f64]) {
    let width = j1 - j0;
    let out = &mut orow[j0..j1];
    let rows: [&[f64]; LANES] = [
        &bgroup[j0..j1],
        &bgroup[n + j0..n + j1],
        &bgroup[2 * n + j0..2 * n + j1],
        &bgroup[3 * n + j0..3 * n + j1],
    ];
    let mut j = 0;
    while j + LANES <= width {
        let mut acc: [f64; LANES] = out[j..j + LANES].try_into().expect("lane slice");
        // Four separate adds per element, ascending k — identical
        // rounding sequence to the scalar reference.
        for (&av, brow) in ak.iter().zip(rows) {
            let bl: &[f64; LANES] = brow[j..j + LANES].try_into().expect("lane slice");
            for l in 0..LANES {
                acc[l] += av * bl[l];
            }
        }
        out[j..j + LANES].copy_from_slice(&acc);
        j += LANES;
    }
    // Column remainder: same per-element add order, one lane at a time.
    for jj in j..width {
        let mut acc = out[jj];
        for (&av, brow) in ak.iter().zip(rows) {
            acc += av * brow[jj];
        }
        out[jj] = acc;
    }
}

/// Fallback for a `k`-group containing zeros: the reference per-`k`
/// loop with the `a == 0.0` skip.
#[inline]
fn kgroup_scalar(
    ak: &[f64; LANES],
    k: usize,
    b: &[f64],
    n: usize,
    j0: usize,
    j1: usize,
    orow: &mut [f64],
) {
    for (l, &av) in ak.iter().enumerate() {
        if av == 0.0 {
            continue;
        }
        let kk = k + l;
        let brow = &b[kk * n + j0..kk * n + j1];
        for (o, &bv) in orow[j0..j1].iter_mut().zip(brow) {
            *o += av * bv;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::ScalarBackend;

    fn lcg(seed: &mut u64) -> f64 {
        *seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((*seed >> 11) as f64 / (1u64 << 53) as f64) * 4.0 - 2.0
    }

    #[test]
    fn matmul_rows_is_bit_identical_to_scalar() {
        let mut seed = 41u64;
        // Shapes straddling the lane width, the tile width, and the
        // cache-block boundaries; plus planted zeros to force the
        // mixed-group fallback inside otherwise-vectorized groups.
        for (m, inner, n) in
            [(1, 1, 1), (3, 18, 18), (7, 19, 23), (5, 260, 270), (2, 300, 9), (4, 257, 31)]
        {
            let mut a: Vec<f64> = (0..m * inner).map(|_| lcg(&mut seed)).collect();
            for idx in (0..a.len()).step_by(7) {
                a[idx] = 0.0;
            }
            let b: Vec<f64> = (0..inner * n).map(|_| lcg(&mut seed)).collect();
            let mut got = vec![0.0; m * n];
            let mut want = vec![0.0; m * n];
            SimdBackend.matmul_rows(&a, inner, 0..m, &b, n, &mut got);
            ScalarBackend.matmul_rows(&a, inner, 0..m, &b, n, &mut want);
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(g.to_bits(), w.to_bits(), "shape ({m},{inner},{n})");
            }
        }
    }

    #[test]
    fn matmul_rows_preserves_zero_skip_semantics() {
        // A zero LHS element must skip an inf/NaN RHS row entirely,
        // in both the mixed k-group and the k remainder.
        for inner in [3usize, 5, 9] {
            let mut a = vec![1.0; inner];
            a[1] = 0.0;
            let n = 6;
            let mut b = vec![2.0; inner * n];
            for v in &mut b[n..2 * n] {
                *v = f64::INFINITY;
            }
            let mut got = vec![0.0; n];
            SimdBackend.matmul_rows(&a, inner, 0..1, &b, n, &mut got);
            assert!(got.iter().all(|v| v.is_finite()), "inner={inner}: {got:?}");
        }
    }

    #[test]
    fn axpy_matches_scalar_bitwise() {
        let mut seed = 9u64;
        for len in [0usize, 1, 3, 4, 5, 18, 127] {
            let x: Vec<f64> = (0..len).map(|_| lcg(&mut seed)).collect();
            let y0: Vec<f64> = (0..len).map(|_| lcg(&mut seed)).collect();
            let a = lcg(&mut seed);
            let mut ys = y0.clone();
            let mut yv = y0.clone();
            ScalarBackend.axpy(&mut ys, a, &x);
            SimdBackend.axpy(&mut yv, a, &x);
            for (s, v) in ys.iter().zip(&yv) {
                assert_eq!(s.to_bits(), v.to_bits(), "len={len}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "axpy length mismatch")]
    fn axpy_checks_lengths() {
        SimdBackend.axpy(&mut [0.0; 3], 1.0, &[1.0; 4]);
    }
}
