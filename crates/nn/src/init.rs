//! Weight initialization.

use rand::Rng;

use crate::matrix::Matrix;

/// Xavier/Glorot uniform initialization: entries drawn from
/// `U(−a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
///
/// # Example
///
/// ```
/// use ancstr_nn::init::xavier_uniform;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let w = xavier_uniform(18, 18, &mut rng);
/// assert_eq!(w.shape(), (18, 18));
/// let bound = (6.0f64 / 36.0).sqrt();
/// assert!(w.max_abs() <= bound);
/// ```
pub fn xavier_uniform(rows: usize, cols: usize, rng: &mut impl Rng) -> Matrix {
    let a = (6.0 / (rows + cols) as f64).sqrt();
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-a..=a))
}

/// Uniform initialization in `(lo, hi)`.
pub fn uniform(rows: usize, cols: usize, lo: f64, hi: f64, rng: &mut impl Rng) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(lo..hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn xavier_is_seed_deterministic() {
        let a = xavier_uniform(4, 4, &mut StdRng::seed_from_u64(42));
        let b = xavier_uniform(4, 4, &mut StdRng::seed_from_u64(42));
        assert_eq!(a, b);
        let c = xavier_uniform(4, 4, &mut StdRng::seed_from_u64(43));
        assert_ne!(a, c);
    }

    #[test]
    fn xavier_respects_bound_and_varies() {
        let w = xavier_uniform(10, 30, &mut StdRng::seed_from_u64(1));
        let bound = (6.0 / 40.0f64).sqrt();
        assert!(w.max_abs() <= bound);
        // Not all equal.
        let first = w[(0, 0)];
        assert!(w.as_slice().iter().any(|&x| (x - first).abs() > 1e-12));
    }

    #[test]
    fn uniform_respects_range() {
        let w = uniform(5, 5, -0.1, 0.2, &mut StdRng::seed_from_u64(9));
        for &x in w.as_slice() {
            assert!((-0.1..0.2).contains(&x));
        }
    }
}
