//! Dense symmetric eigen-analysis via the cyclic Jacobi method.
//!
//! Needed by the S³DET baseline, which compares subcircuits through the
//! eigenvalue spectra of their normalized Laplacians.

use crate::matrix::Matrix;

/// Eigenvalues of a symmetric matrix, sorted ascending, computed with
/// cyclic Jacobi rotations.
///
/// # Panics
///
/// Panics if `a` is not square or deviates from symmetry by more than
/// `1e-9` (relative to its largest element).
///
/// # Example
///
/// ```
/// use ancstr_nn::{linalg::symmetric_eigenvalues, Matrix};
///
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
/// let ev = symmetric_eigenvalues(&a);
/// assert!((ev[0] - 1.0).abs() < 1e-10);
/// assert!((ev[1] - 3.0).abs() < 1e-10);
/// ```
pub fn symmetric_eigenvalues(a: &Matrix) -> Vec<f64> {
    let n = a.rows();
    assert_eq!(n, a.cols(), "eigenvalues need a square matrix");
    let scale = a.max_abs().max(1.0);
    for i in 0..n {
        for j in (i + 1)..n {
            assert!(
                (a[(i, j)] - a[(j, i)]).abs() <= 1e-9 * scale,
                "matrix is not symmetric at ({i},{j})"
            );
        }
    }
    if n == 0 {
        return Vec::new();
    }

    let mut m = a.clone();
    const MAX_SWEEPS: usize = 100;
    for _ in 0..MAX_SWEEPS {
        let off: f64 = {
            let mut s = 0.0;
            for i in 0..n {
                for j in (i + 1)..n {
                    s += m[(i, j)] * m[(i, j)];
                }
            }
            s
        };
        if off <= 1e-22 * scale * scale {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() <= 1e-300 {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Apply the rotation J(p, q, θ) on both sides.
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
            }
        }
    }

    let mut ev: Vec<f64> = (0..n).map(|i| m[(i, i)]).collect();
    ev.sort_by(|a, b| a.partial_cmp(b).expect("eigenvalues are finite"));
    ev
}

/// The symmetric normalized Laplacian `L = I − D^{-1/2} A D^{-1/2}` of an
/// undirected weighted adjacency matrix `a` (taken as `(A + Aᵀ)/2` for
/// robustness). Isolated vertices contribute a diagonal 1… wait — an
/// isolated vertex has `L_{ii} = 0` by the convention `L = I − …` with
/// `D^{-1/2}_{ii} = 0`, so its eigenvalue is 0 like an isolated
/// component's.
///
/// # Panics
///
/// Panics if `a` is not square.
pub fn normalized_laplacian(a: &Matrix) -> Matrix {
    let n = a.rows();
    assert_eq!(n, a.cols(), "laplacian needs a square matrix");
    let sym = a.add(&a.transpose()).scale(0.5);
    let degrees: Vec<f64> = (0..n).map(|i| sym.row(i).iter().sum()).collect();
    let dinv_sqrt: Vec<f64> = degrees
        .iter()
        .map(|&d| if d > 0.0 { 1.0 / d.sqrt() } else { 0.0 })
        .collect();
    Matrix::from_fn(n, n, |i, j| {
        let norm = dinv_sqrt[i] * sym[(i, j)] * dinv_sqrt[j];
        if i == j {
            if degrees[i] > 0.0 {
                1.0 - norm
            } else {
                0.0
            }
        } else {
            -norm
        }
    })
}

/// Assemble square matrices into one dense block-diagonal matrix.
///
/// Algebraically, a block-diagonal operator acts on each block's
/// subspace independently — its spectrum is the multiset union of the
/// block spectra, and any per-row kernel applied to it reproduces the
/// per-block results exactly. That independence is the property the
/// batched serving path leans on; the spectral test below pins it for
/// the eigensolver, and the S³DET baseline uses it to analyze several
/// subcircuit Laplacians in one call.
///
/// # Panics
///
/// Panics if any part is not square.
pub fn block_diagonal(parts: &[&Matrix]) -> Matrix {
    for p in parts {
        assert_eq!(p.rows(), p.cols(), "block_diagonal needs square blocks");
    }
    let n = parts.iter().map(|p| p.rows()).sum();
    let mut out = Matrix::zeros(n, n);
    let mut off = 0;
    for p in parts {
        for i in 0..p.rows() {
            for j in 0..p.cols() {
                out[(off + i, off + j)] = p[(i, j)];
            }
        }
        off += p.rows();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_matrix_eigenvalues() {
        let a = Matrix::from_rows(&[&[3.0, 0.0, 0.0], &[0.0, -1.0, 0.0], &[0.0, 0.0, 2.0]]);
        let ev = symmetric_eigenvalues(&a);
        assert!((ev[0] + 1.0).abs() < 1e-12);
        assert!((ev[1] - 2.0).abs() < 1e-12);
        assert!((ev[2] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn known_3x3_spectrum() {
        // Path-graph Laplacian (unnormalized): eigenvalues 0, 1, 3.
        let a = Matrix::from_rows(&[&[1.0, -1.0, 0.0], &[-1.0, 2.0, -1.0], &[0.0, -1.0, 1.0]]);
        let ev = symmetric_eigenvalues(&a);
        assert!(ev[0].abs() < 1e-10);
        assert!((ev[1] - 1.0).abs() < 1e-10);
        assert!((ev[2] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn trace_equals_eigenvalue_sum() {
        let a = Matrix::from_rows(&[
            &[4.0, 1.0, -2.0, 0.5],
            &[1.0, 3.0, 0.0, 1.5],
            &[-2.0, 0.0, 1.0, -0.5],
            &[0.5, 1.5, -0.5, 2.0],
        ]);
        let ev = symmetric_eigenvalues(&a);
        let trace: f64 = (0..4).map(|i| a[(i, i)]).sum();
        let sum: f64 = ev.iter().sum();
        assert!((trace - sum).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "not symmetric")]
    fn asymmetric_input_panics() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[0.0, 1.0]]);
        let _ = symmetric_eigenvalues(&a);
    }

    #[test]
    fn empty_matrix() {
        assert!(symmetric_eigenvalues(&Matrix::zeros(0, 0)).is_empty());
    }

    #[test]
    fn normalized_laplacian_spectrum_bounds() {
        // Complete graph K4: normalized Laplacian eigenvalues are
        // 0 and 4/3 (×3).
        let a = Matrix::from_fn(4, 4, |i, j| if i == j { 0.0 } else { 1.0 });
        let lap = normalized_laplacian(&a);
        let ev = symmetric_eigenvalues(&lap);
        assert!(ev[0].abs() < 1e-10);
        for &e in &ev[1..] {
            assert!((e - 4.0 / 3.0).abs() < 1e-10);
            assert!((0.0..=2.0 + 1e-9).contains(&e));
        }
    }

    #[test]
    fn block_diagonal_spectrum_is_the_union_of_block_spectra() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]); // {1, 3}
        let b = Matrix::from_rows(&[&[5.0]]); // {5}
        let big = block_diagonal(&[&a, &b]);
        assert_eq!(big.shape(), (3, 3));
        assert_eq!(big[(2, 2)], 5.0);
        assert_eq!(big[(0, 2)], 0.0);
        let ev = symmetric_eigenvalues(&big);
        for (got, want) in ev.iter().zip([1.0, 3.0, 5.0]) {
            assert!((got - want).abs() < 1e-10, "{got} vs {want}");
        }
    }

    #[test]
    #[should_panic(expected = "square blocks")]
    fn block_diagonal_rejects_non_square_parts() {
        let _ = block_diagonal(&[&Matrix::zeros(2, 3)]);
    }

    #[test]
    fn laplacian_handles_isolated_vertices() {
        let a = Matrix::from_rows(&[&[0.0, 1.0, 0.0], &[1.0, 0.0, 0.0], &[0.0, 0.0, 0.0]]);
        let lap = normalized_laplacian(&a);
        let ev = symmetric_eigenvalues(&lap);
        // K2 gives {0, 2}; isolated vertex adds a 0.
        assert!(ev[0].abs() < 1e-10);
        assert!(ev[1].abs() < 1e-10);
        assert!((ev[2] - 2.0).abs() < 1e-10);
    }
}
