#![warn(missing_docs)]

//! Minimal neural-network substrate for the AncstrGNN reproduction.
//!
//! The paper implements its GNN in PyTorch; this crate replaces that
//! dependency with a from-scratch stack sized for the model at hand
//! (feature dimension 18, two layers, graphs of ≤ a few thousand
//! vertices):
//!
//! * [`Backend`] — runtime-dispatched kernel backends (cache-blocked
//!   scalar reference vs. SIMD fixed-width lanes, byte-identical by
//!   contract, selected via `ANCSTR_BACKEND`/[`set_backend`]);
//! * [`Matrix`] — dense row-major `f64` linear algebra;
//! * [`SparseMatrix`] — triplet sparse matrices for the per-edge-type
//!   adjacency operators;
//! * [`Tape`] — reverse-mode autograd over the op set the model needs
//!   (verified against finite differences in the test suite);
//! * [`GruCell`] — the Eq. 1 combiner;
//! * [`Adam`] — the optimizer;
//! * [`init`] — Xavier initialization;
//! * [`linalg`] — a Jacobi symmetric eigensolver (used by the S³DET
//!   baseline's spectral analysis).
//!
//! # Example: one gradient step
//!
//! ```
//! use ancstr_nn::{Adam, Matrix, Tape};
//!
//! let mut w = Matrix::from_rows(&[&[0.5, -0.5]]);
//! let mut opt = Adam::new(0.05);
//! for _ in 0..100 {
//!     let mut tape = Tape::new();
//!     let wn = tape.leaf(w.clone());
//!     let sq = tape.mul_elem(wn, wn);
//!     let loss = tape.sum(sq);
//!     let mut grads = tape.backward(loss);
//!     let g = grads.take(wn).expect("w influences the loss");
//!     opt.step(&mut [&mut w], &[g]);
//! }
//! assert!(w.max_abs() < 1e-2);
//! ```

pub mod backend;
pub mod error;
pub mod gru;
pub mod init;
pub mod linalg;
pub mod matrix;
pub mod optim;
pub mod simd;
pub mod sparse;
pub mod tape;

pub use backend::{set_backend, Backend, BackendKind};
pub use error::NnError;
pub use gru::{GruCell, GruLeaves};
pub use matrix::{axpy, cosine_similarity, dot, row_norm, Matrix};
pub use optim::Adam;
pub use sparse::SparseMatrix;
pub use tape::{log_sigmoid, sigmoid, Gradients, NodeId, SparseId, Tape};

#[cfg(test)]
mod tests {
    #[test]
    fn public_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<crate::Matrix>();
        assert_send_sync::<crate::SparseMatrix>();
        assert_send_sync::<crate::Tape>();
        assert_send_sync::<crate::GruCell>();
        assert_send_sync::<crate::Adam>();
    }
}
