//! Sparse matrices in triplet form, used for the GNN's constant
//! adjacency operators (one per edge type).

use crate::matrix::Matrix;

/// A sparse `rows × cols` matrix stored as `(row, col, value)` triplets.
///
/// Duplicate coordinates accumulate, which is exactly what parallel
/// multigraph edges need: an in-neighbour connected through two nets
/// contributes its feature twice to the Eq. 1 sum.
///
/// # Example
///
/// ```
/// use ancstr_nn::{Matrix, SparseMatrix};
///
/// let s = SparseMatrix::from_triplets(2, 3, vec![(0, 1, 2.0), (1, 2, 1.0)]);
/// let x = Matrix::from_rows(&[&[1.0], &[10.0], &[100.0]]);
/// let y = s.matmul_dense(&x);
/// assert_eq!(y, Matrix::from_rows(&[&[20.0], &[100.0]]));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SparseMatrix {
    rows: usize,
    cols: usize,
    triplets: Vec<(usize, usize, f64)>,
}

impl SparseMatrix {
    /// Build from triplets.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of range.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: Vec<(usize, usize, f64)>,
    ) -> SparseMatrix {
        for &(r, c, _) in &triplets {
            assert!(r < rows && c < cols, "triplet ({r},{c}) out of range");
        }
        SparseMatrix { rows, cols, triplets }
    }

    /// An all-zero sparse matrix.
    pub fn zeros(rows: usize, cols: usize) -> SparseMatrix {
        SparseMatrix { rows, cols, triplets: Vec::new() }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored triplets (duplicates counted).
    pub fn nnz(&self) -> usize {
        self.triplets.len()
    }

    /// Dense product `self · dense`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != dense.rows()`.
    pub fn matmul_dense(&self, dense: &Matrix) -> Matrix {
        assert_eq!(self.cols, dense.rows(), "spmm shape mismatch");
        let mut out = Matrix::zeros(self.rows, dense.cols());
        for &(r, c, v) in &self.triplets {
            let src = dense.row(c).to_vec();
            let dst = out.row_mut(r);
            for (d, s) in dst.iter_mut().zip(src) {
                *d += v * s;
            }
        }
        out
    }

    /// Dense product with the transpose: `selfᵀ · dense` (the backward
    /// pass of [`SparseMatrix::matmul_dense`]).
    ///
    /// # Panics
    ///
    /// Panics if `self.rows() != dense.rows()`.
    pub fn transpose_matmul_dense(&self, dense: &Matrix) -> Matrix {
        assert_eq!(self.rows, dense.rows(), "spmmᵀ shape mismatch");
        let mut out = Matrix::zeros(self.cols, dense.cols());
        for &(r, c, v) in &self.triplets {
            let src = dense.row(r).to_vec();
            let dst = out.row_mut(c);
            for (d, s) in dst.iter_mut().zip(src) {
                *d += v * s;
            }
        }
        out
    }

    /// The stored triplets.
    pub fn triplets(&self) -> &[(usize, usize, f64)] {
        &self.triplets
    }

    /// Materialize as a dense matrix (tests and eigen-analysis).
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for &(r, c, v) in &self.triplets {
            m[(r, c)] += v;
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicates_accumulate() {
        let s = SparseMatrix::from_triplets(2, 2, vec![(0, 0, 1.0), (0, 0, 1.0)]);
        assert_eq!(s.to_dense()[(0, 0)], 2.0);
        let x = Matrix::identity(2);
        assert_eq!(s.matmul_dense(&x)[(0, 0)], 2.0);
    }

    #[test]
    fn spmm_matches_dense() {
        let s = SparseMatrix::from_triplets(
            3,
            2,
            vec![(0, 0, 1.0), (1, 1, 2.0), (2, 0, -1.0), (2, 1, 0.5)],
        );
        let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(s.matmul_dense(&x), s.to_dense().matmul(&x));
    }

    #[test]
    fn transpose_spmm_matches_dense() {
        let s = SparseMatrix::from_triplets(3, 2, vec![(0, 1, 1.5), (2, 0, 2.0)]);
        let y = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        assert_eq!(
            s.transpose_matmul_dense(&y),
            s.to_dense().transpose().matmul(&y)
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn triplets_are_validated() {
        let _ = SparseMatrix::from_triplets(2, 2, vec![(2, 0, 1.0)]);
    }

    #[test]
    fn zeros_products_are_zero() {
        let s = SparseMatrix::zeros(2, 3);
        assert_eq!(s.nnz(), 0);
        let x = Matrix::filled(3, 4, 7.0);
        assert_eq!(s.matmul_dense(&x), Matrix::zeros(2, 4));
    }
}
