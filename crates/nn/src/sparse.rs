//! Sparse matrices in triplet form, used for the GNN's constant
//! adjacency operators (one per edge type).
//!
//! The dense products group the triplets by output row with a stable
//! counting sort (a throwaway CSR view), then accumulate row-by-row
//! with the fused [`axpy`] kernel, in parallel across disjoint output
//! rows for large operands. Stability is what keeps the result
//! bit-identical to the historical "walk the triplets in storage
//! order" loop: each output element still receives its contributions
//! in the original triplet order.

use crate::matrix::{axpy, min_rows_for, par_row_chunks, Matrix};

/// A sparse `rows × cols` matrix stored as `(row, col, value)` triplets.
///
/// Duplicate coordinates accumulate, which is exactly what parallel
/// multigraph edges need: an in-neighbour connected through two nets
/// contributes its feature twice to the Eq. 1 sum.
///
/// # Example
///
/// ```
/// use ancstr_nn::{Matrix, SparseMatrix};
///
/// let s = SparseMatrix::from_triplets(2, 3, vec![(0, 1, 2.0), (1, 2, 1.0)]);
/// let x = Matrix::from_rows(&[&[1.0], &[10.0], &[100.0]]);
/// let y = s.matmul_dense(&x);
/// assert_eq!(y, Matrix::from_rows(&[&[20.0], &[100.0]]));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SparseMatrix {
    rows: usize,
    cols: usize,
    triplets: Vec<(usize, usize, f64)>,
}

impl SparseMatrix {
    /// Build from triplets.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of range.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: Vec<(usize, usize, f64)>,
    ) -> SparseMatrix {
        for &(r, c, _) in &triplets {
            assert!(r < rows && c < cols, "triplet ({r},{c}) out of range");
        }
        SparseMatrix { rows, cols, triplets }
    }

    /// An all-zero sparse matrix.
    pub fn zeros(rows: usize, cols: usize) -> SparseMatrix {
        SparseMatrix { rows, cols, triplets: Vec::new() }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored triplets (duplicates counted).
    pub fn nnz(&self) -> usize {
        self.triplets.len()
    }

    /// Dense product `self · dense`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != dense.rows()`.
    pub fn matmul_dense(&self, dense: &Matrix) -> Matrix {
        assert_eq!(self.cols, dense.rows(), "spmm shape mismatch");
        self.grouped_product(self.rows, dense, |&(r, _, _)| r, |&(_, c, _)| c)
    }

    /// Dense product with the transpose: `selfᵀ · dense` (the backward
    /// pass of [`SparseMatrix::matmul_dense`]).
    ///
    /// # Panics
    ///
    /// Panics if `self.rows() != dense.rows()`.
    pub fn transpose_matmul_dense(&self, dense: &Matrix) -> Matrix {
        assert_eq!(self.rows, dense.rows(), "spmmᵀ shape mismatch");
        self.grouped_product(self.cols, dense, |&(_, c, _)| c, |&(r, _, _)| r)
    }

    /// Shared kernel for both dense products: `out_row(t)` names the
    /// output row a triplet accumulates into, `src_row(t)` the dense
    /// row it reads.
    fn grouped_product(
        &self,
        out_rows: usize,
        dense: &Matrix,
        out_row: impl Fn(&(usize, usize, f64)) -> usize + Sync,
        src_row: impl Fn(&(usize, usize, f64)) -> usize + Sync,
    ) -> Matrix {
        let cols = dense.cols();
        let mut out = Matrix::zeros(out_rows, cols);
        if self.triplets.is_empty() {
            return out;
        }
        let _prof = ancstr_par::profile::time(
            ancstr_par::profile::Kernel::Spmm,
            (self.triplets.len() * cols) as u64,
        );
        let avg_work = (self.triplets.len() * cols.max(1)) / out_rows.max(1);
        let min_rows = min_rows_for(avg_work);
        // The grouping pass only earns its keep when rows actually fan
        // out; otherwise walk the triplets directly — the grouped path
        // accumulates each output element in exactly this order, so the
        // two are bit-identical (pinned by the tests below).
        if !ancstr_par::would_parallelize(out_rows, min_rows) {
            for t in &self.triplets {
                axpy(out.row_mut(out_row(t)), t.2, dense.row(src_row(t)));
            }
            return out;
        }
        // Stable counting sort of triplet indices by output row.
        let mut starts = vec![0usize; out_rows + 1];
        for t in &self.triplets {
            starts[out_row(t) + 1] += 1;
        }
        for r in 0..out_rows {
            starts[r + 1] += starts[r];
        }
        let mut cursor = starts.clone();
        let mut order = vec![0u32; self.triplets.len()];
        for (idx, t) in self.triplets.iter().enumerate() {
            let r = out_row(t);
            order[cursor[r]] = idx as u32;
            cursor[r] += 1;
        }
        par_row_chunks(
            out_rows,
            cols,
            out.as_mut_slice(),
            min_rows,
            |rows, chunk| {
                for (li, r) in rows.enumerate() {
                    let dst = &mut chunk[li * cols..(li + 1) * cols];
                    for &idx in &order[starts[r]..starts[r + 1]] {
                        let t = &self.triplets[idx as usize];
                        axpy(dst, t.2, dense.row(src_row(t)));
                    }
                }
            },
        );
        out
    }

    /// Assemble independent operators into one block-diagonal operator:
    /// part `k`'s triplets are shifted by the cumulative row/column
    /// offsets of the parts before it.
    ///
    /// Because the parts share no rows or columns, a dense product with
    /// vertically stacked per-part operands touches each part's rows
    /// using only that part's triplets — and since triplets concatenate
    /// part-by-part in their original storage order, every output row
    /// accumulates in exactly the order the solo product used. Batched
    /// spmm is therefore bit-identical to per-part spmm (pinned by the
    /// test below).
    pub fn block_diagonal(parts: &[&SparseMatrix]) -> SparseMatrix {
        let rows = parts.iter().map(|p| p.rows).sum();
        let cols = parts.iter().map(|p| p.cols).sum();
        let nnz = parts.iter().map(|p| p.triplets.len()).sum();
        let mut triplets = Vec::with_capacity(nnz);
        let (mut row_off, mut col_off) = (0, 0);
        for p in parts {
            triplets.extend(p.triplets.iter().map(|&(r, c, v)| (r + row_off, c + col_off, v)));
            row_off += p.rows;
            col_off += p.cols;
        }
        SparseMatrix { rows, cols, triplets }
    }

    /// The stored triplets.
    pub fn triplets(&self) -> &[(usize, usize, f64)] {
        &self.triplets
    }

    /// Materialize as a dense matrix (tests and eigen-analysis).
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for &(r, c, v) in &self.triplets {
            m[(r, c)] += v;
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicates_accumulate() {
        let s = SparseMatrix::from_triplets(2, 2, vec![(0, 0, 1.0), (0, 0, 1.0)]);
        assert_eq!(s.to_dense()[(0, 0)], 2.0);
        let x = Matrix::identity(2);
        assert_eq!(s.matmul_dense(&x)[(0, 0)], 2.0);
    }

    #[test]
    fn spmm_matches_dense() {
        let s = SparseMatrix::from_triplets(
            3,
            2,
            vec![(0, 0, 1.0), (1, 1, 2.0), (2, 0, -1.0), (2, 1, 0.5)],
        );
        let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(s.matmul_dense(&x), s.to_dense().matmul(&x));
    }

    #[test]
    fn transpose_spmm_matches_dense() {
        let s = SparseMatrix::from_triplets(3, 2, vec![(0, 1, 1.5), (2, 0, 2.0)]);
        let y = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        assert_eq!(
            s.transpose_matmul_dense(&y),
            s.to_dense().transpose().matmul(&y)
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn triplets_are_validated() {
        let _ = SparseMatrix::from_triplets(2, 2, vec![(2, 0, 1.0)]);
    }

    #[test]
    fn zeros_products_are_zero() {
        let s = SparseMatrix::zeros(2, 3);
        assert_eq!(s.nnz(), 0);
        let x = Matrix::filled(3, 4, 7.0);
        assert_eq!(s.matmul_dense(&x), Matrix::zeros(2, 4));
    }

    #[test]
    fn block_diagonal_spmm_is_bit_identical_to_per_part_spmm() {
        let mut seed = 9u64;
        let mut rnd = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((seed >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        // Unsorted rows and duplicates inside each part, plus an empty
        // part, so the order-preservation claim is actually exercised.
        let a = SparseMatrix::from_triplets(
            4,
            3,
            (0..40).map(|i| ((i * 7 + 2) % 4, (i * 5 + 1) % 3, rnd())).collect(),
        );
        let b = SparseMatrix::zeros(2, 2);
        let c = SparseMatrix::from_triplets(
            97,
            11,
            (0..3000).map(|i| ((i * 31 + 5) % 97, (i * 13 + 2) % 11, rnd())).collect(),
        );
        let big = SparseMatrix::block_diagonal(&[&a, &b, &c]);
        assert_eq!((big.rows(), big.cols()), (103, 16));
        assert_eq!(big.nnz(), a.nnz() + c.nnz());

        let xa = Matrix::from_fn(3, 6, |_, _| rnd());
        let xb = Matrix::from_fn(2, 6, |_, _| rnd());
        let xc = Matrix::from_fn(11, 6, |_, _| rnd());
        let stacked = Matrix::vstack(&[&xa, &xb, &xc]);
        let batched = big.matmul_dense(&stacked).split_rows(&[4, 2, 97]);
        for (got, (part, x)) in
            batched.iter().zip([(&a, &xa), (&b, &xb), (&c, &xc)])
        {
            let solo = part.matmul_dense(x);
            for (g, s) in got.as_slice().iter().zip(solo.as_slice()) {
                assert_eq!(g.to_bits(), s.to_bits());
            }
        }
    }

    /// The historical kernel: walk the triplets in storage order.
    fn spmm_reference(s: &SparseMatrix, dense: &Matrix, transpose: bool) -> Matrix {
        let out_rows = if transpose { s.cols() } else { s.rows() };
        let mut out = Matrix::zeros(out_rows, dense.cols());
        for &(r, c, v) in s.triplets() {
            let (dst, src) = if transpose { (c, r) } else { (r, c) };
            for (d, &sv) in out.row_mut(dst).iter_mut().zip(dense.row(src)) {
                *d += v * sv;
            }
        }
        out
    }

    #[test]
    fn grouped_spmm_is_bit_identical_to_triplet_order_walk() {
        // Unsorted rows, duplicates, and an empty row — the stable
        // grouping must preserve each element's accumulation order.
        let mut seed = 5u64;
        let mut rnd = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((seed >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        let triplets: Vec<(usize, usize, f64)> = (0..4000)
            .map(|i| ((i * 31 + 7) % 97, (i * 17 + 3) % 23, rnd()))
            .collect();
        let s = SparseMatrix::from_triplets(100, 23, triplets);
        let x = Matrix::from_fn(23, 18, |_, _| rnd());
        let before = ancstr_par::threads();
        for t in [1usize, 4, 8] {
            ancstr_par::set_threads(t);
            let fwd = s.matmul_dense(&x);
            let reference = spmm_reference(&s, &x, false);
            assert_eq!(fwd.shape(), reference.shape());
            for (a, b) in fwd.as_slice().iter().zip(reference.as_slice()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            let y = Matrix::from_fn(100, 18, |_, _| rnd());
            let bwd = s.transpose_matmul_dense(&y);
            let reference_t = spmm_reference(&s, &y, true);
            for (a, b) in bwd.as_slice().iter().zip(reference_t.as_slice()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        ancstr_par::set_threads(before);
    }
}
