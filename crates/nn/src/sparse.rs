//! Sparse matrices in triplet form, used for the GNN's constant
//! adjacency operators (one per edge type).
//!
//! The dense products group the triplets by output row with a stable
//! counting sort into a **CSR view** (`starts` + triplet `order`),
//! built lazily **once per matrix per orientation** and cached — the
//! GNN reuses each adjacency operator across every GRU step of every
//! epoch, so the historical sort-per-product was pure waste. Rows then
//! accumulate with the fused [`axpy`] kernel, in parallel across
//! disjoint output rows for large operands. Sort stability is what
//! keeps the result bit-identical to the historical "walk the triplets
//! in storage order" loop: each output element still receives its
//! contributions in the original triplet order.

use std::sync::OnceLock;

use crate::matrix::{axpy, min_rows_for, par_row_chunks, Matrix};

/// A sparse `rows × cols` matrix stored as `(row, col, value)` triplets.
///
/// Duplicate coordinates accumulate, which is exactly what parallel
/// multigraph edges need: an in-neighbour connected through two nets
/// contributes its feature twice to the Eq. 1 sum.
///
/// # Example
///
/// ```
/// use ancstr_nn::{Matrix, SparseMatrix};
///
/// let s = SparseMatrix::from_triplets(2, 3, vec![(0, 1, 2.0), (1, 2, 1.0)]);
/// let x = Matrix::from_rows(&[&[1.0], &[10.0], &[100.0]]);
/// let y = s.matmul_dense(&x);
/// assert_eq!(y, Matrix::from_rows(&[&[20.0], &[100.0]]));
/// ```
#[derive(Debug, Clone)]
pub struct SparseMatrix {
    rows: usize,
    cols: usize,
    triplets: Vec<(usize, usize, f64)>,
    /// Cached CSR view grouped by triplet row (the forward product).
    by_row: OnceLock<CsrView>,
    /// Cached CSR view grouped by triplet column (the transpose
    /// product of the backward pass).
    by_col: OnceLock<CsrView>,
}

/// A stable grouping of triplet indices by output row: triplet indices
/// `order[starts[r]..starts[r + 1]]` are the row-`r` contributions, in
/// original storage order.
#[derive(Debug, Clone)]
struct CsrView {
    starts: Vec<usize>,
    order: Vec<u32>,
}

impl CsrView {
    fn build(
        out_rows: usize,
        triplets: &[(usize, usize, f64)],
        out_row: impl Fn(&(usize, usize, f64)) -> usize,
    ) -> CsrView {
        let mut starts = vec![0usize; out_rows + 1];
        for t in triplets {
            starts[out_row(t) + 1] += 1;
        }
        for r in 0..out_rows {
            starts[r + 1] += starts[r];
        }
        let mut cursor = starts.clone();
        let mut order = vec![0u32; triplets.len()];
        for (idx, t) in triplets.iter().enumerate() {
            let r = out_row(t);
            order[cursor[r]] = idx as u32;
            cursor[r] += 1;
        }
        CsrView { starts, order }
    }
}

/// Equality is structural (shape + triplets); the lazily built CSR
/// caches are derived data and deliberately excluded.
impl PartialEq for SparseMatrix {
    fn eq(&self, other: &SparseMatrix) -> bool {
        self.rows == other.rows && self.cols == other.cols && self.triplets == other.triplets
    }
}

impl SparseMatrix {
    /// Build from triplets.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of range.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: Vec<(usize, usize, f64)>,
    ) -> SparseMatrix {
        for &(r, c, _) in &triplets {
            assert!(r < rows && c < cols, "triplet ({r},{c}) out of range");
        }
        SparseMatrix { rows, cols, triplets, by_row: OnceLock::new(), by_col: OnceLock::new() }
    }

    /// An all-zero sparse matrix.
    pub fn zeros(rows: usize, cols: usize) -> SparseMatrix {
        SparseMatrix {
            rows,
            cols,
            triplets: Vec::new(),
            by_row: OnceLock::new(),
            by_col: OnceLock::new(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored triplets (duplicates counted).
    pub fn nnz(&self) -> usize {
        self.triplets.len()
    }

    /// Dense product `self · dense`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != dense.rows()`.
    pub fn matmul_dense(&self, dense: &Matrix) -> Matrix {
        assert_eq!(self.cols, dense.rows(), "spmm shape mismatch");
        let view = self
            .by_row
            .get_or_init(|| CsrView::build(self.rows, &self.triplets, |&(r, _, _)| r));
        self.grouped_product(self.rows, dense, view, |&(_, c, _)| c)
    }

    /// Dense product with the transpose: `selfᵀ · dense` (the backward
    /// pass of [`SparseMatrix::matmul_dense`]).
    ///
    /// # Panics
    ///
    /// Panics if `self.rows() != dense.rows()`.
    pub fn transpose_matmul_dense(&self, dense: &Matrix) -> Matrix {
        assert_eq!(self.rows, dense.rows(), "spmmᵀ shape mismatch");
        let view = self
            .by_col
            .get_or_init(|| CsrView::build(self.cols, &self.triplets, |&(_, c, _)| c));
        self.grouped_product(self.cols, dense, view, |&(r, _, _)| r)
    }

    /// Shared kernel for both dense products over a cached CSR view:
    /// `src_row(t)` names the dense row a triplet reads.
    ///
    /// Walking output rows through the stable CSR grouping accumulates
    /// each output element in original triplet order — bit-identical to
    /// the historical "walk the triplets in storage order" loop (rows
    /// are independent, so only the interleaving *across* rows differs;
    /// pinned by the tests below).
    fn grouped_product(
        &self,
        out_rows: usize,
        dense: &Matrix,
        view: &CsrView,
        src_row: impl Fn(&(usize, usize, f64)) -> usize + Sync,
    ) -> Matrix {
        let cols = dense.cols();
        let mut out = Matrix::zeros(out_rows, cols);
        if self.triplets.is_empty() {
            return out;
        }
        let _prof = ancstr_par::profile::time(
            ancstr_par::profile::Kernel::Spmm,
            (self.triplets.len() * cols) as u64,
        );
        let avg_work = (self.triplets.len() * cols.max(1)) / out_rows.max(1);
        let min_rows = min_rows_for(avg_work);
        let walk = |rows: std::ops::Range<usize>, chunk: &mut [f64]| {
            for (li, r) in rows.enumerate() {
                let dst = &mut chunk[li * cols..(li + 1) * cols];
                for &idx in &view.order[view.starts[r]..view.starts[r + 1]] {
                    let t = &self.triplets[idx as usize];
                    axpy(dst, t.2, dense.row(src_row(t)));
                }
            }
        };
        if !ancstr_par::would_parallelize(out_rows, min_rows) {
            walk(0..out_rows, out.as_mut_slice());
            return out;
        }
        par_row_chunks(out_rows, cols, out.as_mut_slice(), min_rows, walk);
        out
    }

    /// Assemble independent operators into one block-diagonal operator:
    /// part `k`'s triplets are shifted by the cumulative row/column
    /// offsets of the parts before it.
    ///
    /// Because the parts share no rows or columns, a dense product with
    /// vertically stacked per-part operands touches each part's rows
    /// using only that part's triplets — and since triplets concatenate
    /// part-by-part in their original storage order, every output row
    /// accumulates in exactly the order the solo product used. Batched
    /// spmm is therefore bit-identical to per-part spmm (pinned by the
    /// test below).
    pub fn block_diagonal(parts: &[&SparseMatrix]) -> SparseMatrix {
        let rows = parts.iter().map(|p| p.rows).sum();
        let cols = parts.iter().map(|p| p.cols).sum();
        let nnz = parts.iter().map(|p| p.triplets.len()).sum();
        let mut triplets = Vec::with_capacity(nnz);
        let (mut row_off, mut col_off) = (0, 0);
        for p in parts {
            triplets.extend(p.triplets.iter().map(|&(r, c, v)| (r + row_off, c + col_off, v)));
            row_off += p.rows;
            col_off += p.cols;
        }
        SparseMatrix { rows, cols, triplets, by_row: OnceLock::new(), by_col: OnceLock::new() }
    }

    /// The stored triplets.
    pub fn triplets(&self) -> &[(usize, usize, f64)] {
        &self.triplets
    }

    /// Materialize as a dense matrix (tests and eigen-analysis).
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for &(r, c, v) in &self.triplets {
            m[(r, c)] += v;
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicates_accumulate() {
        let s = SparseMatrix::from_triplets(2, 2, vec![(0, 0, 1.0), (0, 0, 1.0)]);
        assert_eq!(s.to_dense()[(0, 0)], 2.0);
        let x = Matrix::identity(2);
        assert_eq!(s.matmul_dense(&x)[(0, 0)], 2.0);
    }

    #[test]
    fn spmm_matches_dense() {
        let s = SparseMatrix::from_triplets(
            3,
            2,
            vec![(0, 0, 1.0), (1, 1, 2.0), (2, 0, -1.0), (2, 1, 0.5)],
        );
        let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(s.matmul_dense(&x), s.to_dense().matmul(&x));
    }

    #[test]
    fn transpose_spmm_matches_dense() {
        let s = SparseMatrix::from_triplets(3, 2, vec![(0, 1, 1.5), (2, 0, 2.0)]);
        let y = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        assert_eq!(
            s.transpose_matmul_dense(&y),
            s.to_dense().transpose().matmul(&y)
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn triplets_are_validated() {
        let _ = SparseMatrix::from_triplets(2, 2, vec![(2, 0, 1.0)]);
    }

    #[test]
    fn zeros_products_are_zero() {
        let s = SparseMatrix::zeros(2, 3);
        assert_eq!(s.nnz(), 0);
        let x = Matrix::filled(3, 4, 7.0);
        assert_eq!(s.matmul_dense(&x), Matrix::zeros(2, 4));
    }

    #[test]
    fn block_diagonal_spmm_is_bit_identical_to_per_part_spmm() {
        let mut seed = 9u64;
        let mut rnd = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((seed >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        // Unsorted rows and duplicates inside each part, plus an empty
        // part, so the order-preservation claim is actually exercised.
        let a = SparseMatrix::from_triplets(
            4,
            3,
            (0..40).map(|i| ((i * 7 + 2) % 4, (i * 5 + 1) % 3, rnd())).collect(),
        );
        let b = SparseMatrix::zeros(2, 2);
        let c = SparseMatrix::from_triplets(
            97,
            11,
            (0..3000).map(|i| ((i * 31 + 5) % 97, (i * 13 + 2) % 11, rnd())).collect(),
        );
        let big = SparseMatrix::block_diagonal(&[&a, &b, &c]);
        assert_eq!((big.rows(), big.cols()), (103, 16));
        assert_eq!(big.nnz(), a.nnz() + c.nnz());

        let xa = Matrix::from_fn(3, 6, |_, _| rnd());
        let xb = Matrix::from_fn(2, 6, |_, _| rnd());
        let xc = Matrix::from_fn(11, 6, |_, _| rnd());
        let stacked = Matrix::vstack(&[&xa, &xb, &xc]);
        let batched = big.matmul_dense(&stacked).split_rows(&[4, 2, 97]);
        for (got, (part, x)) in
            batched.iter().zip([(&a, &xa), (&b, &xb), (&c, &xc)])
        {
            let solo = part.matmul_dense(x);
            for (g, s) in got.as_slice().iter().zip(solo.as_slice()) {
                assert_eq!(g.to_bits(), s.to_bits());
            }
        }
    }

    /// The historical kernel: walk the triplets in storage order.
    fn spmm_reference(s: &SparseMatrix, dense: &Matrix, transpose: bool) -> Matrix {
        let out_rows = if transpose { s.cols() } else { s.rows() };
        let mut out = Matrix::zeros(out_rows, dense.cols());
        for &(r, c, v) in s.triplets() {
            let (dst, src) = if transpose { (c, r) } else { (r, c) };
            for (d, &sv) in out.row_mut(dst).iter_mut().zip(dense.row(src)) {
                *d += v * sv;
            }
        }
        out
    }

    #[test]
    fn csr_cache_is_warm_after_first_product_and_invisible() {
        let s = SparseMatrix::from_triplets(
            5,
            4,
            vec![(3, 1, 2.0), (0, 0, 1.0), (3, 1, -0.5), (2, 3, 4.0)],
        );
        let pristine = s.clone();
        let x = Matrix::from_fn(4, 3, |r, c| (r * 3 + c) as f64 * 0.25 - 1.0);
        let cold = s.matmul_dense(&x);
        // Second call hits the cached by-row view; bits must not move.
        let warm = s.matmul_dense(&x);
        for (a, b) in cold.as_slice().iter().zip(warm.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        let y = Matrix::from_fn(5, 3, |r, c| (r + c) as f64 * 0.5);
        let t_cold = s.transpose_matmul_dense(&y);
        let t_warm = s.transpose_matmul_dense(&y);
        assert_eq!(t_cold, t_warm);
        // The cache is derived data: a matrix with warm caches still
        // equals its pristine clone, and cloning carries correctness.
        assert_eq!(s, pristine);
        assert_eq!(pristine.matmul_dense(&x), cold);
        assert_eq!(s.clone().matmul_dense(&x), cold);
    }

    #[test]
    fn grouped_spmm_is_bit_identical_to_triplet_order_walk() {
        // Unsorted rows, duplicates, and an empty row — the stable
        // grouping must preserve each element's accumulation order.
        let mut seed = 5u64;
        let mut rnd = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((seed >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        let triplets: Vec<(usize, usize, f64)> = (0..4000)
            .map(|i| ((i * 31 + 7) % 97, (i * 17 + 3) % 23, rnd()))
            .collect();
        let s = SparseMatrix::from_triplets(100, 23, triplets);
        let x = Matrix::from_fn(23, 18, |_, _| rnd());
        let before = ancstr_par::threads();
        for t in [1usize, 4, 8] {
            ancstr_par::set_threads(t);
            let fwd = s.matmul_dense(&x);
            let reference = spmm_reference(&s, &x, false);
            assert_eq!(fwd.shape(), reference.shape());
            for (a, b) in fwd.as_slice().iter().zip(reference.as_slice()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            let y = Matrix::from_fn(100, 18, |_, _| rnd());
            let bwd = s.transpose_matmul_dense(&y);
            let reference_t = spmm_reference(&s, &y, true);
            for (a, b) in bwd.as_slice().iter().zip(reference_t.as_slice()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        ancstr_par::set_threads(before);
    }
}
