//! Reverse-mode automatic differentiation over dense matrices.
//!
//! A [`Tape`] records an eager forward computation as a DAG of matrix
//! ops; [`Tape::backward`] then sweeps it once in reverse, accumulating
//! gradients. The op set is exactly what the AncstrGNN model needs:
//! (sparse-)matmul, broadcast bias, element-wise arithmetic, `σ`/`tanh`,
//! numerically stable `log σ`, row gathering, row-wise dots, and a final
//! sum — enough for Eq. 1's GRU aggregation and Eq. 2's negative-sampling
//! loss.
//!
//! # Example
//!
//! ```
//! use ancstr_nn::{Matrix, Tape};
//!
//! let mut t = Tape::new();
//! let x = t.leaf(Matrix::from_rows(&[&[2.0]]));
//! let y = t.mul_elem(x, x); // y = x²
//! let s = t.sum(y);
//! let grads = t.backward(s);
//! // d(x²)/dx = 2x = 4
//! assert_eq!(grads.grad(x).unwrap()[(0, 0)], 4.0);
//! ```

use std::sync::Arc;

use crate::matrix::Matrix;
use crate::sparse::SparseMatrix;

/// Identifier of a node on a [`Tape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(usize);

/// Identifier of a constant sparse operand registered on a [`Tape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SparseId(usize);

#[derive(Debug, Clone)]
enum Op {
    Leaf,
    MatMul(NodeId, NodeId),
    SpMm(SparseId, NodeId),
    Add(NodeId, NodeId),
    AddRow(NodeId, NodeId),
    Sub(NodeId, NodeId),
    MulElem(NodeId, NodeId),
    Scale(NodeId, f64),
    Sigmoid(NodeId),
    Tanh(NodeId),
    LogSigmoid(NodeId),
    Neg(NodeId),
    GatherRows(NodeId, Vec<usize>),
    RowDot(NodeId, NodeId),
    Sum(NodeId),
}

#[derive(Debug, Clone)]
struct Node {
    value: Matrix,
    op: Op,
}

/// Gradients produced by [`Tape::backward`].
#[derive(Debug, Clone)]
pub struct Gradients {
    grads: Vec<Option<Matrix>>,
}

impl Gradients {
    /// The gradient of the loss with respect to node `id`, or `None`
    /// when the node does not influence the loss.
    pub fn grad(&self, id: NodeId) -> Option<&Matrix> {
        self.grads.get(id.0).and_then(Option::as_ref)
    }

    /// Take ownership of a gradient, leaving `None` behind.
    pub fn take(&mut self, id: NodeId) -> Option<Matrix> {
        self.grads.get_mut(id.0).and_then(Option::take)
    }
}

/// A forward-computation tape supporting one reverse sweep.
#[derive(Debug, Default)]
pub struct Tape {
    nodes: Vec<Node>,
    sparses: Vec<Arc<SparseMatrix>>,
}

/// Numerically stable `σ(x)`.
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Numerically stable `log σ(x)`.
pub fn log_sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        -(-x).exp().ln_1p()
    } else {
        x - x.exp().ln_1p()
    }
}

impl Tape {
    /// A fresh, empty tape.
    pub fn new() -> Tape {
        Tape::default()
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The forward value of a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this tape.
    pub fn value(&self, id: NodeId) -> &Matrix {
        &self.nodes[id.0].value
    }

    /// Register an input (leaf) node; gradients flow into leaves.
    pub fn leaf(&mut self, value: Matrix) -> NodeId {
        self.push(value, Op::Leaf)
    }

    /// Register a constant sparse operand for [`Tape::spmm`].
    ///
    /// Accepts an owned [`SparseMatrix`] or an `Arc<SparseMatrix>`.
    /// Callers that record many tapes over the same operator (the
    /// trainer re-records every epoch) should pass a shared `Arc` so
    /// the operator's cached CSR views are built once per graph and
    /// reused across every GRU step of every epoch.
    pub fn sparse(&mut self, s: impl Into<Arc<SparseMatrix>>) -> SparseId {
        self.sparses.push(s.into());
        SparseId(self.sparses.len() - 1)
    }

    /// `a · b`.
    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).matmul(self.value(b));
        self.push(v, Op::MatMul(a, b))
    }

    /// `S · b` with constant sparse `S` (message aggregation).
    pub fn spmm(&mut self, s: SparseId, b: NodeId) -> NodeId {
        let v = self.sparses[s.0].matmul_dense(self.value(b));
        self.push(v, Op::SpMm(s, b))
    }

    /// `a + b` (same shape).
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).add(self.value(b));
        self.push(v, Op::Add(a, b))
    }

    /// `a + 1·rowᵀ`: broadcast a `1 × d` bias over the rows of `a`.
    ///
    /// # Panics
    ///
    /// Panics unless `row` is `1 × a.cols()`.
    pub fn add_row(&mut self, a: NodeId, row: NodeId) -> NodeId {
        let (ar, ac) = self.value(a).shape();
        assert_eq!(self.value(row).shape(), (1, ac), "bias must be 1 × cols");
        let bias = self.value(row).row(0).to_vec();
        let base = self.value(a);
        let v = Matrix::from_fn(ar, ac, |r, c| base[(r, c)] + bias[c]);
        self.push(v, Op::AddRow(a, row))
    }

    /// `a − b`.
    pub fn sub(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).sub(self.value(b));
        self.push(v, Op::Sub(a, b))
    }

    /// Hadamard product `a ⊙ b`.
    pub fn mul_elem(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).mul_elem(self.value(b));
        self.push(v, Op::MulElem(a, b))
    }

    /// `k · a`.
    pub fn scale(&mut self, a: NodeId, k: f64) -> NodeId {
        let v = self.value(a).scale(k);
        self.push(v, Op::Scale(a, k))
    }

    /// Element-wise logistic sigmoid.
    pub fn sigmoid(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).map_par(sigmoid);
        self.push(v, Op::Sigmoid(a))
    }

    /// Element-wise `tanh`.
    pub fn tanh(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).map_par(f64::tanh);
        self.push(v, Op::Tanh(a))
    }

    /// Element-wise `log σ` (stable; the building block of Eq. 2).
    pub fn log_sigmoid(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).map_par(log_sigmoid);
        self.push(v, Op::LogSigmoid(a))
    }

    /// `−a`.
    pub fn neg(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).scale(-1.0);
        self.push(v, Op::Neg(a))
    }

    /// Select rows of `a` by index (repeats allowed).
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn gather_rows(&mut self, a: NodeId, indices: Vec<usize>) -> NodeId {
        let src = self.value(a);
        let cols = src.cols();
        let mut v = Matrix::zeros(indices.len(), cols);
        for (r, &i) in indices.iter().enumerate() {
            v.row_mut(r).copy_from_slice(src.row(i));
        }
        self.push(v, Op::GatherRows(a, indices))
    }

    /// Row-wise dot products: `(n × d, n × d) → n × 1`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn row_dot(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (av, bv) = (self.value(a), self.value(b));
        assert_eq!(av.shape(), bv.shape(), "row_dot shape mismatch");
        let mut v = Matrix::zeros(av.rows(), 1);
        for r in 0..av.rows() {
            v[(r, 0)] = av
                .row(r)
                .iter()
                .zip(bv.row(r))
                .map(|(x, y)| x * y)
                .sum();
        }
        self.push(v, Op::RowDot(a, b))
    }

    /// Sum of all elements: `→ 1 × 1`.
    pub fn sum(&mut self, a: NodeId) -> NodeId {
        let v = Matrix::from_rows(&[&[self.value(a).sum()]]);
        self.push(v, Op::Sum(a))
    }

    /// Reverse sweep from `loss` (normally a `1 × 1` node); returns the
    /// gradient of `loss.sum()` with respect to every node.
    pub fn backward(&self, loss: NodeId) -> Gradients {
        let mut grads: Vec<Option<Matrix>> = vec![None; self.nodes.len()];
        let shape = self.value(loss).shape();
        grads[loss.0] = Some(Matrix::filled(shape.0, shape.1, 1.0));

        for i in (0..=loss.0).rev() {
            let Some(g) = grads[i].take() else { continue };
            self.accumulate(i, &g, &mut grads);
            grads[i] = Some(g);
        }
        Gradients { grads }
    }

    fn push(&mut self, value: Matrix, op: Op) -> NodeId {
        self.nodes.push(Node { value, op });
        NodeId(self.nodes.len() - 1)
    }

    fn accumulate(&self, i: usize, g: &Matrix, grads: &mut [Option<Matrix>]) {
        let add_to = |grads: &mut [Option<Matrix>], id: NodeId, delta: Matrix| {
            match &mut grads[id.0] {
                Some(existing) => existing.add_assign(&delta),
                slot @ None => *slot = Some(delta),
            }
        };
        match &self.nodes[i].op {
            Op::Leaf => {}
            Op::MatMul(a, b) => {
                let (av, bv) = (self.value(*a), self.value(*b));
                // dA = dC·Bᵀ via the transposed-RHS fast path (bit-identical
                // to materializing Bᵀ, see `Matrix::matmul_transposed`).
                add_to(grads, *a, g.matmul_transposed(bv));
                add_to(grads, *b, av.transpose().matmul(g));
            }
            Op::SpMm(s, b) => {
                add_to(grads, *b, self.sparses[s.0].transpose_matmul_dense(g));
            }
            Op::Add(a, b) => {
                add_to(grads, *a, g.clone());
                add_to(grads, *b, g.clone());
            }
            Op::AddRow(a, row) => {
                add_to(grads, *a, g.clone());
                add_to(grads, *row, g.column_sums());
            }
            Op::Sub(a, b) => {
                add_to(grads, *a, g.clone());
                add_to(grads, *b, g.scale(-1.0));
            }
            Op::MulElem(a, b) => {
                add_to(grads, *a, g.mul_elem(self.value(*b)));
                add_to(grads, *b, g.mul_elem(self.value(*a)));
            }
            Op::Scale(a, k) => add_to(grads, *a, g.scale(*k)),
            Op::Sigmoid(a) => {
                let s = &self.nodes[i].value;
                let ds = s.map_par(|x| x * (1.0 - x));
                add_to(grads, *a, g.mul_elem(&ds));
            }
            Op::Tanh(a) => {
                let t = &self.nodes[i].value;
                let dt = t.map_par(|x| 1.0 - x * x);
                add_to(grads, *a, g.mul_elem(&dt));
            }
            Op::LogSigmoid(a) => {
                // d/dx log σ(x) = 1 − σ(x) = σ(−x)
                let x = self.value(*a);
                let d = x.map_par(|v| sigmoid(-v));
                add_to(grads, *a, g.mul_elem(&d));
            }
            Op::Neg(a) => add_to(grads, *a, g.scale(-1.0)),
            Op::GatherRows(a, indices) => {
                let src = self.value(*a);
                let mut d = Matrix::zeros(src.rows(), src.cols());
                for (r, &idx) in indices.iter().enumerate() {
                    let drow = d.row_mut(idx);
                    for (x, &y) in drow.iter_mut().zip(g.row(r)) {
                        *x += y;
                    }
                }
                add_to(grads, *a, d);
            }
            Op::RowDot(a, b) => {
                let (av, bv) = (self.value(*a), self.value(*b));
                let mut da = Matrix::zeros(av.rows(), av.cols());
                let mut db = Matrix::zeros(bv.rows(), bv.cols());
                for r in 0..av.rows() {
                    let gr = g[(r, 0)];
                    for c in 0..av.cols() {
                        da[(r, c)] = gr * bv[(r, c)];
                        db[(r, c)] = gr * av[(r, c)];
                    }
                }
                add_to(grads, *a, da);
                add_to(grads, *b, db);
            }
            Op::Sum(a) => {
                let shape = self.value(*a).shape();
                add_to(grads, *a, Matrix::filled(shape.0, shape.1, g[(0, 0)]));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_sigmoid_extremes() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-15);
        assert!(sigmoid(800.0) <= 1.0 && sigmoid(800.0) > 0.999);
        assert!(sigmoid(-800.0) >= 0.0 && sigmoid(-800.0) < 1e-300);
        assert!(log_sigmoid(800.0).abs() < 1e-12);
        assert!((log_sigmoid(-800.0) + 800.0).abs() < 1e-9);
        assert!(log_sigmoid(0.0) < 0.0);
    }

    #[test]
    fn simple_chain_gradient() {
        // f = sum(sigmoid(2x)); df/dx = 2 σ'(2x)
        let mut t = Tape::new();
        let x = t.leaf(Matrix::from_rows(&[&[0.3, -0.7]]));
        let sx = t.scale(x, 2.0);
        let sig = t.sigmoid(sx);
        let loss = t.sum(sig);
        let grads = t.backward(loss);
        let gx = grads.grad(x).unwrap();
        for (i, &v) in [0.3, -0.7].iter().enumerate() {
            let s = sigmoid(2.0 * v);
            let expect = 2.0 * s * (1.0 - s);
            assert!((gx[(0, i)] - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn matmul_gradients() {
        // f = sum(A·B)
        let mut t = Tape::new();
        let a = t.leaf(Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let b = t.leaf(Matrix::from_rows(&[&[5.0], &[6.0]]));
        let c = t.matmul(a, b);
        let loss = t.sum(c);
        let grads = t.backward(loss);
        // dA = 1·Bᵀ rows, dB = Aᵀ·1
        assert_eq!(
            grads.grad(a).unwrap(),
            &Matrix::from_rows(&[&[5.0, 6.0], &[5.0, 6.0]])
        );
        assert_eq!(grads.grad(b).unwrap(), &Matrix::from_rows(&[&[4.0], &[6.0]]));
    }

    #[test]
    fn gather_rows_accumulates_repeats() {
        let mut t = Tape::new();
        let a = t.leaf(Matrix::from_rows(&[&[1.0], &[2.0]]));
        let gathered = t.gather_rows(a, vec![0, 0, 1]);
        assert_eq!(t.value(gathered).rows(), 3);
        let loss = t.sum(gathered);
        let grads = t.backward(loss);
        assert_eq!(grads.grad(a).unwrap(), &Matrix::from_rows(&[&[2.0], &[1.0]]));
    }

    #[test]
    fn row_dot_gradients() {
        let mut t = Tape::new();
        let a = t.leaf(Matrix::from_rows(&[&[1.0, 2.0]]));
        let b = t.leaf(Matrix::from_rows(&[&[3.0, 4.0]]));
        let d = t.row_dot(a, b);
        assert_eq!(t.value(d)[(0, 0)], 11.0);
        let loss = t.sum(d);
        let grads = t.backward(loss);
        assert_eq!(grads.grad(a).unwrap(), &Matrix::from_rows(&[&[3.0, 4.0]]));
        assert_eq!(grads.grad(b).unwrap(), &Matrix::from_rows(&[&[1.0, 2.0]]));
    }

    #[test]
    fn spmm_gradient_matches_dense() {
        let s = SparseMatrix::from_triplets(2, 3, vec![(0, 1, 2.0), (1, 2, -1.0), (0, 0, 0.5)]);
        let xval = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);

        let mut t = Tape::new();
        let sid = t.sparse(s.clone());
        let x = t.leaf(xval.clone());
        let y = t.spmm(sid, x);
        let loss = t.sum(y);
        let grads = t.backward(loss);

        // Dense reference: d/dX sum(S·X) = Sᵀ·1
        let ones = Matrix::filled(2, 2, 1.0);
        let expect = s.to_dense().transpose().matmul(&ones);
        assert_eq!(grads.grad(x).unwrap(), &expect);
    }

    #[test]
    fn add_row_broadcast_gradient() {
        let mut t = Tape::new();
        let a = t.leaf(Matrix::zeros(3, 2));
        let b = t.leaf(Matrix::from_rows(&[&[1.0, 2.0]]));
        let y = t.add_row(a, b);
        assert_eq!(t.value(y)[(2, 1)], 2.0);
        let loss = t.sum(y);
        let grads = t.backward(loss);
        assert_eq!(grads.grad(b).unwrap(), &Matrix::from_rows(&[&[3.0, 3.0]]));
        assert_eq!(grads.grad(a).unwrap(), &Matrix::filled(3, 2, 1.0));
    }

    #[test]
    fn unused_nodes_get_no_gradient() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::from_rows(&[&[1.0]]));
        let orphan = t.leaf(Matrix::from_rows(&[&[9.0]]));
        let loss = t.sum(x);
        let grads = t.backward(loss);
        assert!(grads.grad(orphan).is_none());
        assert!(grads.grad(x).is_some());
    }

    /// Central-difference gradient check over a composite expression that
    /// exercises every op: f(P) = Σ logσ(rowdot(tanh(S·(X·P) + b), g(X)))
    #[test]
    fn finite_difference_gradient_check() {
        let xval = Matrix::from_rows(&[
            &[0.2, -0.4, 0.1],
            &[0.5, 0.3, -0.2],
            &[-0.1, 0.8, 0.6],
        ]);
        let s = SparseMatrix::from_triplets(
            3,
            3,
            vec![(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0), (0, 2, 0.5)],
        );

        let f = |p: &Matrix, b: &Matrix| -> (f64, Matrix, Matrix) {
            let mut t = Tape::new();
            let sid = t.sparse(s.clone());
            let x = t.leaf(xval.clone());
            let pn = t.leaf(p.clone());
            let bn = t.leaf(b.clone());
            let xp = t.matmul(x, pn);
            let agg = t.spmm(sid, xp);
            let biased = t.add_row(agg, bn);
            let th = t.tanh(biased);
            let gathered = t.gather_rows(x, vec![1, 2, 0]);
            let gp = t.matmul(gathered, pn);
            let dots = t.row_dot(th, gp);
            let ls = t.log_sigmoid(dots);
            let neg = t.neg(ls);
            let sig = t.sigmoid(neg);
            let sub = t.sub(sig, ls);
            let prod = t.mul_elem(sub, dots);
            let scaled = t.scale(prod, 0.7);
            let loss = t.sum(scaled);
            let grads = t.backward(loss);
            (
                t.value(loss)[(0, 0)],
                grads.grad(pn).unwrap().clone(),
                grads.grad(bn).unwrap().clone(),
            )
        };

        let p0 = Matrix::from_rows(&[&[0.3, -0.2, 0.5], &[0.1, 0.4, -0.6], &[-0.3, 0.2, 0.1]]);
        let b0 = Matrix::from_rows(&[&[0.05, -0.1, 0.2]]);
        let (_, gp, gb) = f(&p0, &b0);

        let eps = 1e-6;
        for r in 0..3 {
            for c in 0..3 {
                let mut pp = p0.clone();
                pp[(r, c)] += eps;
                let mut pm = p0.clone();
                pm[(r, c)] -= eps;
                let (fp, _, _) = f(&pp, &b0);
                let (fm, _, _) = f(&pm, &b0);
                let numeric = (fp - fm) / (2.0 * eps);
                assert!(
                    (numeric - gp[(r, c)]).abs() < 1e-6 * (1.0 + numeric.abs()),
                    "dP[{r},{c}]: numeric {numeric} vs autograd {}",
                    gp[(r, c)]
                );
            }
        }
        for c in 0..3 {
            let mut bp = b0.clone();
            bp[(0, c)] += eps;
            let mut bm = b0.clone();
            bm[(0, c)] -= eps;
            let (fp, _, _) = f(&p0, &bp);
            let (fm, _, _) = f(&p0, &bm);
            let numeric = (fp - fm) / (2.0 * eps);
            assert!(
                (numeric - gb[(0, c)]).abs() < 1e-6 * (1.0 + numeric.abs()),
                "db[{c}]: numeric {numeric} vs autograd {}",
                gb[(0, c)]
            );
        }
    }
}
