//! Property tests for graph construction and PageRank invariants.

use ancstr_graph::{pagerank, BuildOptions, HetMultigraph, PageRankOptions, SimpleDigraph};
use ancstr_netlist::flat::FlatCircuit;
use ancstr_netlist::{Device, DeviceType, Geometry, Netlist, Subckt};
use proptest::prelude::*;

/// Strategy: a random flat circuit of MOS devices over a small net pool.
fn arb_flat() -> impl Strategy<Value = FlatCircuit> {
    let dev = (0usize..4, 0usize..4, 0usize..4).prop_map(|(a, b, c)| (a, b, c));
    prop::collection::vec(dev, 1..20).prop_map(|devs| {
        let nets = ["n0", "n1", "n2", "n3"];
        let mut sub = Subckt::new("cell", ["n0", "n1"]);
        for (i, (a, b, c)) in devs.into_iter().enumerate() {
            let d = Device::new(
                format!("M{i}"),
                DeviceType::Nch,
                vec![nets[a].into(), nets[b].into(), nets[c].into()],
                Geometry::new(0.1, 1.0),
            )
            .expect("3 pins");
            sub.push_device(d).expect("unique names");
        }
        let mut nl = Netlist::new("cell");
        nl.add_subckt(sub).expect("fresh library");
        FlatCircuit::elaborate(&nl).expect("valid by construction")
    })
}

proptest! {
    /// Algorithm-1 invariants: vertex count equals device count, no self
    /// loops, every edge has a reciprocal partner, and in/out degree sums
    /// both equal |E|.
    #[test]
    fn multigraph_invariants(flat in arb_flat()) {
        let g = HetMultigraph::from_circuit(&flat, &BuildOptions::default());
        prop_assert_eq!(g.vertex_count(), flat.devices().len());
        let mut in_total = 0usize;
        let mut out_total = 0usize;
        for v in g.vertices() {
            in_total += g.in_degree(v);
            out_total += g.out_degree(v);
        }
        prop_assert_eq!(in_total, g.edge_count());
        prop_assert_eq!(out_total, g.edge_count());
        for e in g.edges() {
            prop_assert_ne!(e.src, e.dst);
            prop_assert!(g.edges().iter().any(|r| r.src == e.dst && r.dst == e.src));
        }
    }

    /// Simplification never increases edges and caps pair multiplicity at
    /// two (one per direction).
    #[test]
    fn simplify_invariants(flat in arb_flat()) {
        let g = HetMultigraph::from_circuit(&flat, &BuildOptions::default());
        let s = SimpleDigraph::from_multigraph(&g);
        prop_assert!(s.edge_count() <= g.edge_count());
        for u in 0..s.vertex_count() {
            for v in 0..s.vertex_count() {
                if u != v {
                    let m = usize::from(s.has_edge(u, v)) + usize::from(s.has_edge(v, u));
                    prop_assert!(m <= 2);
                }
            }
            // No duplicate out-neighbours.
            let mut outs = s.out_neighbors(u).to_vec();
            outs.sort_unstable();
            outs.dedup();
            prop_assert_eq!(outs.len(), s.out_degree(u));
        }
    }

    /// PageRank is a probability distribution with strictly positive mass.
    #[test]
    fn pagerank_is_distribution(flat in arb_flat()) {
        let g = HetMultigraph::from_circuit(&flat, &BuildOptions::default());
        let s = SimpleDigraph::from_multigraph(&g);
        let pr = pagerank(&s, &PageRankOptions::default());
        let sum: f64 = pr.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-6, "sum = {}", sum);
        for &p in &pr {
            prop_assert!(p > 0.0);
        }
    }

    /// Net-degree pruning is monotone: a tighter cutoff never adds edges.
    #[test]
    fn pruning_is_monotone(flat in arb_flat(), k in 1usize..8) {
        let loose = HetMultigraph::from_circuit(
            &flat,
            &BuildOptions { max_net_degree: Some(k + 1) },
        );
        let tight = HetMultigraph::from_circuit(
            &flat,
            &BuildOptions { max_net_degree: Some(k) },
        );
        prop_assert!(tight.edge_count() <= loose.edge_count());
    }
}
