//! Algorithm 2 (lines 1–4): the simplified directed graph `G'_t`.
//!
//! Edges lose their types and parallel edges collapse, so at most two
//! directed edges (one per direction) remain between any two vertices.

use std::collections::HashSet;

use crate::multigraph::{HetMultigraph, VertexId};

/// An untyped simple digraph over the same vertex set as a
/// [`HetMultigraph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimpleDigraph {
    n: usize,
    out: Vec<Vec<usize>>,
    inn: Vec<Vec<usize>>,
}

impl SimpleDigraph {
    /// Collapse a multigraph into a simple digraph (Algorithm 2 lines
    /// 1–4): drop edge types, reject duplicates.
    pub fn from_multigraph(g: &HetMultigraph) -> SimpleDigraph {
        let n = g.vertex_count();
        let mut out = vec![Vec::new(); n];
        let mut inn = vec![Vec::new(); n];
        let mut seen: HashSet<(usize, usize)> = HashSet::new();
        for e in g.edges() {
            let key = (e.src.0, e.dst.0);
            if seen.insert(key) {
                out[e.src.0].push(e.dst.0);
                inn[e.dst.0].push(e.src.0);
            }
        }
        SimpleDigraph { n, out, inn }
    }

    /// Build directly from an edge list (for tests and baselines).
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> SimpleDigraph {
        let mut out = vec![Vec::new(); n];
        let mut inn = vec![Vec::new(); n];
        let mut seen: HashSet<(usize, usize)> = HashSet::new();
        for &(u, v) in edges {
            assert!(u < n && v < n, "edge endpoint out of range");
            if seen.insert((u, v)) {
                out[u].push(v);
                inn[v].push(u);
            }
        }
        SimpleDigraph { n, out, inn }
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.n
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.out.iter().map(Vec::len).sum()
    }

    /// Out-neighbours of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn out_neighbors(&self, v: usize) -> &[usize] {
        &self.out[v]
    }

    /// In-neighbours of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn in_neighbors(&self, v: usize) -> &[usize] {
        &self.inn[v]
    }

    /// Out-degree of `v`.
    pub fn out_degree(&self, v: usize) -> usize {
        self.out[v].len()
    }

    /// In-degree of `v`.
    pub fn in_degree(&self, v: usize) -> usize {
        self.inn[v].len()
    }

    /// Whether the directed edge `(u, v)` exists.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.out[u].contains(&v)
    }

    /// Vertices as [`VertexId`]s (shared index space with the source
    /// multigraph).
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> {
        (0..self.n).map(VertexId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ancstr_netlist::PortType;

    #[test]
    fn parallel_edges_collapse() {
        let mut g = HetMultigraph::with_vertices([0, 1, 2]);
        g.add_edge(VertexId(0), VertexId(1), PortType::Drain);
        g.add_edge(VertexId(0), VertexId(1), PortType::Gate);
        g.add_edge(VertexId(1), VertexId(0), PortType::Drain);
        g.add_edge(VertexId(1), VertexId(2), PortType::Passive);
        let s = SimpleDigraph::from_multigraph(&g);
        assert_eq!(s.edge_count(), 3); // (0,1), (1,0), (1,2)
        assert!(s.has_edge(0, 1));
        assert!(s.has_edge(1, 0));
        assert!(!s.has_edge(2, 1));
        assert_eq!(s.out_degree(1), 2);
        assert_eq!(s.in_degree(1), 1);
    }

    #[test]
    fn at_most_two_edges_between_any_pair() {
        let mut g = HetMultigraph::with_vertices(0..4);
        for _ in 0..5 {
            g.add_edge(VertexId(0), VertexId(1), PortType::Drain);
            g.add_edge(VertexId(1), VertexId(0), PortType::Source);
        }
        let s = SimpleDigraph::from_multigraph(&g);
        let between: usize = usize::from(s.has_edge(0, 1)) + usize::from(s.has_edge(1, 0));
        assert_eq!(between, 2);
        assert_eq!(s.edge_count(), 2);
    }

    #[test]
    fn from_edges_deduplicates() {
        let s = SimpleDigraph::from_edges(3, &[(0, 1), (0, 1), (1, 2)]);
        assert_eq!(s.edge_count(), 2);
        assert_eq!(s.in_neighbors(1), &[0]);
        assert_eq!(s.out_neighbors(1), &[2]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_edges_validates_range() {
        let _ = SimpleDigraph::from_edges(2, &[(0, 5)]);
    }
}
