//! Algorithm 1: `ConstructHeterogeneousGraph(N)` — clique-based edge
//! construction over the nets of a (sub)circuit.

use std::collections::HashMap;

use ancstr_netlist::flat::{FlatCircuit, HierNodeId, NetId};
use ancstr_netlist::PortType;

use crate::multigraph::HetMultigraph;

/// Options controlling multigraph construction.
///
/// The defaults reproduce the paper's Algorithm 1 exactly. The
/// `max_net_degree` knob exists for the ablation study: cliques on
/// high-fanout nets (supplies, clocks) dominate `|E|` quadratically, and
/// the ablation bench measures what skipping them does to quality and
/// runtime.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BuildOptions {
    /// When `Some(k)`, nets touching more than `k` device pins contribute
    /// no clique edges. `None` (the default) is the faithful Algorithm 1.
    pub max_net_degree: Option<usize>,
}

impl HetMultigraph {
    /// Build the multigraph over *all* devices of the circuit
    /// (Algorithm 1 applied to the whole netlist).
    pub fn from_circuit(flat: &FlatCircuit, options: &BuildOptions) -> HetMultigraph {
        Self::from_device_range(flat, 0..flat.devices().len(), options)
    }

    /// Build the multigraph over the devices beneath one hierarchy node —
    /// the per-subcircuit graph `G_t` used by circuit feature embedding.
    pub fn from_subtree(
        flat: &FlatCircuit,
        node: HierNodeId,
        options: &BuildOptions,
    ) -> HetMultigraph {
        Self::from_device_range(flat, flat.subtree_device_indices(node), options)
    }

    /// Build the multigraph over an explicit range of flat-device
    /// indices. Nets are restricted to the pins of in-scope devices, so
    /// connections leaving the scope are ignored (they belong to the
    /// enclosing hierarchy).
    pub fn from_device_range(
        flat: &FlatCircuit,
        range: std::ops::Range<usize>,
        options: &BuildOptions,
    ) -> HetMultigraph {
        let mut g = HetMultigraph::with_vertices(range.clone());

        // Group in-scope pins by net: net -> [(vertex, port_type)].
        let mut pins_on_net: HashMap<NetId, Vec<(usize, PortType)>> = HashMap::new();
        for di in range {
            let v = g
                .vertex_for_device(di)
                .expect("vertex created for every in-range device")
                .0;
            for (net, port) in flat.devices()[di].typed_pins() {
                pins_on_net.entry(net).or_default().push((v, port));
            }
        }

        // Deterministic net order: by net id.
        let mut nets: Vec<_> = pins_on_net.into_iter().collect();
        nets.sort_by_key(|(net, _)| net.0);

        for (_, pins) in nets {
            if let Some(k) = options.max_net_degree {
                if pins.len() > k {
                    continue;
                }
            }
            // Clique over unordered pin pairs; both directions, each
            // typed by its destination port; no self loops.
            for i in 0..pins.len() {
                for j in (i + 1)..pins.len() {
                    let (u, tu) = pins[i];
                    let (v, tv) = pins[j];
                    if u == v {
                        continue;
                    }
                    g.add_edge(crate::VertexId(u), crate::VertexId(v), tv);
                    g.add_edge(crate::VertexId(v), crate::VertexId(u), tu);
                }
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ancstr_netlist::parse::parse_spice;
    use crate::VertexId;

    /// The circuit of Fig. 5 / Example 1: a two-transistor branch with a
    /// tail device and a load capacitor.
    ///
    /// `m1` and `m2` share a drain net `out`; `C_L` also hangs on `out`.
    fn fig5() -> FlatCircuit {
        let nl = parse_spice(
            "\
.subckt amp in bias out vdd vss
M0 tail bias vss vss nch w=2u l=0.2u
M1 out in tail vss nch w=4u l=0.1u
M2 out out vdd vdd pch w=8u l=0.1u
CL out vss 100f
.ends
",
        )
        .unwrap();
        FlatCircuit::elaborate(&nl).unwrap()
    }

    fn vertex_by_name(flat: &FlatCircuit, g: &HetMultigraph, name: &str) -> VertexId {
        let di = flat
            .devices()
            .iter()
            .position(|d| d.path.ends_with(name))
            .unwrap();
        g.vertex_for_device(di).unwrap()
    }

    #[test]
    fn example1_fig5() {
        let flat = fig5();
        let g = HetMultigraph::from_circuit(&flat, &BuildOptions::default());
        assert_eq!(g.vertex_count(), 4);
        let m1 = vertex_by_name(&flat, &g, "M1");
        let m2 = vertex_by_name(&flat, &g, "M2");
        let cl = vertex_by_name(&flat, &g, "CL");

        // e1 = (m1, m2, p_drain): m1's drain net `out` lands on m2's drain.
        assert!(g
            .edges()
            .iter()
            .any(|e| e.src == m1 && e.dst == m2 && e.port == PortType::Drain));
        // e2 = (m1, CL, p_passive).
        assert!(g
            .edges()
            .iter()
            .any(|e| e.src == m1 && e.dst == cl && e.port == PortType::Passive));
        // Reciprocal edge back into m1's drain.
        assert!(g
            .edges()
            .iter()
            .any(|e| e.src == cl && e.dst == m1 && e.port == PortType::Drain));
    }

    #[test]
    fn edges_come_in_reciprocal_pairs() {
        let flat = fig5();
        let g = HetMultigraph::from_circuit(&flat, &BuildOptions::default());
        // Algorithm 1 adds (u, v, τ_v) and (v, u, τ_u) together, so the
        // edge count is even and every edge has a partner.
        assert_eq!(g.edge_count() % 2, 0);
        for e in g.edges() {
            assert!(
                g.edges().iter().any(|r| r.src == e.dst && r.dst == e.src),
                "no reciprocal edge for {e:?}"
            );
        }
    }

    #[test]
    fn no_self_loops_even_with_multi_pin_nets() {
        // M2 is diode-connected (gate tied to drain): both pins on `out`.
        let flat = fig5();
        let g = HetMultigraph::from_circuit(&flat, &BuildOptions::default());
        for e in g.edges() {
            assert_ne!(e.src, e.dst);
        }
    }

    #[test]
    fn diode_connection_creates_parallel_edges() {
        // m2 gate and m2 drain both sit on `out`, so (m1, m2, ·) exists
        // both as a drain-typed and a gate-typed edge: parallel edges.
        let flat = fig5();
        let g = HetMultigraph::from_circuit(&flat, &BuildOptions::default());
        let m1 = vertex_by_name(&flat, &g, "M1");
        let m2 = vertex_by_name(&flat, &g, "M2");
        let types: Vec<PortType> = g
            .edges()
            .iter()
            .filter(|e| e.src == m1 && e.dst == m2)
            .map(|e| e.port)
            .collect();
        assert!(types.contains(&PortType::Drain));
        assert!(types.contains(&PortType::Gate));
    }

    #[test]
    fn subtree_graph_ignores_out_of_scope_connections() {
        let nl = parse_spice(
            "\
.subckt inv in out vdd vss
Mp out in vdd vdd pch w=2u l=0.1u
Mn out in vss vss nch w=1u l=0.1u
.ends
.subckt top a y vdd vss
X1 a m vdd vss inv
X2 m y vdd vss inv
.ends
",
        )
        .unwrap();
        let flat = FlatCircuit::elaborate(&nl).unwrap();
        let x1 = flat.node_by_path("top/X1").unwrap().id;
        let g1 = HetMultigraph::from_subtree(&flat, x1, &BuildOptions::default());
        assert_eq!(g1.vertex_count(), 2);
        // Within X1: Mp and Mn share nets in/out/(vdd+vss are distinct) →
        // edges exist, but none reference X2's devices.
        assert!(g1.edge_count() > 0);
        let full = HetMultigraph::from_circuit(&flat, &BuildOptions::default());
        assert!(full.edge_count() > g1.edge_count());
    }

    #[test]
    fn max_net_degree_prunes_fanout_cliques() {
        let flat = fig5();
        let full = HetMultigraph::from_circuit(&flat, &BuildOptions::default());
        let pruned = HetMultigraph::from_circuit(
            &flat,
            &BuildOptions { max_net_degree: Some(2) },
        );
        assert!(pruned.edge_count() < full.edge_count());
        // Vertices are unaffected.
        assert_eq!(pruned.vertex_count(), full.vertex_count());
    }

    #[test]
    fn deterministic_construction() {
        let flat = fig5();
        let a = HetMultigraph::from_circuit(&flat, &BuildOptions::default());
        let b = HetMultigraph::from_circuit(&flat, &BuildOptions::default());
        assert_eq!(a, b);
    }
}
