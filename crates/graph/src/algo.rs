//! General graph utilities: connected components, BFS distances, and
//! degree statistics. Used by the baselines (S³DET works per connected
//! structure; SFA walks signal flow) and by test-suite invariants.

use std::collections::VecDeque;

use crate::multigraph::{HetMultigraph, VertexId};
use crate::simplify::SimpleDigraph;

/// Weakly connected components of a multigraph; returns one component id
/// per vertex, ids dense in `0..component_count`.
pub fn connected_components(g: &HetMultigraph) -> Vec<usize> {
    let n = g.vertex_count();
    let mut comp = vec![usize::MAX; n];
    let mut next = 0;
    for start in 0..n {
        if comp[start] != usize::MAX {
            continue;
        }
        let id = next;
        next += 1;
        let mut queue = VecDeque::from([start]);
        comp[start] = id;
        while let Some(v) = queue.pop_front() {
            let vid = VertexId(v);
            for e in g.out_edges(vid).chain(g.in_edges(vid)) {
                for w in [e.src.0, e.dst.0] {
                    if comp[w] == usize::MAX {
                        comp[w] = id;
                        queue.push_back(w);
                    }
                }
            }
        }
    }
    comp
}

/// Number of weakly connected components.
pub fn component_count(g: &HetMultigraph) -> usize {
    connected_components(g).iter().copied().max().map_or(0, |m| m + 1)
}

/// BFS hop distances from `source` over the simplified digraph, following
/// edges in both directions (structural distance). Unreachable vertices
/// get `usize::MAX`.
pub fn bfs_distances(g: &SimpleDigraph, source: usize) -> Vec<usize> {
    let n = g.vertex_count();
    let mut dist = vec![usize::MAX; n];
    if source >= n {
        return dist;
    }
    dist[source] = 0;
    let mut queue = VecDeque::from([source]);
    while let Some(v) = queue.pop_front() {
        for &w in g.out_neighbors(v).iter().chain(g.in_neighbors(v)) {
            if dist[w] == usize::MAX {
                dist[w] = dist[v] + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}

/// Summary statistics of a degree sequence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeStats {
    /// Smallest degree.
    pub min: usize,
    /// Largest degree.
    pub max: usize,
    /// Mean degree.
    pub mean: f64,
}

/// In-degree statistics of a multigraph (parallel edges counted).
pub fn in_degree_stats(g: &HetMultigraph) -> DegreeStats {
    let degrees: Vec<usize> = g.vertices().map(|v| g.in_degree(v)).collect();
    if degrees.is_empty() {
        return DegreeStats { min: 0, max: 0, mean: 0.0 };
    }
    let min = *degrees.iter().min().expect("non-empty");
    let max = *degrees.iter().max().expect("non-empty");
    let mean = degrees.iter().sum::<usize>() as f64 / degrees.len() as f64;
    DegreeStats { min, max, mean }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ancstr_netlist::PortType;

    fn two_islands() -> HetMultigraph {
        let mut g = HetMultigraph::with_vertices(0..5);
        g.add_edge(VertexId(0), VertexId(1), PortType::Drain);
        g.add_edge(VertexId(1), VertexId(2), PortType::Gate);
        g.add_edge(VertexId(3), VertexId(4), PortType::Passive);
        g
    }

    #[test]
    fn components_are_found() {
        let g = two_islands();
        let comp = connected_components(&g);
        assert_eq!(component_count(&g), 2);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[1], comp[2]);
        assert_eq!(comp[3], comp[4]);
        assert_ne!(comp[0], comp[3]);
    }

    #[test]
    fn empty_graph_has_no_components() {
        let g = HetMultigraph::with_vertices(std::iter::empty());
        assert_eq!(component_count(&g), 0);
    }

    #[test]
    fn bfs_distances_follow_both_directions() {
        let s = SimpleDigraph::from_edges(4, &[(0, 1), (2, 1), (2, 3)]);
        let d = bfs_distances(&s, 0);
        assert_eq!(d, vec![0, 1, 2, 3]);
        let unreachable = bfs_distances(&SimpleDigraph::from_edges(2, &[]), 0);
        assert_eq!(unreachable, vec![0, usize::MAX]);
    }

    #[test]
    fn bfs_with_out_of_range_source() {
        let s = SimpleDigraph::from_edges(2, &[(0, 1)]);
        let d = bfs_distances(&s, 9);
        assert!(d.iter().all(|&x| x == usize::MAX));
    }

    #[test]
    fn degree_stats() {
        let g = two_islands();
        let st = in_degree_stats(&g);
        assert_eq!(st.min, 0);
        assert_eq!(st.max, 1);
        assert!((st.mean - 3.0 / 5.0).abs() < 1e-12);
    }
}
