//! Graphviz DOT export of the heterogeneous multigraph, for inspecting
//! circuits and detected constraints visually.

use std::fmt::Write as _;

use ancstr_netlist::PortType;

use crate::multigraph::{HetMultigraph, VertexId};

/// Options for DOT rendering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DotOptions {
    /// Graph name in the DOT header.
    pub name: String,
    /// Collapse reciprocal edge pairs into one undirected-looking edge
    /// (`dir=none`), halving visual clutter.
    pub collapse_reciprocal: bool,
}

impl Default for DotOptions {
    fn default() -> DotOptions {
        DotOptions { name: "circuit".to_owned(), collapse_reciprocal: true }
    }
}

/// Edge colour per port type (graphviz colour names).
pub fn port_color(port: PortType) -> &'static str {
    match port {
        PortType::Gate => "blue",
        PortType::Drain => "red",
        PortType::Source => "darkgreen",
        PortType::Passive => "gray40",
    }
}

/// Render a multigraph as DOT. `label` maps each vertex to its display
/// name (typically the device path); `highlight` marks vertices drawn
/// with a filled style (e.g. members of detected constraints).
///
/// # Example
///
/// ```
/// use ancstr_graph::{dot::{to_dot, DotOptions}, HetMultigraph, VertexId};
/// use ancstr_netlist::PortType;
///
/// let mut g = HetMultigraph::with_vertices(0..2);
/// g.add_edge(VertexId(0), VertexId(1), PortType::Drain);
/// let text = to_dot(&g, &DotOptions::default(), |v| format!("M{}", v.0), |_| false);
/// assert!(text.contains("digraph"));
/// assert!(text.contains("M0"));
/// ```
pub fn to_dot(
    g: &HetMultigraph,
    options: &DotOptions,
    label: impl Fn(VertexId) -> String,
    highlight: impl Fn(VertexId) -> bool,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", options.name);
    let _ = writeln!(out, "  node [shape=box, fontsize=10];");
    for v in g.vertices() {
        let style = if highlight(v) {
            ", style=filled, fillcolor=gold"
        } else {
            ""
        };
        let _ = writeln!(out, "  v{} [label=\"{}\"{}];", v.0, escape(&label(v)), style);
    }
    let mut emitted = vec![false; g.edge_count()];
    for (i, e) in g.edges().iter().enumerate() {
        if emitted[i] {
            continue;
        }
        emitted[i] = true;
        let mut dir = "forward";
        if options.collapse_reciprocal {
            // Find an unemitted reciprocal partner of the same pair.
            if let Some(j) = g
                .edges()
                .iter()
                .enumerate()
                .position(|(j, r)| !emitted[j] && r.src == e.dst && r.dst == e.src)
            {
                emitted[j] = true;
                dir = "none";
            }
        }
        let _ = writeln!(
            out,
            "  v{} -> v{} [color={}, dir={}, tooltip=\"{}\"];",
            e.src.0,
            e.dst.0,
            port_color(e.port),
            dir,
            e.port
        );
    }
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> HetMultigraph {
        let mut g = HetMultigraph::with_vertices(0..3);
        g.add_edge(VertexId(0), VertexId(1), PortType::Drain);
        g.add_edge(VertexId(1), VertexId(0), PortType::Gate);
        g.add_edge(VertexId(1), VertexId(2), PortType::Passive);
        g
    }

    #[test]
    fn renders_nodes_and_edges() {
        let g = sample();
        let text = to_dot(
            &g,
            &DotOptions::default(),
            |v| format!("dev{}", v.0),
            |v| v.0 == 2,
        );
        assert!(text.starts_with("digraph"));
        assert!(text.contains("dev0"));
        assert!(text.contains("fillcolor=gold"));
        assert!(text.contains("color=red"));
        assert!(text.ends_with("}\n"));
    }

    #[test]
    fn collapse_merges_reciprocal_pairs() {
        let g = sample();
        let collapsed = to_dot(&g, &DotOptions::default(), |v| v.to_string(), |_| false);
        let expanded = to_dot(
            &g,
            &DotOptions { collapse_reciprocal: false, ..Default::default() },
            |v| v.to_string(),
            |_| false,
        );
        let arrows = |s: &str| s.matches(" -> ").count();
        assert_eq!(arrows(&expanded), 3);
        assert_eq!(arrows(&collapsed), 2); // 0↔1 merged, 1→2 alone
        assert!(collapsed.contains("dir=none"));
    }

    #[test]
    fn labels_are_escaped() {
        let mut g = HetMultigraph::with_vertices(0..1);
        let _ = &mut g;
        let text = to_dot(
            &g,
            &DotOptions::default(),
            |_| "a\"b\\c".to_owned(),
            |_| false,
        );
        assert!(text.contains("a\\\"b\\\\c"));
    }
}
