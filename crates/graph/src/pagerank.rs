//! PageRank over the simplified digraph (Eq. 3).
//!
//! The paper's Eq. 3 reads
//! `PR(v) = (1-γ)/|V_t| + γ · Σ_{u ∈ N_in(v)} PR(u)/|N_out(v)|`;
//! the denominator is the standard `|N_out(u)|` (each in-neighbour
//! distributes its rank over *its own* out-edges — the printed `v` is a
//! typo, and with it the iteration would not conserve rank). Dangling
//! vertices redistribute uniformly, the usual convention.

use crate::simplify::SimpleDigraph;

/// Parameters of the PageRank iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct PageRankOptions {
    /// Damping factor `γ`.
    pub damping: f64,
    /// Stop when the L1 change between sweeps drops below this.
    pub tolerance: f64,
    /// Hard cap on sweeps.
    pub max_iterations: usize,
}

impl Default for PageRankOptions {
    fn default() -> PageRankOptions {
        PageRankOptions { damping: 0.85, tolerance: 1e-10, max_iterations: 200 }
    }
}

/// Compute PageRank values for every vertex of `g`.
///
/// Returns a vector summing to 1 (up to floating-point error); an empty
/// graph yields an empty vector.
///
/// # Example
///
/// ```
/// use ancstr_graph::{pagerank, PageRankOptions, SimpleDigraph};
///
/// // A hub that everything points at ranks highest.
/// let g = SimpleDigraph::from_edges(3, &[(0, 2), (1, 2)]);
/// let pr = pagerank(&g, &PageRankOptions::default());
/// assert!(pr[2] > pr[0] && pr[2] > pr[1]);
/// ```
pub fn pagerank(g: &SimpleDigraph, options: &PageRankOptions) -> Vec<f64> {
    let n = g.vertex_count();
    if n == 0 {
        return Vec::new();
    }
    let nf = n as f64;
    let gamma = options.damping;
    let base = (1.0 - gamma) / nf;
    let mut pr = vec![1.0 / nf; n];
    let mut next = vec![0.0; n];

    // Out-degrees are loop invariants: hoist the float conversions and
    // the dangling-vertex scan out of the power iteration. The ranks
    // stay bit-identical (`pr[u] / out_deg[u]` is the same division).
    let out_deg: Vec<f64> = (0..n).map(|v| g.out_degree(v) as f64).collect();
    let dangling_vertices: Vec<usize> = (0..n).filter(|&v| g.out_degree(v) == 0).collect();

    for _ in 0..options.max_iterations {
        // Rank from dangling vertices spreads uniformly.
        let dangling: f64 = dangling_vertices.iter().map(|&v| pr[v]).sum();
        let dangling_share = gamma * dangling / nf;
        for (v, slot) in next.iter_mut().enumerate() {
            let mut acc = 0.0;
            for &u in g.in_neighbors(v) {
                acc += pr[u] / out_deg[u];
            }
            *slot = base + dangling_share + gamma * acc;
        }
        let delta: f64 = pr.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
        std::mem::swap(&mut pr, &mut next);
        if delta < options.tolerance {
            break;
        }
    }
    pr
}

/// Indices of the top-`m` vertices by PageRank, ties broken by vertex
/// index for determinism (Algorithm 2 lines 5–6 and 8).
pub fn top_m_by_pagerank(pr: &[f64], m: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..pr.len()).collect();
    idx.sort_by(|&a, &b| {
        pr[b]
            .partial_cmp(&pr[a])
            .expect("PageRank values are finite")
            .then(a.cmp(&b))
    });
    idx.truncate(m);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_sum_to_one() {
        let g = SimpleDigraph::from_edges(5, &[(0, 1), (1, 2), (2, 0), (3, 2), (4, 2)]);
        let pr = pagerank(&g, &PageRankOptions::default());
        let sum: f64 = pr.iter().sum();
        assert!((sum - 1.0).abs() < 1e-8, "sum = {sum}");
    }

    #[test]
    fn empty_graph() {
        let g = SimpleDigraph::from_edges(0, &[]);
        assert!(pagerank(&g, &PageRankOptions::default()).is_empty());
    }

    #[test]
    fn isolated_vertices_share_uniformly() {
        let g = SimpleDigraph::from_edges(4, &[]);
        let pr = pagerank(&g, &PageRankOptions::default());
        for &p in &pr {
            assert!((p - 0.25).abs() < 1e-9);
        }
    }

    #[test]
    fn symmetric_cycle_is_uniform() {
        let g = SimpleDigraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let pr = pagerank(&g, &PageRankOptions::default());
        for &p in &pr {
            assert!((p - 0.25).abs() < 1e-8);
        }
    }

    #[test]
    fn hub_ranks_highest() {
        // star: everyone points to 0, 0 points back to 1 only.
        let g = SimpleDigraph::from_edges(4, &[(1, 0), (2, 0), (3, 0), (0, 1)]);
        let pr = pagerank(&g, &PageRankOptions::default());
        assert!(pr[0] > pr[1] && pr[1] > pr[2]);
        assert!((pr[2] - pr[3]).abs() < 1e-9, "symmetric leaves tie");
    }

    #[test]
    fn dangling_mass_is_conserved() {
        // 1 is dangling.
        let g = SimpleDigraph::from_edges(3, &[(0, 1), (2, 1)]);
        let pr = pagerank(&g, &PageRankOptions::default());
        let sum: f64 = pr.iter().sum();
        assert!((sum - 1.0).abs() < 1e-8);
        assert!(pr[1] > pr[0]);
    }

    #[test]
    fn top_m_is_deterministic_and_sorted() {
        let pr = vec![0.1, 0.4, 0.4, 0.05, 0.05];
        assert_eq!(top_m_by_pagerank(&pr, 3), vec![1, 2, 0]);
        assert_eq!(top_m_by_pagerank(&pr, 10), vec![1, 2, 0, 3, 4]);
        assert!(top_m_by_pagerank(&pr, 0).is_empty());
    }
}
