#![warn(missing_docs)]

//! Heterogeneous multigraph circuit representation (paper Section IV-A)
//! and the graph algorithms the AncstrGNN pipeline relies on.
//!
//! * [`HetMultigraph`] — the directed multigraph `G = (V, E)` whose
//!   vertices are primitive devices and whose edges `(u, v, τ_v)` are
//!   typed by the destination port (Algorithm 1's clique construction);
//! * [`SimpleDigraph`] — the de-paralleled, untyped digraph `G'_t` used
//!   by circuit feature embedding (Algorithm 2, lines 1–4);
//! * [`pagerank()`] — Eq. 3's PageRank iteration;
//! * [`algo`] — connected components, BFS, and degree utilities used by
//!   the baselines and the test-suite invariants.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use ancstr_netlist::{parse::parse_spice, flat::FlatCircuit};
//! use ancstr_graph::{HetMultigraph, BuildOptions};
//!
//! let nl = parse_spice("\
//! .subckt amp in out vdd vss
//! M1 out in vss vss nch w=1u l=0.1u
//! M2 out in vdd vdd pch w=2u l=0.1u
//! C1 out vss 10f
//! .ends
//! ")?;
//! let flat = FlatCircuit::elaborate(&nl)?;
//! let g = HetMultigraph::from_circuit(&flat, &BuildOptions::default());
//! assert_eq!(g.vertex_count(), 3);
//! # Ok(())
//! # }
//! ```

pub mod algo;
pub mod build;
pub mod dot;
pub mod multigraph;
pub mod pagerank;
pub mod simplify;

pub use build::BuildOptions;
pub use multigraph::{Edge, EdgeId, HetMultigraph, VertexId};
pub use pagerank::{pagerank, PageRankOptions};
pub use simplify::SimpleDigraph;
