//! The heterogeneous directed multigraph `G = (V, E)`.

use std::collections::HashMap;
use std::fmt;

use ancstr_netlist::PortType;

/// Identifier of a vertex (one primitive device) in a [`HetMultigraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VertexId(pub usize);

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Identifier of a directed edge in a [`HetMultigraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub usize);

/// A directed typed edge `e = (u, v, τ_v)`: the interconnection from `u`
/// to `v`, typed by the port of `v` it lands on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Edge {
    /// Source vertex `u`.
    pub src: VertexId,
    /// Destination vertex `v`.
    pub dst: VertexId,
    /// Port type `τ_v` of the destination pin.
    pub port: PortType,
}

/// The heterogeneous directed multigraph of Section IV-A.
///
/// Vertices are primitive devices; parallel edges are permitted (two
/// devices may be connected through several nets/pins). Each vertex
/// remembers the index of its device in the owning
/// [`ancstr_netlist::FlatCircuit`], so features can be looked up.
#[derive(Debug, Clone, PartialEq)]
pub struct HetMultigraph {
    device_of: Vec<usize>,
    vertex_of_device: HashMap<usize, VertexId>,
    edges: Vec<Edge>,
    in_edges: Vec<Vec<EdgeId>>,
    out_edges: Vec<Vec<EdgeId>>,
}

impl HetMultigraph {
    /// An empty multigraph over the given flat-device indices.
    pub fn with_vertices(device_indices: impl IntoIterator<Item = usize>) -> HetMultigraph {
        let device_of: Vec<usize> = device_indices.into_iter().collect();
        let vertex_of_device = device_of
            .iter()
            .enumerate()
            .map(|(v, &d)| (d, VertexId(v)))
            .collect();
        let n = device_of.len();
        HetMultigraph {
            device_of,
            vertex_of_device,
            edges: Vec::new(),
            in_edges: vec![Vec::new(); n],
            out_edges: vec![Vec::new(); n],
        }
    }

    /// Number of vertices `|V|`.
    pub fn vertex_count(&self) -> usize {
        self.device_of.len()
    }

    /// Number of directed edges `|E|` (parallel edges counted).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// All vertices.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> {
        (0..self.device_of.len()).map(VertexId)
    }

    /// All edges in insertion order.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// The flat-device index behind a vertex.
    ///
    /// # Panics
    ///
    /// Panics if `v` does not belong to this graph.
    pub fn device_index(&self, v: VertexId) -> usize {
        self.device_of[v.0]
    }

    /// The vertex representing a flat-device index, if it is in scope.
    pub fn vertex_for_device(&self, device_index: usize) -> Option<VertexId> {
        self.vertex_of_device.get(&device_index).copied()
    }

    /// Add a directed typed edge. Self-loops are rejected per
    /// Algorithm 1 line 10.
    ///
    /// # Panics
    ///
    /// Panics if `src == dst` or either endpoint is out of range.
    pub fn add_edge(&mut self, src: VertexId, dst: VertexId, port: PortType) -> EdgeId {
        assert_ne!(src, dst, "the multigraph must not contain self loops");
        assert!(src.0 < self.vertex_count() && dst.0 < self.vertex_count());
        let id = EdgeId(self.edges.len());
        self.edges.push(Edge { src, dst, port });
        self.out_edges[src.0].push(id);
        self.in_edges[dst.0].push(id);
        id
    }

    /// Incoming edges of `v` (the `N_in(v)` aggregation set of Eq. 1).
    pub fn in_edges(&self, v: VertexId) -> impl Iterator<Item = &Edge> {
        self.in_edges[v.0].iter().map(move |&e| &self.edges[e.0])
    }

    /// Outgoing edges of `v`.
    pub fn out_edges(&self, v: VertexId) -> impl Iterator<Item = &Edge> {
        self.out_edges[v.0].iter().map(move |&e| &self.edges[e.0])
    }

    /// In-degree of `v` (parallel edges counted).
    pub fn in_degree(&self, v: VertexId) -> usize {
        self.in_edges[v.0].len()
    }

    /// Out-degree of `v` (parallel edges counted).
    pub fn out_degree(&self, v: VertexId) -> usize {
        self.out_edges[v.0].len()
    }

    /// The distinct in-neighbour vertices of `v` (parallel edges
    /// deduplicated, order of first appearance).
    pub fn in_neighbors(&self, v: VertexId) -> Vec<VertexId> {
        let mut seen = vec![false; self.vertex_count()];
        let mut out = Vec::new();
        for e in self.in_edges(v) {
            if !seen[e.src.0] {
                seen[e.src.0] = true;
                out.push(e.src);
            }
        }
        out
    }

    /// Count of edges per port type, in [`PortType::ALL`] order.
    pub fn edge_type_histogram(&self) -> [usize; PortType::COUNT] {
        let mut h = [0usize; PortType::COUNT];
        for e in &self.edges {
            h[e.port.index()] += 1;
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> HetMultigraph {
        let mut g = HetMultigraph::with_vertices([10, 20, 30]);
        g.add_edge(VertexId(0), VertexId(1), PortType::Drain);
        g.add_edge(VertexId(1), VertexId(0), PortType::Gate);
        g.add_edge(VertexId(1), VertexId(2), PortType::Passive);
        g.add_edge(VertexId(0), VertexId(1), PortType::Drain); // parallel
        g
    }

    #[test]
    fn vertices_map_to_devices() {
        let g = triangle();
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.device_index(VertexId(1)), 20);
        assert_eq!(g.vertex_for_device(30), Some(VertexId(2)));
        assert_eq!(g.vertex_for_device(99), None);
    }

    #[test]
    fn parallel_edges_are_kept() {
        let g = triangle();
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.in_degree(VertexId(1)), 2);
        assert_eq!(g.in_neighbors(VertexId(1)), vec![VertexId(0)]);
    }

    #[test]
    #[should_panic(expected = "self loops")]
    fn self_loops_are_rejected() {
        let mut g = triangle();
        g.add_edge(VertexId(0), VertexId(0), PortType::Gate);
    }

    #[test]
    fn degree_bookkeeping() {
        let g = triangle();
        assert_eq!(g.out_degree(VertexId(0)), 2);
        assert_eq!(g.out_degree(VertexId(1)), 2);
        assert_eq!(g.out_degree(VertexId(2)), 0);
        let total_in: usize = g.vertices().map(|v| g.in_degree(v)).sum();
        assert_eq!(total_in, g.edge_count());
    }

    #[test]
    fn histogram_counts_types() {
        let g = triangle();
        let h = g.edge_type_histogram();
        assert_eq!(h[PortType::Gate.index()], 1);
        assert_eq!(h[PortType::Drain.index()], 2);
        assert_eq!(h[PortType::Source.index()], 0);
        assert_eq!(h[PortType::Passive.index()], 1);
    }
}
