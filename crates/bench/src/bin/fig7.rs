//! Regenerates **Fig. 7**: the ROC curve of this work on the merged
//! block-level dataset (device-level pairs), plus the single operating
//! point of the SFA heuristic in ROC space.
//!
//! Prints CSV (`series,threshold,fpr,tpr`) and the AUC (paper: 0.956),
//! and writes `fig7.csv`.
//!
//! ```text
//! cargo run -p ancstr-bench --bin fig7 --release
//! ```

use std::fs;

use ancstr_baselines::{sfa_extract, SfaConfig};
use ancstr_bench::{block_dataset, experiment_config, train_extractor};
use ancstr_core::pipeline::evaluate_detection;
use ancstr_core::{roc_curve, Confusion};

fn main() {
    println!("Fig. 7: ROC on the merged block-level dataset (device level)");
    println!();
    let dataset = block_dataset();

    println!("[1/2] SFA operating point ...");
    let mut sfa_confusion = Confusion::default();
    for b in &dataset {
        let ex = sfa_extract(&b.flat, &SfaConfig::default());
        let eval = evaluate_detection(&b.flat, ex);
        sfa_confusion.merge(&eval.device);
    }

    println!("[2/2] GNN curve ...");
    let extractor = train_extractor(&dataset, experiment_config());
    let mut samples = Vec::new();
    for b in &dataset {
        let eval = extractor.evaluate(&b.flat);
        samples.extend(eval.device_samples);
    }
    let roc = roc_curve(&samples);

    let mut csv = String::from("series,threshold,fpr,tpr\n");
    for p in &roc.points {
        csv.push_str(&format!(
            "this_work,{:.6},{:.6},{:.6}\n",
            p.threshold, p.fpr, p.tpr
        ));
    }
    csv.push_str(&format!(
        "sfa_point,0.5,{:.6},{:.6}\n",
        sfa_confusion.fpr(),
        sfa_confusion.tpr()
    ));
    print!("{csv}");

    println!();
    println!("AUC this work = {:.3}  (paper: 0.956)", roc.auc);
    println!(
        "SFA point: FPR = {:.3}, TPR = {:.3}",
        sfa_confusion.fpr(),
        sfa_confusion.tpr()
    );
    let enclosed = roc
        .points
        .windows(2)
        .any(|w| {
            // The SFA point is enclosed if at its FPR the curve's TPR is
            // at least as high.
            w[0].fpr <= sfa_confusion.fpr() && sfa_confusion.fpr() <= w[1].fpr && {
                let t = if (w[1].fpr - w[0].fpr).abs() < 1e-12 {
                    w[1].tpr
                } else {
                    w[0].tpr
                        + (w[1].tpr - w[0].tpr) * (sfa_confusion.fpr() - w[0].fpr)
                            / (w[1].fpr - w[0].fpr)
                };
                t >= sfa_confusion.tpr()
            }
        });
    println!(
        "Curve encloses the SFA point: {}  (paper: yes)",
        if enclosed { "yes" } else { "no" }
    );

    if let Err(e) = fs::write("fig7.csv", &csv) {
        eprintln!("note: could not write fig7.csv: {e}");
    } else {
        println!("wrote fig7.csv");
    }
}
