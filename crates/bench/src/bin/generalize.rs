//! Generalizability experiment (beyond the paper's tables, testing its
//! central claim): train the unsupervised model on the Table IV corpus
//! only, then extract constraints **zero-shot** on six circuit classes
//! the model never saw — bandgap, LDO, ring VCO, charge pump, Gilbert
//! mixer, and a biquad filter.
//!
//! ```text
//! cargo run -p ancstr-bench --bin generalize --release
//! ```

use ancstr_bench::{
    block_dataset, experiment_config, metric_header, render_average, train_extractor, MetricRow,
};
use ancstr_circuits::extras::extra_benchmarks;
use ancstr_netlist::flat::FlatCircuit;

fn main() {
    println!("Generalization: train on Table IV blocks, test on unseen classes");
    println!();

    println!("[1/2] training on the 15 Table IV circuits ...");
    let train_set = block_dataset();
    let extractor = train_extractor(&train_set, experiment_config());

    println!("[2/2] zero-shot extraction on unseen classes ...");
    let mut rows = Vec::new();
    for (name, nl) in extra_benchmarks(ancstr_bench::EXPERIMENT_SEED) {
        let flat = FlatCircuit::elaborate(&nl).expect("extras elaborate");
        let eval = extractor.evaluate(&flat);
        rows.push(MetricRow::from_evaluation(name, &eval, |e| e.overall));
    }

    println!();
    println!("{}", metric_header());
    for r in &rows {
        println!("{}", r.render());
    }
    println!("{}", render_average(&rows));
    println!();
    println!(
        "The model was never trained on these classes; accuracy close to the\n\
         in-corpus Table VI numbers demonstrates the inductive, unsupervised\n\
         design transfers (the paper's generalizability claim)."
    );
}
