//! Regenerates **Table III**: statistics of the five ADC benchmarks
//! (architecture, #devices, #nets, #valid pairs).
//!
//! ```text
//! cargo run -p ancstr-bench --bin table3 --release
//! ```

use ancstr_bench::{adc_dataset, stats_header, stats_line};

/// Paper reference values: (name, architecture, devices, nets, valid pairs).
const PAPER: [(&str, &str, usize, usize, usize); 5] = [
    ("ADC1", "2nd-order CT dsm", 285, 122, 148),
    ("ADC2", "3rd-order CT dsm", 345, 162, 104),
    ("ADC3", "3rd-order CT dsm", 347, 163, 82),
    ("ADC4", "SAR", 731, 372, 776),
    ("ADC5", "Hybrid CT dsm SAR", 1233, 586, 1177),
];

fn main() {
    println!("Table III: statistics of the five ADC benchmarks");
    println!("(paper reference values in parentheses)");
    println!();
    println!("{}", stats_header());
    let dataset = adc_dataset();
    for (b, paper) in dataset.iter().zip(&PAPER) {
        println!("{}", stats_line(b));
        println!(
            "{:<8} {:>9} {:>6} {:>12}   (paper: {} / {} devices, {} nets, {} valid pairs)",
            "", "", "", "", paper.1, paper.2, paper.3, paper.4
        );
    }
}
