//! Measures the template-consistency voting extension: device-level
//! quality on the five ADCs with Algorithm 3 alone versus Algorithm 3 +
//! the voting post-pass.
//!
//! ```text
//! cargo run -p ancstr-bench --bin consistency --release
//! ```

use ancstr_bench::{
    adc_dataset, experiment_config, metric_header, render_average, train_extractor, MetricRow,
};
use ancstr_core::pipeline::evaluate_detection;
use ancstr_core::ConsistencyOptions;

fn main() {
    println!("Template-consistency voting: device-level effect on the ADCs");
    println!();
    let dataset = adc_dataset();
    let extractor = train_extractor(&dataset, experiment_config());

    let mut plain_rows = Vec::new();
    let mut voted_rows = Vec::new();
    for b in &dataset {
        let plain = evaluate_detection(&b.flat, extractor.extract(&b.flat));
        plain_rows.push(MetricRow::from_evaluation(b.name, &plain, |e| e.device));
        let voted = evaluate_detection(
            &b.flat,
            extractor.extract_with_consistency(&b.flat, &ConsistencyOptions::default()),
        );
        voted_rows.push(MetricRow::from_evaluation(b.name, &voted, |e| e.device));
    }

    println!("== Algorithm 3 alone ==");
    println!("{}", metric_header());
    for r in &plain_rows {
        println!("{}", r.render());
    }
    println!("{}", render_average(&plain_rows));

    println!();
    println!("== + consistency voting (quorum 0.5) ==");
    println!("{}", metric_header());
    for r in &voted_rows {
        println!("{}", r.render());
    }
    println!("{}", render_average(&voted_rows));
    println!();
    println!(
        "The vote can only add pairs a majority of a template's instances\n\
         already support, so precision holds while instance-specific misses\n\
         (boundary-context noise) are repaired."
    );
}
