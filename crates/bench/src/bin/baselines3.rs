//! Three-way system-level comparison (extension beyond the paper's
//! Table V, which compares only against S³DET): S³DET vs a GED-based
//! detector in the spirit of ICCAD'20 \[21\] vs this work, on the five
//! ADCs.
//!
//! ```text
//! cargo run -p ancstr-bench --bin baselines3 --release
//! ```

use ancstr_baselines::{ged_extract, s3det_extract, GedConfig, S3detConfig};
use ancstr_bench::{
    adc_dataset, experiment_config, metric_header, render_average, train_extractor, MetricRow,
};
use ancstr_core::pipeline::evaluate_detection;

fn main() {
    println!("System-level extraction: S3DET vs GED [21]-style vs this work");
    println!();
    let dataset = adc_dataset();

    println!("[1/3] S3DET (spectra + K-S) ...");
    let mut s3_rows = Vec::new();
    for b in &dataset {
        let ex = s3det_extract(&b.flat, &S3detConfig { cache_spectra: true, ..Default::default() });
        let eval = evaluate_detection(&b.flat, ex);
        s3_rows.push(MetricRow::from_evaluation(b.name, &eval, |e| e.system));
    }

    println!("[2/3] GED (greedy assignment) ...");
    let mut ged_rows = Vec::new();
    for b in &dataset {
        let ex = ged_extract(&b.flat, &GedConfig::default());
        let eval = evaluate_detection(&b.flat, ex);
        ged_rows.push(MetricRow::from_evaluation(b.name, &eval, |e| e.system));
    }

    println!("[3/3] this work (trained on all five ADCs) ...");
    let extractor = train_extractor(&dataset, experiment_config());
    let mut our_rows = Vec::new();
    for b in &dataset {
        let eval = extractor.evaluate(&b.flat);
        our_rows.push(MetricRow::from_evaluation(b.name, &eval, |e| e.system));
    }

    for (title, rows) in [
        ("S3DET [20]", &s3_rows),
        ("GED [21]-style", &ged_rows),
        ("This work", &our_rows),
    ] {
        println!();
        println!("== {title} ==");
        println!("{}", metric_header());
        for r in rows {
            println!("{}", r.render());
        }
        println!("{}", render_average(rows));
    }
    println!();
    println!(
        "Both prior detectors are sizing-blind, so both false-alarm on the\n\
         scaled-integrator and unequal-bank decoys; the GNN's sizing-aware\n\
         features keep its FPR near zero (Table I's comparison row)."
    );
}
