//! Diagnostic: list mismatching system-level pairs (false negatives and
//! false positives, with scores and thresholds) for one ADC benchmark.
//!
//! ```text
//! cargo run -p ancstr-bench --bin probe --release [-- ADC1..ADC5]
//! ```

use ancstr_bench::{adc_dataset, experiment_config, train_extractor};
use ancstr_netlist::SymmetryKind;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "ADC4".to_owned());
    let dataset = adc_dataset();
    let Some(b) = dataset.iter().find(|b| b.name.eq_ignore_ascii_case(&which)) else {
        eprintln!("unknown benchmark `{which}`; use ADC1..ADC5");
        std::process::exit(1);
    };
    let extractor = train_extractor(&dataset, experiment_config());
    let eval = extractor.evaluate(&b.flat);
    let gt = b.flat.ground_truth();

    println!("== {} system-level mismatches ==", b.name);
    let mut clean = true;
    for s in &eval.extraction.detection.scored {
        if s.candidate.kind != SymmetryKind::System {
            continue;
        }
        let actual = gt.contains_key(s.candidate.pair);
        let tag = match (s.accepted, actual) {
            (false, true) => "FN",
            (true, false) => "FP",
            _ => continue,
        };
        clean = false;
        println!(
            "{tag} {:.4} (th {:.3}) {} <-> {}",
            s.score,
            s.threshold,
            b.flat.node(s.candidate.pair.lo()).path,
            b.flat.node(s.candidate.pair.hi()).path
        );
    }
    if clean {
        println!("(none — perfect system-level detection)");
    }
    println!(
        "\nsystem confusion: TP {} FP {} TN {} FN {}",
        eval.system.tp, eval.system.fp, eval.system.tn, eval.system.fn_
    );
}
