//! Threshold sensitivity sweep: how the Eq. 4/5 decision thresholds
//! trade TPR against FPR around the paper's operating points
//! (device λ = 0.99; system α = β = 0.95).
//!
//! Prints two CSV blocks (`level,threshold,tpr,fpr,f1`) over the merged
//! block dataset (device level) and merged ADC dataset (system level).
//!
//! ```text
//! cargo run -p ancstr-bench --bin sweep --release
//! ```

use ancstr_bench::{
    adc_dataset, block_dataset, experiment_config, train_extractor, Benchmark,
};
use ancstr_core::{Confusion, SymmetryExtractor};

fn sweep(
    dataset: &[Benchmark],
    extractor: &SymmetryExtractor,
    level_system: bool,
    thresholds: &[f64],
) {
    // Collect scores once; re-threshold cheaply.
    let mut samples: Vec<(f64, bool)> = Vec::new();
    for b in dataset {
        let eval = extractor.evaluate(&b.flat);
        samples.extend(if level_system {
            eval.system_samples
        } else {
            eval.device_samples
        });
    }
    let level = if level_system { "system" } else { "device" };
    for &th in thresholds {
        let mut c = Confusion::default();
        for &(score, actual) in &samples {
            c.record(score > th, actual);
        }
        println!(
            "{level},{th:.3},{:.4},{:.4},{:.4}",
            c.tpr(),
            c.fpr(),
            c.f1()
        );
    }
}

fn main() {
    println!("level,threshold,tpr,fpr,f1");

    let blocks = block_dataset();
    let block_extractor = train_extractor(&blocks, experiment_config());
    let device_ths: Vec<f64> = (80..100).map(|i| i as f64 / 100.0).collect();
    sweep(&blocks, &block_extractor, false, &device_ths);

    let adcs = adc_dataset();
    let adc_extractor = train_extractor(&adcs, experiment_config());
    let system_ths: Vec<f64> = (86..100).map(|i| i as f64 / 100.0).collect();
    sweep(&adcs, &adc_extractor, true, &system_ths);

    eprintln!();
    eprintln!("paper operating points: device 0.99, system ~0.95 (Eq. 4)");
}
