//! Regenerates **Fig. 6**: ROC curves of S³DET and this work on the
//! merged dataset of the five ADCs (system-level pairs).
//!
//! Prints the two curves as CSV (`series,threshold,fpr,tpr`) plus the
//! AUCs, and writes `fig6.csv` into the working directory for plotting.
//!
//! ```text
//! cargo run -p ancstr-bench --bin fig6 --release
//! ```

use std::fs;

use ancstr_baselines::{s3det_extract, S3detConfig};
use ancstr_bench::{adc_dataset, experiment_config, train_extractor};
use ancstr_core::pipeline::evaluate_detection;
use ancstr_core::{roc_curve, RocCurve};

fn render(series: &str, curve: &RocCurve, out: &mut String) {
    for p in &curve.points {
        out.push_str(&format!(
            "{series},{:.6},{:.6},{:.6}\n",
            p.threshold, p.fpr, p.tpr
        ));
    }
}

fn main() {
    println!("Fig. 6: ROC curves on the merged 5-ADC dataset (system level)");
    println!();
    let dataset = adc_dataset();

    // Merged S3DET samples.
    println!("[1/2] scoring with S3DET ...");
    let mut s3_samples = Vec::new();
    for b in &dataset {
        // Spectra caching changes runtime only, not scores — fine for a
        // score-only figure.
        let ex = s3det_extract(&b.flat, &S3detConfig { cache_spectra: true, ..Default::default() });
        let eval = evaluate_detection(&b.flat, ex);
        s3_samples.extend(eval.system_samples);
    }
    let s3_roc = roc_curve(&s3_samples);

    // Merged GNN samples.
    println!("[2/2] scoring with the trained GNN ...");
    let extractor = train_extractor(&dataset, experiment_config());
    let mut our_samples = Vec::new();
    for b in &dataset {
        let eval = extractor.evaluate(&b.flat);
        our_samples.extend(eval.system_samples);
    }
    let our_roc = roc_curve(&our_samples);

    let mut csv = String::from("series,threshold,fpr,tpr\n");
    render("s3det", &s3_roc, &mut csv);
    render("this_work", &our_roc, &mut csv);
    print!("{csv}");

    println!();
    println!("AUC S3DET      = {:.3}", s3_roc.auc);
    println!("AUC this work  = {:.3}", our_roc.auc);
    println!("(paper: our curve fully encloses S3DET's; our AUC is larger)");

    if let Err(e) = fs::write("fig6.csv", &csv) {
        eprintln!("note: could not write fig6.csv: {e}");
    } else {
        println!("wrote fig6.csv");
    }
}
