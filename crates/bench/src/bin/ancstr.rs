//! `ancstr` — command-line symmetry-constraint extraction.
//!
//! ```text
//! ancstr extract <netlist.sp> [-o constraints.txt] [--model model.txt]
//!                [--epochs N] [--seed S] [--groups]
//! ancstr train   <netlist.sp>... --model-out model.txt [--epochs N]
//! ancstr stats   <netlist.sp>
//! ```
//!
//! `extract` trains on the input itself unless `--model` supplies a
//! pre-trained model (the inductive mode). `train` fits one universal
//! model over several netlists and saves it.
//!
//! Exit codes are stable so scripts can dispatch on the failure stage:
//! 0 success, 2 usage, 3 file I/O, then per pipeline stage
//! ([`ExtractError::exit_code`]): 4 parse, 5 elaborate, 6 bad
//! configuration or model file, 7 training, 8 inference.

use std::fs;
use std::process::ExitCode;

use ancstr_core::groups::merge_groups;
use ancstr_core::{
    render_groups, write_constraints, ExtractError, ExtractorConfig, SymmetryExtractor,
};
use ancstr_gnn::{HealthConfig, HealthReport};
use ancstr_netlist::flat::FlatCircuit;
use ancstr_netlist::parse::parse_spice_file;

fn usage() -> &'static str {
    "usage:\n  ancstr extract <netlist.sp> [-o FILE] [--model FILE] [--epochs N] [--seed S] [--groups] [--dot FILE]\n  ancstr train <netlist.sp>... --model-out FILE [--epochs N] [--seed S]\n  ancstr stats <netlist.sp>"
}

/// Everything that can go wrong, sorted by exit code: misuse of the
/// command line (2), file I/O (3), and pipeline failures (4–8, from
/// [`ExtractError::exit_code`]).
enum CliError {
    Usage(String),
    Io { path: String, detail: String },
    Pipeline { path: String, err: ExtractError },
}

impl CliError {
    fn exit_code(&self) -> u8 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Io { .. } => 3,
            CliError::Pipeline { err, .. } => err.exit_code(),
        }
    }

    /// Human-readable one-liner for stderr, naming the file and the
    /// pipeline stage that failed.
    fn message(&self) -> String {
        match self {
            CliError::Usage(msg) => format!("{msg}\n{}", usage()),
            CliError::Io { path, detail } => format!("cannot access `{path}`: {detail}"),
            CliError::Pipeline { path, err } => {
                format!("`{path}` failed at the {} stage: {err}", err.stage())
            }
        }
    }
}

fn usage_err(msg: impl Into<String>) -> CliError {
    CliError::Usage(msg.into())
}

fn load(path: &str) -> Result<FlatCircuit, CliError> {
    let pipeline = |err: ExtractError| CliError::Pipeline { path: path.to_owned(), err };
    let nl = parse_spice_file(path).map_err(|e| pipeline(e.into()))?;
    FlatCircuit::elaborate(&nl).map_err(|e| pipeline(e.into()))
}

fn config_with(epochs: Option<usize>, seed: Option<u64>) -> ExtractorConfig {
    let mut cfg = ExtractorConfig::default();
    if let Some(e) = epochs {
        cfg.train.epochs = e;
    }
    if let Some(s) = seed {
        cfg.train.seed = s;
        cfg.gnn.seed = s;
    }
    cfg
}

/// Surface any training anomalies the guardrails recovered from.
fn report_health(health: &HealthReport) {
    for event in &health.retries {
        eprintln!(
            "warning: {} at epoch {} (attempt {}); restored best checkpoint, reseeded to {:#x}",
            event.cause, event.epoch, event.attempt, event.reseeded_to
        );
    }
    if health.clipped_steps > 0 {
        eprintln!("warning: gradient norm clipped on {} steps", health.clipped_steps);
    }
}

struct Args {
    positional: Vec<String>,
    output: Option<String>,
    model: Option<String>,
    model_out: Option<String>,
    epochs: Option<usize>,
    seed: Option<u64>,
    groups: bool,
    dot: Option<String>,
}

fn parse_args(raw: &[String]) -> Result<Args, String> {
    let mut args = Args {
        positional: Vec::new(),
        output: None,
        model: None,
        model_out: None,
        epochs: None,
        seed: None,
        groups: false,
        dot: None,
    };
    let mut it = raw.iter();
    while let Some(a) = it.next() {
        let mut take = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "-o" | "--output" => args.output = Some(take("-o")?),
            "--model" => args.model = Some(take("--model")?),
            "--model-out" => args.model_out = Some(take("--model-out")?),
            "--epochs" => {
                let n: usize = take("--epochs")?.parse().map_err(|_| "bad --epochs")?;
                if n == 0 {
                    return Err("--epochs must be at least 1".to_owned());
                }
                args.epochs = Some(n);
            }
            "--seed" => args.seed = Some(take("--seed")?.parse().map_err(|_| "bad --seed")?),
            "--groups" => args.groups = true,
            "--dot" => args.dot = Some(take("--dot")?),
            other if other.starts_with('-') => return Err(format!("unknown flag `{other}`")),
            other => args.positional.push(other.to_owned()),
        }
    }
    Ok(args)
}

fn cmd_extract(args: Args) -> Result<(), CliError> {
    let [input] = args.positional.as_slice() else {
        return Err(usage_err("extract needs exactly one netlist"));
    };
    let flat = load(input)?;
    eprintln!(
        "{} devices, {} nets, {} hierarchy nodes",
        flat.devices().len(),
        flat.net_count(),
        flat.nodes().len()
    );

    let pipeline = |err: ExtractError| CliError::Pipeline { path: input.clone(), err };
    let mut extractor =
        SymmetryExtractor::try_new(config_with(args.epochs, args.seed)).map_err(pipeline)?;
    if let Some(model_path) = &args.model {
        let text = fs::read_to_string(model_path).map_err(|e| CliError::Io {
            path: model_path.clone(),
            detail: e.to_string(),
        })?;
        extractor = extractor.with_model_text(&text).map_err(|err| CliError::Pipeline {
            path: model_path.clone(),
            err,
        })?;
        eprintln!("loaded pre-trained model from {model_path}");
    } else {
        eprintln!("training on the input netlist ...");
        let (report, health) =
            extractor.try_fit(&[&flat], &HealthConfig::default()).map_err(pipeline)?;
        report_health(&health);
        eprintln!("final loss {:.4}", report.final_loss());
    }

    let result = extractor.try_extract(&flat).map_err(pipeline)?;
    for warning in &result.detection.warnings {
        eprintln!("warning: {warning}");
    }
    eprintln!(
        "{} constraints in {:.1} ms",
        result.detection.constraints.len(),
        result.runtime.as_secs_f64() * 1e3
    );

    if let Some(dot_path) = &args.dot {
        use ancstr_graph::dot::{to_dot, DotOptions};
        use ancstr_graph::{BuildOptions, HetMultigraph};
        let g = HetMultigraph::from_circuit(&flat, &BuildOptions { max_net_degree: Some(64) });
        let constrained: std::collections::HashSet<_> = result
            .detection
            .constraints
            .iter()
            .flat_map(|c| [c.pair.lo(), c.pair.hi()])
            .collect();
        let dot = to_dot(
            &g,
            &DotOptions::default(),
            |v| flat.devices()[g.device_index(v)].path.clone(),
            |v| constrained.contains(&flat.devices()[g.device_index(v)].node),
        );
        fs::write(dot_path, dot)
            .map_err(|e| CliError::Io { path: dot_path.clone(), detail: e.to_string() })?;
        eprintln!("wrote {dot_path}");
    }

    let text = if args.groups {
        render_groups(&flat, &merge_groups(&result.detection.constraints))
    } else {
        write_constraints(&flat, &result.detection.constraints)
    };
    match args.output {
        Some(path) => {
            fs::write(&path, &text)
                .map_err(|e| CliError::Io { path: path.clone(), detail: e.to_string() })?;
            eprintln!("wrote {path}");
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn cmd_train(args: Args) -> Result<(), CliError> {
    if args.positional.is_empty() {
        return Err(usage_err("train needs at least one netlist"));
    }
    let Some(model_out) = &args.model_out else {
        return Err(usage_err("train needs --model-out"));
    };
    let circuits: Vec<FlatCircuit> = args
        .positional
        .iter()
        .map(|p| load(p))
        .collect::<Result<_, _>>()?;
    let refs: Vec<&FlatCircuit> = circuits.iter().collect();
    let corpus = args.positional.join(", ");
    let pipeline = |err: ExtractError| CliError::Pipeline { path: corpus.clone(), err };
    let mut extractor =
        SymmetryExtractor::try_new(config_with(args.epochs, args.seed)).map_err(pipeline)?;
    eprintln!("training on {} circuits ...", refs.len());
    let (report, health) =
        extractor.try_fit(&refs, &HealthConfig::default()).map_err(pipeline)?;
    report_health(&health);
    eprintln!("final loss {:.4}", report.final_loss());
    fs::write(model_out, extractor.model().to_text())
        .map_err(|e| CliError::Io { path: model_out.clone(), detail: e.to_string() })?;
    eprintln!("wrote {model_out}");
    Ok(())
}

fn cmd_stats(args: Args) -> Result<(), CliError> {
    let [input] = args.positional.as_slice() else {
        return Err(usage_err("stats needs exactly one netlist"));
    };
    let flat = load(input)?;
    let stats = ancstr_core::pair_stats(&flat);
    println!("devices      {}", flat.devices().len());
    println!("nets         {}", flat.net_count());
    println!("blocks       {}", flat.blocks().count());
    println!("valid pairs  {}", stats.total);
    println!("  system     {}", stats.system);
    println!("  device     {}", stats.device);
    println!("ground truth {}", stats.positives);
    Ok(())
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = raw.split_first() else {
        eprintln!("{}", usage());
        return ExitCode::from(2);
    };
    let args = match parse_args(rest) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n{}", usage());
            return ExitCode::from(2);
        }
    };
    let result = match cmd.as_str() {
        "extract" => cmd_extract(args),
        "train" => cmd_train(args),
        "stats" => cmd_stats(args),
        other => Err(usage_err(format!("unknown command `{other}`"))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {}", e.message());
            ExitCode::from(e.exit_code())
        }
    }
}
