//! `ancstr` — command-line symmetry-constraint extraction.
//!
//! ```text
//! ancstr extract <netlist.sp> [-o constraints.txt] [--model model.txt]
//!                [--epochs N] [--seed S] [--groups]
//!                [--run-dir DIR] [--resume] [--checkpoint-every N]
//!                [--time-budget SECS]
//! ancstr train   <netlist.sp>... --model-out model.txt [--epochs N]
//!                [--run-dir DIR] [--resume] [--checkpoint-every N]
//!                [--time-budget SECS]
//! ancstr stats   <netlist.sp>
//! ```
//!
//! `extract` trains on the input itself unless `--model` supplies a
//! pre-trained model (the inductive mode). `train` fits one universal
//! model over several netlists and saves it.
//!
//! With `--run-dir`, every pipeline stage writes CRC-sealed artifacts
//! into a durable run directory and records its status in an atomic
//! manifest; training checkpoints every `--checkpoint-every` epochs
//! (default 5). A crashed or deadline-cancelled run is continued with
//! `--resume`, which validates the manifest against the current
//! configuration, skips completed stages, and restarts training from
//! the newest valid checkpoint — the resumed result is bit-identical to
//! an uninterrupted run. `--time-budget SECS` arms a watchdog that
//! requests cooperative cancellation at stage/epoch boundaries,
//! flushing a final checkpoint before exiting with code 10.
//!
//! Exit codes are stable so scripts can dispatch on the failure stage:
//! 0 success, 2 usage, 3 file I/O, then per pipeline stage
//! ([`ExtractError::exit_code`]): 4 parse, 5 elaborate, 6 bad
//! configuration or model file, 7 training, 8 inference, 9 run-store
//! failure (corrupt/mismatched manifest or artifact), and 10 when the
//! time budget expired with the run checkpointed for `--resume`.

use std::fs;
use std::process::ExitCode;
use std::time::Duration;

use ancstr_core::groups::merge_groups;
use ancstr_core::runstore::{DurableFit, RunError, RunOptions, RunSession};
use ancstr_core::{
    confusion_from_decisions, detect_constraints, read_constraints, render_groups,
    valid_pairs, write_constraints, ExtractError, ExtractorConfig, SymmetryExtractor,
};
use ancstr_gnn::{matrix_from_text, matrix_to_text, EmbedError, HealthConfig, HealthReport};
use ancstr_netlist::constraint::ConstraintSet;
use ancstr_netlist::flat::FlatCircuit;
use ancstr_netlist::parse::parse_spice_file;
use ancstr_nn::Matrix;

fn usage() -> &'static str {
    "usage:\n  ancstr extract <netlist.sp> [-o FILE] [--model FILE] [--epochs N] [--seed S] [--groups] [--dot FILE] [--metrics FILE] [--run-dir DIR] [--resume] [--checkpoint-every N] [--time-budget SECS]\n  ancstr train <netlist.sp>... --model-out FILE [--epochs N] [--seed S] [--run-dir DIR] [--resume] [--checkpoint-every N] [--time-budget SECS]\n  ancstr stats <netlist.sp>"
}

/// Everything that can go wrong, sorted by exit code: misuse of the
/// command line (2), file I/O (3), pipeline failures (4–9, from
/// [`ExtractError::exit_code`]), and deadline expiry (10).
enum CliError {
    Usage(String),
    Io { path: String, detail: String },
    Pipeline { path: String, err: ExtractError },
    Deadline { run_dir: String },
}

impl CliError {
    fn exit_code(&self) -> u8 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Io { .. } => 3,
            CliError::Pipeline { err, .. } => err.exit_code(),
            CliError::Deadline { .. } => 10,
        }
    }

    /// Human-readable one-liner for stderr, naming the file and the
    /// pipeline stage that failed.
    fn message(&self) -> String {
        match self {
            CliError::Usage(msg) => format!("{msg}\n{}", usage()),
            CliError::Io { path, detail } => format!("cannot access `{path}`: {detail}"),
            CliError::Pipeline { path, err } => {
                format!("`{path}` failed at the {} stage: {err}", err.stage())
            }
            CliError::Deadline { run_dir } => format!(
                "time budget expired; progress is checkpointed in `{run_dir}` — rerun with \
                 --resume --run-dir {run_dir} to continue"
            ),
        }
    }
}

fn usage_err(msg: impl Into<String>) -> CliError {
    CliError::Usage(msg.into())
}

fn load(path: &str) -> Result<FlatCircuit, CliError> {
    let pipeline = |err: ExtractError| CliError::Pipeline { path: path.to_owned(), err };
    let nl = parse_spice_file(path).map_err(|e| pipeline(e.into()))?;
    FlatCircuit::elaborate(&nl).map_err(|e| pipeline(e.into()))
}

fn config_with(epochs: Option<usize>, seed: Option<u64>) -> ExtractorConfig {
    let mut cfg = ExtractorConfig::default();
    if let Some(e) = epochs {
        cfg.train.epochs = e;
    }
    if let Some(s) = seed {
        cfg.train.seed = s;
        cfg.gnn.seed = s;
    }
    cfg
}

/// Surface any training anomalies the guardrails recovered from.
fn report_health(health: &HealthReport) {
    for event in &health.retries {
        eprintln!(
            "warning: {} at epoch {} (attempt {}); restored best checkpoint, reseeded to {:#x}",
            event.cause, event.epoch, event.attempt, event.reseeded_to
        );
    }
    if health.clipped_steps > 0 {
        eprintln!("warning: gradient norm clipped on {} steps", health.clipped_steps);
    }
}

struct Args {
    positional: Vec<String>,
    output: Option<String>,
    model: Option<String>,
    model_out: Option<String>,
    epochs: Option<usize>,
    seed: Option<u64>,
    groups: bool,
    dot: Option<String>,
    metrics: Option<String>,
    run_dir: Option<String>,
    resume: bool,
    checkpoint_every: Option<usize>,
    time_budget: Option<u64>,
}

fn parse_args(raw: &[String]) -> Result<Args, String> {
    let mut args = Args {
        positional: Vec::new(),
        output: None,
        model: None,
        model_out: None,
        epochs: None,
        seed: None,
        groups: false,
        dot: None,
        metrics: None,
        run_dir: None,
        resume: false,
        checkpoint_every: None,
        time_budget: None,
    };
    let mut it = raw.iter();
    while let Some(a) = it.next() {
        let mut take = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "-o" | "--output" => args.output = Some(take("-o")?),
            "--model" => args.model = Some(take("--model")?),
            "--model-out" => args.model_out = Some(take("--model-out")?),
            "--epochs" => {
                let n: usize = take("--epochs")?.parse().map_err(|_| "bad --epochs")?;
                if n == 0 {
                    return Err("--epochs must be at least 1".to_owned());
                }
                args.epochs = Some(n);
            }
            "--seed" => args.seed = Some(take("--seed")?.parse().map_err(|_| "bad --seed")?),
            "--groups" => args.groups = true,
            "--dot" => args.dot = Some(take("--dot")?),
            "--metrics" => args.metrics = Some(take("--metrics")?),
            "--run-dir" => args.run_dir = Some(take("--run-dir")?),
            "--resume" => args.resume = true,
            "--checkpoint-every" => {
                let n: usize = take("--checkpoint-every")?
                    .parse()
                    .map_err(|_| "bad --checkpoint-every (want a positive integer)")?;
                if n == 0 {
                    return Err("--checkpoint-every must be at least 1".to_owned());
                }
                args.checkpoint_every = Some(n);
            }
            "--time-budget" => {
                let n: u64 = take("--time-budget")?
                    .parse()
                    .map_err(|_| "bad --time-budget (want seconds as a positive integer)")?;
                if n == 0 {
                    return Err("--time-budget must be at least 1 second".to_owned());
                }
                args.time_budget = Some(n);
            }
            other if other.starts_with('-') => return Err(format!("unknown flag `{other}`")),
            other => args.positional.push(other.to_owned()),
        }
    }
    Ok(args)
}

/// Validate the durable-run flags and build [`RunOptions`], or `None`
/// when no `--run-dir` was given. Flag misuse (resume/cadence/budget
/// without a run directory, or an unwritable directory) is a usage
/// error so scripts see exit code 2 before any work starts.
fn run_options(args: &Args) -> Result<Option<RunOptions>, CliError> {
    let Some(dir) = &args.run_dir else {
        if args.resume {
            return Err(usage_err("--resume needs --run-dir"));
        }
        if args.checkpoint_every.is_some() {
            return Err(usage_err("--checkpoint-every needs --run-dir"));
        }
        if args.time_budget.is_some() {
            return Err(usage_err("--time-budget needs --run-dir"));
        }
        return Ok(None);
    };
    // Fail fast on an unusable directory, before any training happens.
    fs::create_dir_all(dir)
        .map_err(|e| usage_err(format!("run directory `{dir}` cannot be created: {e}")))?;
    let probe = std::path::Path::new(dir).join(".ancstr-writable-probe");
    fs::write(&probe, b"probe")
        .map_err(|e| usage_err(format!("run directory `{dir}` is not writable: {e}")))?;
    let _ = fs::remove_file(&probe);

    let mut opts = RunOptions::new(dir);
    opts.resume = args.resume;
    if let Some(n) = args.checkpoint_every {
        opts.checkpoint_every = n;
    }
    if let Some(secs) = args.time_budget {
        opts.cancel.arm_deadline(Duration::from_secs(secs));
    }
    // Crash-injection hook for the resume smoke tests: abort (as a
    // kill would) right after the Nth checkpoint write.
    opts.test_abort_after_checkpoints = std::env::var("ANCSTR_TEST_ABORT_AFTER_CHECKPOINTS")
        .ok()
        .and_then(|v| v.parse().ok());
    Ok(Some(opts))
}

/// Render the Table V / Table VI metric columns (TPR, FPR, PPV, ACC,
/// F₁) of the extracted constraints against the netlist's ground
/// truth, overall and per symmetry level. Deterministic given the same
/// constraints, so CI can diff it across crash/resume runs.
fn render_metrics(flat: &FlatCircuit, constraints: &ConstraintSet) -> String {
    use ancstr_netlist::SymmetryKind;
    let gt = flat.ground_truth();
    let pairs = valid_pairs(flat);
    let confusion = |kind: Option<SymmetryKind>| {
        confusion_from_decisions(
            pairs
                .iter()
                .filter(|p| kind.is_none_or(|k| p.kind == k))
                .map(|p| {
                    let (a, b) = (p.pair.lo(), p.pair.hi());
                    (constraints.contains_pair(a, b), gt.contains_pair(a, b))
                }),
        )
    };
    let mut out = String::from("# level tpr fpr ppv acc f1\n");
    for (level, c) in [
        ("overall", confusion(None)),
        ("system", confusion(Some(SymmetryKind::System))),
        ("device", confusion(Some(SymmetryKind::Device))),
    ] {
        out.push_str(&format!(
            "{level} {:.6} {:.6} {:.6} {:.6} {:.6}\n",
            c.tpr(),
            c.fpr(),
            c.ppv(),
            c.acc(),
            c.f1()
        ));
    }
    out
}

/// Shared output tail of `extract`: optional DOT dump, then the
/// constraint set (or merged groups) to `-o`/stdout.
fn emit_outputs(args: &Args, flat: &FlatCircuit, constraints: &ConstraintSet) -> Result<(), CliError> {
    if let Some(dot_path) = &args.dot {
        use ancstr_graph::dot::{to_dot, DotOptions};
        use ancstr_graph::{BuildOptions, HetMultigraph};
        let g = HetMultigraph::from_circuit(flat, &BuildOptions { max_net_degree: Some(64) });
        let constrained: std::collections::HashSet<_> = constraints
            .iter()
            .flat_map(|c| [c.pair.lo(), c.pair.hi()])
            .collect();
        let dot = to_dot(
            &g,
            &DotOptions::default(),
            |v| flat.devices()[g.device_index(v)].path.clone(),
            |v| constrained.contains(&flat.devices()[g.device_index(v)].node),
        );
        fs::write(dot_path, dot)
            .map_err(|e| CliError::Io { path: dot_path.clone(), detail: e.to_string() })?;
        eprintln!("wrote {dot_path}");
    }

    if let Some(path) = &args.metrics {
        fs::write(path, render_metrics(flat, constraints))
            .map_err(|e| CliError::Io { path: path.clone(), detail: e.to_string() })?;
        eprintln!("wrote {path}");
    }

    let text = if args.groups {
        render_groups(flat, &merge_groups(constraints))
    } else {
        write_constraints(flat, constraints)
    };
    match &args.output {
        Some(path) => {
            fs::write(path, &text)
                .map_err(|e| CliError::Io { path: path.clone(), detail: e.to_string() })?;
            eprintln!("wrote {path}");
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn cmd_extract(args: Args) -> Result<(), CliError> {
    let run = run_options(&args)?;
    let [input] = args.positional.as_slice() else {
        return Err(usage_err("extract needs exactly one netlist"));
    };
    if let Some(opts) = run {
        if args.model.is_some() {
            return Err(usage_err(
                "--model cannot be combined with --run-dir: a durable run owns its own \
                 training stage",
            ));
        }
        return cmd_extract_durable(&args, input, opts);
    }
    let flat = load(input)?;
    eprintln!(
        "{} devices, {} nets, {} hierarchy nodes",
        flat.devices().len(),
        flat.net_count(),
        flat.nodes().len()
    );

    let pipeline = |err: ExtractError| CliError::Pipeline { path: input.clone(), err };
    let mut extractor =
        SymmetryExtractor::try_new(config_with(args.epochs, args.seed)).map_err(pipeline)?;
    if let Some(model_path) = &args.model {
        let text = fs::read_to_string(model_path).map_err(|e| CliError::Io {
            path: model_path.clone(),
            detail: e.to_string(),
        })?;
        extractor = extractor.with_model_text(&text).map_err(|err| CliError::Pipeline {
            path: model_path.clone(),
            err,
        })?;
        eprintln!("loaded pre-trained model from {model_path}");
    } else {
        eprintln!("training on the input netlist ...");
        let (report, health) =
            extractor.try_fit(&[&flat], &HealthConfig::default()).map_err(pipeline)?;
        report_health(&health);
        eprintln!("final loss {:.4}", report.final_loss());
    }

    let result = extractor.try_extract(&flat).map_err(pipeline)?;
    for warning in &result.detection.warnings {
        eprintln!("warning: {warning}");
    }
    eprintln!(
        "{} constraints in {:.1} ms",
        result.detection.constraints.len(),
        result.runtime.as_secs_f64() * 1e3
    );
    emit_outputs(&args, &flat, &result.detection.constraints)
}

/// The crash-safe extract path: every stage lands in the run directory,
/// completed stages are skipped on `--resume`, and the cancel token is
/// honoured between stages (and, inside training, between epochs).
fn cmd_extract_durable(args: &Args, input: &str, opts: RunOptions) -> Result<(), CliError> {
    let run_dir = opts.run_dir.display().to_string();
    let config = config_with(args.epochs, args.seed);
    let pipeline = |err: ExtractError| CliError::Pipeline { path: input.to_owned(), err };
    let run_err =
        |e: RunError| CliError::Pipeline { path: run_dir.clone(), err: ExtractError::Run(e) };

    let flat = load(input)?;
    eprintln!(
        "{} devices, {} nets, {} hierarchy nodes",
        flat.devices().len(),
        flat.net_count(),
        flat.nodes().len()
    );
    let mut session =
        RunSession::open(opts, "extract", &config, std::slice::from_ref(&input.to_owned()))
            .map_err(run_err)?;
    let deadline = |session: &RunSession| -> Result<(), CliError> {
        if session.cancelled() {
            Err(CliError::Deadline { run_dir: run_dir.clone() })
        } else {
            Ok(())
        }
    };

    // Stage: graph. Cheap and deterministic, so the artifact is a
    // sealed summary that pins what the rest of the run was built from.
    if session.stage_done("graph") {
        eprintln!("[run] graph stage already done; skipping");
    } else {
        let meta = format!(
            "netlist {input}\ndevices {}\nnets {}\nnodes {}\n",
            flat.devices().len(),
            flat.net_count(),
            flat.nodes().len()
        );
        session.complete_stage("graph", "graph.meta", "graph-meta", &meta).map_err(run_err)?;
    }
    deadline(&session)?;

    // Stage: train (checkpointed; resumes bit-identically).
    let mut extractor = SymmetryExtractor::try_new(config.clone()).map_err(pipeline)?;
    match extractor
        .fit_durable(&[&flat], &HealthConfig::default(), &mut session)
        .map_err(pipeline)?
    {
        DurableFit::Cancelled { after_epoch } => {
            eprintln!("[run] training cancelled after epoch {after_epoch}; checkpoint flushed");
            return Err(CliError::Deadline { run_dir });
        }
        DurableFit::Completed { report, health, resumed_from, notes } => {
            for note in &notes {
                eprintln!("[run] {note}");
            }
            if session.stage_done("train") && report.epoch_losses.is_empty() {
                eprintln!("[run] train stage already done; skipping");
            }
            if let Some(epoch) = resumed_from {
                eprintln!("[run] resumed training from the epoch-{epoch} checkpoint");
            }
            report_health(&health);
            if let Some(loss) = report.epoch_losses.last() {
                eprintln!("final loss {loss:.4}");
            }
        }
    }
    deadline(&session)?;

    // Stage: embed. A corrupt artifact degrades to recomputation.
    let tg = extractor.train_graph(&flat);
    let expected_shape = (tg.tensors.vertex_count(), extractor.model().config().dim);
    let compute_z = |extractor: &SymmetryExtractor| -> Result<Matrix, CliError> {
        match extractor.model().try_embed(&tg.tensors, &tg.features) {
            Ok(z) => Ok(z),
            // Poisoned inputs still yield a degraded-but-valid run;
            // detection quarantines the affected rows behind warnings.
            Err(EmbedError::NonFiniteFeatures) => {
                Ok(extractor.model().embed(&tg.tensors, &tg.features))
            }
            Err(other) => Err(pipeline(ExtractError::Embed(other))),
        }
    };
    let z = if session.stage_done("embed") {
        let reloaded = session
            .store()
            .read_artifact("embeddings.txt", "embeddings")
            .map_err(|e| e.to_string())
            .and_then(|payload| matrix_from_text(&payload).map_err(|e| e.to_string()));
        match reloaded {
            Ok(z) if z.shape() == expected_shape => {
                eprintln!("[run] embed stage already done; loaded sealed embeddings");
                z
            }
            Ok(z) => {
                eprintln!(
                    "[run] embeddings artifact has shape {:?}, expected {expected_shape:?}; \
                     recomputing",
                    z.shape()
                );
                let z = compute_z(&extractor)?;
                session
                    .store()
                    .write_artifact("embeddings.txt", "embeddings", &matrix_to_text(&z))
                    .map_err(run_err)?;
                z
            }
            Err(reason) => {
                eprintln!("[run] embeddings artifact unusable ({reason}); recomputing");
                let z = compute_z(&extractor)?;
                session
                    .store()
                    .write_artifact("embeddings.txt", "embeddings", &matrix_to_text(&z))
                    .map_err(run_err)?;
                z
            }
        }
    } else {
        let z = compute_z(&extractor)?;
        session
            .complete_stage("embed", "embeddings.txt", "embeddings", &matrix_to_text(&z))
            .map_err(run_err)?;
        z
    };
    deadline(&session)?;

    // Stage: detect. The artifact is the exported constraint set.
    let constraints = if session.stage_done("detect") {
        let reloaded = session
            .store()
            .read_artifact("constraints.txt", "constraints")
            .map_err(|e| e.to_string())
            .and_then(|payload| read_constraints(&flat, &payload).map_err(|e| e.to_string()));
        match reloaded {
            Ok(set) => {
                eprintln!("[run] detect stage already done; loaded sealed constraints");
                set
            }
            Err(reason) => {
                eprintln!("[run] constraints artifact unusable ({reason}); re-detecting");
                let detection =
                    detect_constraints(&flat, &z, &config.thresholds, &config.embed);
                for warning in &detection.warnings {
                    eprintln!("warning: {warning}");
                }
                session
                    .store()
                    .write_artifact(
                        "constraints.txt",
                        "constraints",
                        &write_constraints(&flat, &detection.constraints),
                    )
                    .map_err(run_err)?;
                detection.constraints
            }
        }
    } else {
        let detection = detect_constraints(&flat, &z, &config.thresholds, &config.embed);
        for warning in &detection.warnings {
            eprintln!("warning: {warning}");
        }
        session
            .complete_stage(
                "detect",
                "constraints.txt",
                "constraints",
                &write_constraints(&flat, &detection.constraints),
            )
            .map_err(run_err)?;
        detection.constraints
    };

    eprintln!("{} constraints (run `{run_dir}` complete)", constraints.len());
    emit_outputs(args, &flat, &constraints)
}

fn cmd_train(args: Args) -> Result<(), CliError> {
    let run = run_options(&args)?;
    if args.positional.is_empty() {
        return Err(usage_err("train needs at least one netlist"));
    }
    let Some(model_out) = args.model_out.clone() else {
        return Err(usage_err("train needs --model-out"));
    };
    let circuits: Vec<FlatCircuit> = args
        .positional
        .iter()
        .map(|p| load(p))
        .collect::<Result<_, _>>()?;
    let refs: Vec<&FlatCircuit> = circuits.iter().collect();
    let corpus = args.positional.join(", ");
    let pipeline = |err: ExtractError| CliError::Pipeline { path: corpus.clone(), err };
    let config = config_with(args.epochs, args.seed);
    let mut extractor = SymmetryExtractor::try_new(config.clone()).map_err(pipeline)?;

    if let Some(opts) = run {
        let run_dir = opts.run_dir.display().to_string();
        let run_err =
            |e: RunError| CliError::Pipeline { path: run_dir.clone(), err: ExtractError::Run(e) };
        let mut session =
            RunSession::open(opts, "train", &config, &args.positional).map_err(run_err)?;
        if session.stage_done("graph") {
            eprintln!("[run] graph stage already done; skipping");
        } else {
            let meta = format!(
                "netlists {corpus}\ncircuits {}\ndevices {}\n",
                refs.len(),
                refs.iter().map(|f| f.devices().len()).sum::<usize>()
            );
            session.complete_stage("graph", "graph.meta", "graph-meta", &meta).map_err(run_err)?;
        }
        if session.cancelled() {
            return Err(CliError::Deadline { run_dir });
        }
        eprintln!("training on {} circuits ...", refs.len());
        match extractor
            .fit_durable(&refs, &HealthConfig::default(), &mut session)
            .map_err(pipeline)?
        {
            DurableFit::Cancelled { after_epoch } => {
                eprintln!(
                    "[run] training cancelled after epoch {after_epoch}; checkpoint flushed"
                );
                return Err(CliError::Deadline { run_dir });
            }
            DurableFit::Completed { report, health, resumed_from, notes } => {
                for note in &notes {
                    eprintln!("[run] {note}");
                }
                if let Some(epoch) = resumed_from {
                    eprintln!("[run] resumed training from the epoch-{epoch} checkpoint");
                }
                report_health(&health);
                if let Some(loss) = report.epoch_losses.last() {
                    eprintln!("final loss {loss:.4}");
                }
            }
        }
    } else {
        eprintln!("training on {} circuits ...", refs.len());
        let (report, health) =
            extractor.try_fit(&refs, &HealthConfig::default()).map_err(pipeline)?;
        report_health(&health);
        eprintln!("final loss {:.4}", report.final_loss());
    }

    fs::write(&model_out, extractor.model().to_text())
        .map_err(|e| CliError::Io { path: model_out.clone(), detail: e.to_string() })?;
    eprintln!("wrote {model_out}");
    Ok(())
}

fn cmd_stats(args: Args) -> Result<(), CliError> {
    let [input] = args.positional.as_slice() else {
        return Err(usage_err("stats needs exactly one netlist"));
    };
    let flat = load(input)?;
    let stats = ancstr_core::pair_stats(&flat);
    println!("devices      {}", flat.devices().len());
    println!("nets         {}", flat.net_count());
    println!("blocks       {}", flat.blocks().count());
    println!("valid pairs  {}", stats.total);
    println!("  system     {}", stats.system);
    println!("  device     {}", stats.device);
    println!("ground truth {}", stats.positives);
    Ok(())
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = raw.split_first() else {
        eprintln!("{}", usage());
        return ExitCode::from(2);
    };
    let args = match parse_args(rest) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n{}", usage());
            return ExitCode::from(2);
        }
    };
    let result = match cmd.as_str() {
        "extract" => cmd_extract(args),
        "train" => cmd_train(args),
        "stats" => cmd_stats(args),
        other => Err(usage_err(format!("unknown command `{other}`"))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {}", e.message());
            ExitCode::from(e.exit_code())
        }
    }
}
