//! `ancstr` — command-line symmetry-constraint extraction.
//!
//! ```text
//! ancstr extract <netlist.sp> [-o constraints.txt] [--model model.txt]
//!                [--epochs N] [--seed S] [--groups]
//!                [--constraint-format magical|align-json]
//!                [--run-dir DIR] [--resume] [--checkpoint-every N]
//!                [--time-budget SECS] [--trace-out FILE]
//!                [--log-format text|json] [-v|--quiet]
//! ancstr train   <netlist.sp>... --model-out model.txt [--epochs N]
//!                [--run-dir DIR] [--resume] [--checkpoint-every N]
//!                [--time-budget SECS] [--trace-out FILE]
//! ancstr stats   <netlist.sp>
//! ancstr corpus  --devices N [--seed S] [-o netlist.sp]
//! ancstr obs-check [--trace FILE] [--require-stages a,b,..]
//!                  [--require-epoch-events] [--prom FILE] [--align FILE]
//! ancstr obs-report <trace.jsonl>...
//! ancstr serve   --model model.txt [--port N] [--workers N]
//!                [--queue-depth N] [--cache-entries N]
//!                [--peers host:port,..] [--batch-max N] [--model-slots N]
//!                [--trace-out FILE] [--log-format text|json] [-v|--quiet]
//! ancstr bench   [netlist.sp...] [-o report.json] [--epochs N] [--seed S]
//!                [--threads N] [--stress-devices N] [--backend scalar|simd]
//!                [--repeat N]
//! ```
//!
//! `extract` trains on the input itself unless `--model` supplies a
//! pre-trained model (the inductive mode). `train` fits one universal
//! model over several netlists and saves it.
//!
//! `--threads N` caps the deterministic compute layer's worker count
//! (default: the machine's available parallelism). Outputs are
//! byte-identical at every thread count — `--threads 1` runs the exact
//! same computation sequentially.
//!
//! `extract` writes the MAGICAL-style constraint text by default;
//! `--constraint-format align-json` emits the ALIGN-compatible JSON
//! document (`SymmBlock`/`SymmNet`/`Align` arrays) produced by
//! `ancstr-hier` instead. `corpus` generates a seeded scale-sweep
//! stress netlist (a time-interleaved ADC array sized to `--devices`
//! primitives, exact hierarchical ground truth included) for
//! throughput experiments.
//!
//! `bench` times each pipeline stage (graph-build, train, embed,
//! detect) on the ADC1–ADC5 suite — or on the given netlists — at 1, 2,
//! and N threads, for both kernel backends (scalar and SIMD) unless
//! `--backend` pins one, writes a JSON report (default
//! `BENCH_PR10.json`) with per-kernel attribution
//! (matmul/spmm/axpy/row_norms calls, element counts, and wall time per
//! backend and thread count), and fails with exit code 1 if any thread
//! count *or backend* changes the extraction output hash. A `stress`
//! stage additionally times inductive extraction (graph-build + embed +
//! pruned detect) over a generated `--stress-devices` corpus (default
//! 10000; 0 disables the stage's work but keeps its rows so report
//! consumers see a stable stage set). `--repeat N` runs each
//! (backend, thread-count) sweep N times and reports the per-stage
//! minimum wall time — the standard way to push scheduler noise below
//! the effect being measured — while asserting the output hash is
//! identical on every repetition.
//!
//! `serve` keeps a trained model warm in a long-lived HTTP daemon
//! (`ancstr-serve`): `POST /v1/extract` takes a SPICE netlist body and
//! returns the constraint set as JSON (byte-identical `constraints_text`
//! to one-shot `extract --model`), `GET /healthz` and `GET /metrics`
//! report liveness and Prometheus metrics, `POST /v1/models` hot-swaps
//! the model from a sealed artifact, and `POST /v1/shutdown` drains and
//! exits. On startup the daemon prints `listening on <addr>` to stdout
//! (use `--port 0` for an ephemeral port and parse that line). The
//! companion `loadgen` binary drives a running daemon for smoke tests
//! and throughput baselines.
//!
//! With `--run-dir`, every pipeline stage writes CRC-sealed artifacts
//! into a durable run directory and records its status in an atomic
//! manifest; training checkpoints every `--checkpoint-every` epochs
//! (default 5). A crashed or deadline-cancelled run is continued with
//! `--resume`, which validates the manifest against the current
//! configuration, skips completed stages, and restarts training from
//! the newest valid checkpoint — the resumed result is bit-identical to
//! an uninterrupted run. `--time-budget SECS` arms a watchdog that
//! requests cooperative cancellation at stage/epoch boundaries,
//! flushing a final checkpoint before exiting with code 10.
//!
//! Observability: `--trace-out FILE` streams span-based JSONL trace
//! events (one JSON object per line; see the README "Observability"
//! section for the schema) covering every pipeline stage plus
//! per-epoch training telemetry; with `--run-dir` the same run also
//! writes `<run-dir>/metrics.prom` (Prometheus text exposition) at
//! every stage boundary — including on an aborted run, together with a
//! terminal `run_aborted` trace event. `--log-format json` turns the
//! diagnostic stderr stream into JSON lines, and `-v` / `--quiet`
//! widen or silence it. With none of these flags set the pipeline runs
//! the exact pre-observability code path and its outputs are
//! byte-identical. `obs-check` re-validates a trace file and/or a
//! `metrics.prom` exposition line-by-line (used by CI). `obs-report`
//! merges one or more JSONL trace files by trace id and renders
//! per-trace waterfalls plus aggregate per-stage latency quantiles —
//! feed it the `--trace-out` files from several serve replicas to see
//! a forwarded request as a single cross-replica timeline.
//!
//! Exit codes are stable so scripts can dispatch on the failure stage:
//! 0 success, 1 failed `obs-check` validation, 2 usage, 3 file I/O,
//! then per pipeline stage ([`ExtractError::exit_code`]): 4 parse, 5
//! elaborate, 6 bad configuration or model file, 7 training, 8
//! inference, 9 run-store failure (corrupt/mismatched manifest or
//! artifact), and 10 when the time budget expired with the run
//! checkpointed for `--resume`.

use std::fs;
use std::path::Path;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use ancstr_core::groups::merged_groups_sorted;
use ancstr_core::runstore::{DurableFit, RunError, RunOptions, RunSession};
use ancstr_core::{
    detect_constraints, detect_constraints_pruned, load_netlist_observed, read_constraints,
    render_groups, render_metrics_table, write_constraints, ExtractError, ExtractorConfig,
    PipelineObs, SymmetryExtractor, STAGES,
};
use ancstr_gnn::{matrix_from_text, matrix_to_text, EmbedError, HealthConfig, HealthReport};
use ancstr_netlist::constraint::ConstraintSet;
use ancstr_netlist::flat::FlatCircuit;
use ancstr_nn::{BackendKind, Matrix};
use ancstr_obs::{
    analyze, validate_exposition, validate_trace, LogFormat, Logger, TraceFile, Tracer,
    Verbosity,
};

fn usage() -> &'static str {
    "usage:\n  ancstr extract <netlist.sp> [-o FILE] [--model FILE] [--epochs N] [--seed S] [--threads N] [--groups] [--constraint-format magical|align-json] [--dot FILE] [--metrics FILE] [--run-dir DIR] [--resume] [--checkpoint-every N] [--time-budget SECS] [--trace-out FILE] [--log-format text|json] [-v|--quiet]\n  ancstr train <netlist.sp>... --model-out FILE [--epochs N] [--seed S] [--threads N] [--run-dir DIR] [--resume] [--checkpoint-every N] [--time-budget SECS] [--trace-out FILE] [--log-format text|json] [-v|--quiet]\n  ancstr stats <netlist.sp>\n  ancstr corpus --devices N [--seed S] [-o FILE]\n  ancstr obs-check [--trace FILE] [--require-stages a,b,..] [--require-epoch-events] [--prom FILE] [--align FILE]\n  ancstr obs-report <trace.jsonl>...\n  ancstr serve --model FILE [--port N] [--workers N] [--queue-depth N] [--cache-entries N] [--default-deadline-ms N] [--chaos] [--metrics FILE] [--threads N] [--trace-out FILE] [--log-format text|json] [-v|--quiet]\n  ancstr bench [netlist.sp...] [-o report.json] [--epochs N] [--seed S] [--threads N] [--stress-devices N] [--backend scalar|simd] [--repeat N]"
}

/// Everything that can go wrong, sorted by exit code: failed
/// observability validation (1), misuse of the command line (2), file
/// I/O (3), pipeline failures (4–9, from [`ExtractError::exit_code`]),
/// and deadline expiry (10).
enum CliError {
    Validation(String),
    Usage(String),
    Io { path: String, detail: String },
    Pipeline { path: String, err: ExtractError },
    Deadline { run_dir: String },
}

impl CliError {
    fn exit_code(&self) -> u8 {
        match self {
            CliError::Validation(_) => 1,
            CliError::Usage(_) => 2,
            CliError::Io { .. } => 3,
            CliError::Pipeline { err, .. } => err.exit_code(),
            CliError::Deadline { .. } => 10,
        }
    }

    /// Human-readable one-liner for stderr, naming the file and the
    /// pipeline stage that failed.
    fn message(&self) -> String {
        match self {
            CliError::Validation(msg) => msg.clone(),
            CliError::Usage(msg) => format!("{msg}\n{}", usage()),
            CliError::Io { path, detail } => format!("cannot access `{path}`: {detail}"),
            CliError::Pipeline { path, err } => {
                format!("`{path}` failed at the {} stage: {err}", err.stage())
            }
            CliError::Deadline { run_dir } => format!(
                "time budget expired; progress is checkpointed in `{run_dir}` — rerun with \
                 --resume --run-dir {run_dir} to continue"
            ),
        }
    }
}

fn usage_err(msg: impl Into<String>) -> CliError {
    CliError::Usage(msg.into())
}

/// The CLI's observability context: one structured logger for stderr
/// and one [`PipelineObs`] handle shared by every pipeline call. With
/// no `--trace-out` and no `--run-dir` the obs handle is disabled and
/// the pipeline takes its exact pre-observability code path.
struct ObsCtx {
    log: Logger,
    obs: PipelineObs,
}

impl ObsCtx {
    /// Build the observability context a command actually needs:
    ///
    /// - `stats` and `obs-check` never run the pipeline, so they skip
    ///   tracer setup entirely (a stray `--trace-out` would otherwise
    ///   create an empty file that fails `obs-check` later);
    /// - `serve` always collects metrics — it exposes `/metrics` — and
    ///   attaches a tracer only for `--trace-out`;
    /// - `extract`/`train` enable observation iff `--trace-out` or
    ///   `--run-dir` asks for it, keeping the exact pre-observability
    ///   code path otherwise.
    fn for_command(cmd: &str, args: &Args) -> Result<ObsCtx, CliError> {
        let log = Logger::stderr(args.log_format, args.verbosity);
        if matches!(cmd, "stats" | "corpus" | "obs-check" | "obs-report" | "bench") {
            return Ok(ObsCtx { log, obs: PipelineObs::disabled() });
        }
        let tracer = match &args.trace_out {
            Some(path) => Some(Tracer::to_file(Path::new(path)).map_err(|e| CliError::Io {
                path: path.clone(),
                detail: format!("cannot create trace file: {e}"),
            })?),
            None => None,
        };
        let obs = if cmd == "serve" || tracer.is_some() || args.run_dir.is_some() {
            PipelineObs::new(tracer)
        } else {
            PipelineObs::disabled()
        };
        Ok(ObsCtx { log, obs })
    }
}

fn load(path: &str, ctx: &ObsCtx) -> Result<FlatCircuit, CliError> {
    load_netlist_observed(path, &ctx.obs)
        .map_err(|err| CliError::Pipeline { path: path.to_owned(), err })
}

fn config_with(epochs: Option<usize>, seed: Option<u64>) -> ExtractorConfig {
    let mut cfg = ExtractorConfig::default();
    if let Some(e) = epochs {
        cfg.train.epochs = e;
    }
    if let Some(s) = seed {
        cfg.train.seed = s;
        cfg.gnn.seed = s;
    }
    cfg
}

/// Surface any training anomalies the guardrails recovered from.
fn report_health(log: &Logger, health: &HealthReport) {
    for event in &health.retries {
        log.warn(format!(
            "{} at epoch {} (attempt {}); restored best checkpoint, reseeded to {:#x}",
            event.cause, event.epoch, event.attempt, event.reseeded_to
        ));
    }
    if health.clipped_steps > 0 {
        log.warn(format!("gradient norm clipped on {} steps", health.clipped_steps));
    }
}

/// Constraint serialization selected by `--constraint-format`.
#[derive(Clone, Copy, PartialEq, Eq)]
enum ConstraintFormat {
    /// The MAGICAL-style text exporter (the default).
    Magical,
    /// The ALIGN-compatible JSON document from `ancstr-hier`.
    AlignJson,
}

struct Args {
    positional: Vec<String>,
    output: Option<String>,
    model: Option<String>,
    model_out: Option<String>,
    epochs: Option<usize>,
    seed: Option<u64>,
    groups: bool,
    constraint_format: ConstraintFormat,
    dot: Option<String>,
    metrics: Option<String>,
    run_dir: Option<String>,
    resume: bool,
    checkpoint_every: Option<usize>,
    time_budget: Option<u64>,
    trace_out: Option<String>,
    log_format: LogFormat,
    verbosity: Verbosity,
    // obs-check inputs
    trace: Option<String>,
    prom: Option<String>,
    align: Option<String>,
    require_stages: Option<String>,
    require_epoch_events: bool,
    // corpus / bench stress sizing
    devices: Option<usize>,
    stress_devices: Option<usize>,
    repeat: Option<usize>,
    // serve tunables
    port: Option<u16>,
    workers: Option<usize>,
    queue_depth: Option<usize>,
    cache_entries: Option<usize>,
    default_deadline_ms: Option<u64>,
    chaos: bool,
    peers: Option<String>,
    batch_max: Option<usize>,
    model_slots: Option<usize>,
    // compute-layer thread cap (None = available parallelism)
    threads: Option<usize>,
    // compute-kernel backend (None = ANCSTR_BACKEND env or the SIMD
    // default; bench sweeps both backends when unset)
    backend: Option<BackendKind>,
}

fn parse_args(raw: &[String]) -> Result<Args, String> {
    let mut args = Args {
        positional: Vec::new(),
        output: None,
        model: None,
        model_out: None,
        epochs: None,
        seed: None,
        groups: false,
        constraint_format: ConstraintFormat::Magical,
        dot: None,
        metrics: None,
        run_dir: None,
        resume: false,
        checkpoint_every: None,
        time_budget: None,
        trace_out: None,
        log_format: LogFormat::Text,
        verbosity: Verbosity::Normal,
        trace: None,
        prom: None,
        align: None,
        require_stages: None,
        require_epoch_events: false,
        devices: None,
        stress_devices: None,
        repeat: None,
        port: None,
        workers: None,
        queue_depth: None,
        cache_entries: None,
        default_deadline_ms: None,
        chaos: false,
        peers: None,
        batch_max: None,
        model_slots: None,
        threads: None,
        backend: None,
    };
    let mut it = raw.iter();
    while let Some(a) = it.next() {
        let mut take = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "-o" | "--output" => args.output = Some(take("-o")?),
            "--model" => args.model = Some(take("--model")?),
            "--model-out" => args.model_out = Some(take("--model-out")?),
            "--epochs" => {
                let n: usize = take("--epochs")?.parse().map_err(|_| "bad --epochs")?;
                if n == 0 {
                    return Err("--epochs must be at least 1".to_owned());
                }
                args.epochs = Some(n);
            }
            "--seed" => args.seed = Some(take("--seed")?.parse().map_err(|_| "bad --seed")?),
            "--groups" => args.groups = true,
            "--constraint-format" => {
                let v = take("--constraint-format")?;
                args.constraint_format = match v.as_str() {
                    "magical" => ConstraintFormat::Magical,
                    "align-json" => ConstraintFormat::AlignJson,
                    _ => {
                        return Err(format!(
                            "bad --constraint-format `{v}` (want magical or align-json)"
                        ))
                    }
                };
            }
            "--devices" => {
                let n: usize = take("--devices")?
                    .parse()
                    .map_err(|_| "bad --devices (want a positive integer)")?;
                if n == 0 {
                    return Err("--devices must be at least 1".to_owned());
                }
                args.devices = Some(n);
            }
            "--stress-devices" => {
                args.stress_devices = Some(
                    take("--stress-devices")?
                        .parse()
                        .map_err(|_| "bad --stress-devices (want an integer; 0 disables)")?,
                );
            }
            "--repeat" => {
                let n: usize = take("--repeat")?
                    .parse()
                    .map_err(|_| "bad --repeat (want a positive integer)")?;
                if n == 0 {
                    return Err("--repeat must be at least 1".to_owned());
                }
                args.repeat = Some(n);
            }
            "--align" => args.align = Some(take("--align")?),
            "--dot" => args.dot = Some(take("--dot")?),
            "--metrics" => args.metrics = Some(take("--metrics")?),
            "--run-dir" => args.run_dir = Some(take("--run-dir")?),
            "--resume" => args.resume = true,
            "--checkpoint-every" => {
                let n: usize = take("--checkpoint-every")?
                    .parse()
                    .map_err(|_| "bad --checkpoint-every (want a positive integer)")?;
                if n == 0 {
                    return Err("--checkpoint-every must be at least 1".to_owned());
                }
                args.checkpoint_every = Some(n);
            }
            "--time-budget" => {
                let n: u64 = take("--time-budget")?
                    .parse()
                    .map_err(|_| "bad --time-budget (want seconds as a positive integer)")?;
                if n == 0 {
                    return Err("--time-budget must be at least 1 second".to_owned());
                }
                args.time_budget = Some(n);
            }
            "--trace-out" => args.trace_out = Some(take("--trace-out")?),
            "--log-format" => {
                let v = take("--log-format")?;
                args.log_format = LogFormat::parse(&v)
                    .ok_or_else(|| format!("bad --log-format `{v}` (want text or json)"))?;
            }
            "-v" | "--verbose" => args.verbosity = Verbosity::Verbose,
            "-q" | "--quiet" => args.verbosity = Verbosity::Quiet,
            "--trace" => args.trace = Some(take("--trace")?),
            "--prom" => args.prom = Some(take("--prom")?),
            "--port" => {
                args.port =
                    Some(take("--port")?.parse().map_err(|_| "bad --port (want 0..=65535)")?);
            }
            "--workers" => {
                let n: usize = take("--workers")?
                    .parse()
                    .map_err(|_| "bad --workers (want a positive integer)")?;
                if n == 0 {
                    return Err("--workers must be at least 1".to_owned());
                }
                args.workers = Some(n);
            }
            "--queue-depth" => {
                let n: usize = take("--queue-depth")?
                    .parse()
                    .map_err(|_| "bad --queue-depth (want a positive integer)")?;
                if n == 0 {
                    return Err("--queue-depth must be at least 1".to_owned());
                }
                args.queue_depth = Some(n);
            }
            "--cache-entries" => {
                args.cache_entries = Some(
                    take("--cache-entries")?
                        .parse()
                        .map_err(|_| "bad --cache-entries (want an integer; 0 disables)")?,
                );
            }
            "--default-deadline-ms" => {
                let n: u64 = take("--default-deadline-ms")?
                    .parse()
                    .map_err(|_| "bad --default-deadline-ms (want milliseconds)")?;
                if n == 0 {
                    return Err("--default-deadline-ms must be at least 1".to_owned());
                }
                args.default_deadline_ms = Some(n);
            }
            "--chaos" => args.chaos = true,
            "--peers" => args.peers = Some(take("--peers")?),
            "--batch-max" => {
                let n: usize = take("--batch-max")?
                    .parse()
                    .map_err(|_| "bad --batch-max (want a positive integer)")?;
                if n == 0 {
                    return Err("--batch-max must be at least 1".to_owned());
                }
                args.batch_max = Some(n);
            }
            "--model-slots" => {
                let n: usize = take("--model-slots")?
                    .parse()
                    .map_err(|_| "bad --model-slots (want a positive integer)")?;
                if n == 0 {
                    return Err("--model-slots must be at least 1".to_owned());
                }
                args.model_slots = Some(n);
            }
            "--threads" => {
                let n: usize = take("--threads")?
                    .parse()
                    .map_err(|_| "bad --threads (want a positive integer)")?;
                if n == 0 {
                    return Err("--threads must be at least 1".to_owned());
                }
                args.threads = Some(n);
            }
            "--backend" => {
                let v = take("--backend")?;
                args.backend = Some(
                    BackendKind::parse(&v)
                        .ok_or_else(|| format!("bad --backend `{v}` (want scalar or simd)"))?,
                );
            }
            "--require-stages" => args.require_stages = Some(take("--require-stages")?),
            "--require-epoch-events" => args.require_epoch_events = true,
            other if other.starts_with('-') => return Err(format!("unknown flag `{other}`")),
            other => args.positional.push(other.to_owned()),
        }
    }
    Ok(args)
}

/// Validate the durable-run flags and build [`RunOptions`], or `None`
/// when no `--run-dir` was given. Flag misuse (resume/cadence/budget
/// without a run directory, or an unwritable directory) is a usage
/// error so scripts see exit code 2 before any work starts.
fn run_options(args: &Args) -> Result<Option<RunOptions>, CliError> {
    let Some(dir) = &args.run_dir else {
        if args.resume {
            return Err(usage_err("--resume needs --run-dir"));
        }
        if args.checkpoint_every.is_some() {
            return Err(usage_err("--checkpoint-every needs --run-dir"));
        }
        if args.time_budget.is_some() {
            return Err(usage_err("--time-budget needs --run-dir"));
        }
        return Ok(None);
    };
    // Fail fast on an unusable directory, before any training happens.
    fs::create_dir_all(dir)
        .map_err(|e| usage_err(format!("run directory `{dir}` cannot be created: {e}")))?;
    let probe = std::path::Path::new(dir).join(".ancstr-writable-probe");
    fs::write(&probe, b"probe")
        .map_err(|e| usage_err(format!("run directory `{dir}` is not writable: {e}")))?;
    let _ = fs::remove_file(&probe);

    let mut opts = RunOptions::new(dir);
    opts.resume = args.resume;
    if let Some(n) = args.checkpoint_every {
        opts.checkpoint_every = n;
    }
    if let Some(secs) = args.time_budget {
        opts.cancel.arm_deadline(Duration::from_secs(secs));
    }
    // Crash-injection hooks for the resume/abort smoke tests: abort (as
    // a kill would) or cancel (as the watchdog would) right after the
    // Nth checkpoint write.
    opts.test_abort_after_checkpoints = std::env::var("ANCSTR_TEST_ABORT_AFTER_CHECKPOINTS")
        .ok()
        .and_then(|v| v.parse().ok());
    opts.test_cancel_after_checkpoints = std::env::var("ANCSTR_TEST_CANCEL_AFTER_CHECKPOINTS")
        .ok()
        .and_then(|v| v.parse().ok());
    Ok(Some(opts))
}

/// Write the current Prometheus exposition into `<run-dir>/metrics.prom`
/// (atomic temp + rename). Called at every stage boundary; failures are
/// surfaced as warnings — observability must never fail the run.
fn write_prom_checkpoint(ctx: &ObsCtx, run_dir: &str) {
    if !ctx.obs.enabled() {
        return;
    }
    if let Err(e) = ctx.obs.write_prom(&Path::new(run_dir).join("metrics.prom")) {
        ctx.log.warn(format!("could not write metrics.prom: {e}"));
    }
}

/// Shared output tail of `extract`: optional DOT dump, then the
/// constraint set (or merged groups) to `-o`/stdout.
fn emit_outputs(
    ctx: &ObsCtx,
    args: &Args,
    flat: &FlatCircuit,
    constraints: &ConstraintSet,
) -> Result<(), CliError> {
    if let Some(dot_path) = &args.dot {
        use ancstr_graph::dot::{to_dot, DotOptions};
        use ancstr_graph::{BuildOptions, HetMultigraph};
        let g = HetMultigraph::from_circuit(flat, &BuildOptions { max_net_degree: Some(64) });
        let constrained: std::collections::HashSet<_> = constraints
            .iter()
            .flat_map(|c| [c.pair.lo(), c.pair.hi()])
            .collect();
        let dot = to_dot(
            &g,
            &DotOptions::default(),
            |v| flat.devices()[g.device_index(v)].path.clone(),
            |v| constrained.contains(&flat.devices()[g.device_index(v)].node),
        );
        fs::write(dot_path, dot)
            .map_err(|e| CliError::Io { path: dot_path.clone(), detail: e.to_string() })?;
        ctx.log.info(format!("wrote {dot_path}"));
    }

    // The metrics table and the Prometheus quality gauges share one
    // source of truth (`ancstr_core::metrics::level_confusions`).
    if ctx.obs.enabled() {
        ctx.obs.record_quality(flat, constraints);
    }
    if let Some(path) = &args.metrics {
        fs::write(path, render_metrics_table(flat, constraints))
            .map_err(|e| CliError::Io { path: path.clone(), detail: e.to_string() })?;
        ctx.log.info(format!("wrote {path}"));
    }
    if let Some(dir) = &args.run_dir {
        write_prom_checkpoint(ctx, dir);
    }

    let text = match args.constraint_format {
        ConstraintFormat::AlignJson => {
            if args.groups {
                return Err(usage_err(
                    "--groups selects the MAGICAL group view; the ALIGN document already \
                     carries merged groups — drop one of the flags",
                ));
            }
            ancstr_hier::align::export_align(flat, constraints)
        }
        ConstraintFormat::Magical if args.groups => {
            render_groups(flat, &merged_groups_sorted(flat, constraints))
        }
        ConstraintFormat::Magical => write_constraints(flat, constraints),
    };
    match &args.output {
        Some(path) => {
            fs::write(path, &text)
                .map_err(|e| CliError::Io { path: path.clone(), detail: e.to_string() })?;
            ctx.log.info(format!("wrote {path}"));
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn cmd_extract(ctx: &ObsCtx, args: Args) -> Result<(), CliError> {
    let run = run_options(&args)?;
    let [input] = args.positional.as_slice() else {
        return Err(usage_err("extract needs exactly one netlist"));
    };
    if let Some(opts) = run {
        if args.model.is_some() {
            return Err(usage_err(
                "--model cannot be combined with --run-dir: a durable run owns its own \
                 training stage",
            ));
        }
        return cmd_extract_durable(ctx, &args, input, opts);
    }
    let flat = load(input, ctx)?;
    ctx.log.info(format!(
        "{} devices, {} nets, {} hierarchy nodes",
        flat.devices().len(),
        flat.net_count(),
        flat.nodes().len()
    ));

    let pipeline = |err: ExtractError| CliError::Pipeline { path: input.clone(), err };
    let mut extractor =
        SymmetryExtractor::try_new(config_with(args.epochs, args.seed)).map_err(pipeline)?;
    if let Some(model_path) = &args.model {
        let text = fs::read_to_string(model_path).map_err(|e| CliError::Io {
            path: model_path.clone(),
            detail: e.to_string(),
        })?;
        extractor = extractor.with_model_text(&text).map_err(|err| CliError::Pipeline {
            path: model_path.clone(),
            err,
        })?;
        ctx.log.info(format!("loaded pre-trained model from {model_path}"));
    } else {
        ctx.log.info("training on the input netlist ...");
        let (report, health) = extractor
            .try_fit_observed(&[&flat], &HealthConfig::default(), &ctx.obs)
            .map_err(pipeline)?;
        report_health(&ctx.log, &health);
        ctx.log.info(format!("final loss {:.4}", report.final_loss()));
    }

    let result = extractor.try_extract_observed(&flat, &ctx.obs).map_err(pipeline)?;
    for warning in &result.detection.warnings {
        ctx.log.warn(warning);
    }
    ctx.log.info(format!(
        "{} constraints in {:.1} ms",
        result.detection.constraints.len(),
        result.runtime.as_secs_f64() * 1e3
    ));
    emit_outputs(ctx, &args, &flat, &result.detection.constraints)
}

/// The crash-safe extract path: every stage lands in the run directory,
/// completed stages are skipped on `--resume`, and the cancel token is
/// honoured between stages (and, inside training, between epochs).
fn cmd_extract_durable(
    ctx: &ObsCtx,
    args: &Args,
    input: &str,
    opts: RunOptions,
) -> Result<(), CliError> {
    let run_dir = opts.run_dir.display().to_string();
    let config = config_with(args.epochs, args.seed);
    let pipeline = |err: ExtractError| CliError::Pipeline { path: input.to_owned(), err };
    let run_err =
        |e: RunError| CliError::Pipeline { path: run_dir.clone(), err: ExtractError::Run(e) };

    let flat = load(input, ctx)?;
    ctx.log.info(format!(
        "{} devices, {} nets, {} hierarchy nodes",
        flat.devices().len(),
        flat.net_count(),
        flat.nodes().len()
    ));
    let mut session =
        RunSession::open(opts, "extract", &config, std::slice::from_ref(&input.to_owned()))
            .map_err(run_err)?;
    let deadline = |session: &RunSession| -> Result<(), CliError> {
        if session.cancelled() {
            Err(CliError::Deadline { run_dir: run_dir.clone() })
        } else {
            Ok(())
        }
    };

    // Stage: graph. Cheap and deterministic, so the artifact is a
    // sealed summary that pins what the rest of the run was built from.
    if session.stage_done("graph") {
        ctx.log.info("[run] graph stage already done; skipping");
    } else {
        let meta = format!(
            "netlist {input}\ndevices {}\nnets {}\nnodes {}\n",
            flat.devices().len(),
            flat.net_count(),
            flat.nodes().len()
        );
        session.complete_stage("graph", "graph.meta", "graph-meta", &meta).map_err(run_err)?;
    }
    write_prom_checkpoint(ctx, &run_dir);
    deadline(&session)?;

    // Stage: train (checkpointed; resumes bit-identically).
    let mut extractor = SymmetryExtractor::try_new(config.clone()).map_err(pipeline)?;
    match extractor
        .fit_durable_observed(&[&flat], &HealthConfig::default(), &mut session, &ctx.obs)
        .map_err(pipeline)?
    {
        DurableFit::Cancelled { after_epoch } => {
            ctx.log.info(format!(
                "[run] training cancelled after epoch {after_epoch}; checkpoint flushed"
            ));
            return Err(CliError::Deadline { run_dir });
        }
        DurableFit::Completed { report, health, resumed_from, notes } => {
            for note in &notes {
                ctx.log.info(format!("[run] {note}"));
            }
            if session.stage_done("train") && report.epoch_losses.is_empty() {
                ctx.log.info("[run] train stage already done; skipping");
            }
            if let Some(epoch) = resumed_from {
                ctx.log.info(format!("[run] resumed training from the epoch-{epoch} checkpoint"));
            }
            report_health(&ctx.log, &health);
            if let Some(loss) = report.epoch_losses.last() {
                ctx.log.info(format!("final loss {loss:.4}"));
            }
        }
    }
    write_prom_checkpoint(ctx, &run_dir);
    deadline(&session)?;

    // Stage: embed. A corrupt artifact degrades to recomputation.
    let _embed_span =
        if ctx.obs.enabled() { Some(ctx.obs.stage("embed")) } else { None };
    let tg = extractor.train_graph(&flat);
    let expected_shape = (tg.tensors.vertex_count(), extractor.model().config().dim);
    let compute_z = |extractor: &SymmetryExtractor| -> Result<Matrix, CliError> {
        match extractor.model().try_embed(&tg.tensors, &tg.features) {
            Ok(z) => Ok(z),
            // Poisoned inputs still yield a degraded-but-valid run;
            // detection quarantines the affected rows behind warnings.
            Err(EmbedError::NonFiniteFeatures) => {
                Ok(extractor.model().embed(&tg.tensors, &tg.features))
            }
            Err(other) => Err(pipeline(ExtractError::Embed(other))),
        }
    };
    let z = if session.stage_done("embed") {
        let reloaded = session
            .store()
            .read_artifact("embeddings.txt", "embeddings")
            .map_err(|e| e.to_string())
            .and_then(|payload| matrix_from_text(&payload).map_err(|e| e.to_string()));
        match reloaded {
            Ok(z) if z.shape() == expected_shape => {
                ctx.log.info("[run] embed stage already done; loaded sealed embeddings");
                z
            }
            Ok(z) => {
                let note = format!(
                    "embeddings artifact has shape {:?}, expected {expected_shape:?}; \
                     recomputing",
                    z.shape()
                );
                ctx.obs.runstore_note(&note);
                ctx.log.info(format!("[run] {note}"));
                let z = compute_z(&extractor)?;
                session
                    .store()
                    .write_artifact("embeddings.txt", "embeddings", &matrix_to_text(&z))
                    .map_err(run_err)?;
                z
            }
            Err(reason) => {
                let note = format!("embeddings artifact unusable ({reason}); recomputing");
                ctx.obs.runstore_note(&note);
                ctx.log.info(format!("[run] {note}"));
                let z = compute_z(&extractor)?;
                session
                    .store()
                    .write_artifact("embeddings.txt", "embeddings", &matrix_to_text(&z))
                    .map_err(run_err)?;
                z
            }
        }
    } else {
        let z = compute_z(&extractor)?;
        session
            .complete_stage("embed", "embeddings.txt", "embeddings", &matrix_to_text(&z))
            .map_err(run_err)?;
        z
    };
    drop(_embed_span);
    write_prom_checkpoint(ctx, &run_dir);
    deadline(&session)?;

    // Stage: detect. The artifact is the exported constraint set.
    let _detect_span =
        if ctx.obs.enabled() { Some(ctx.obs.stage("detect")) } else { None };
    let constraints = if session.stage_done("detect") {
        let reloaded = session
            .store()
            .read_artifact("constraints.txt", "constraints")
            .map_err(|e| e.to_string())
            .and_then(|payload| read_constraints(&flat, &payload).map_err(|e| e.to_string()));
        match reloaded {
            Ok(set) => {
                ctx.log.info("[run] detect stage already done; loaded sealed constraints");
                set
            }
            Err(reason) => {
                let note = format!("constraints artifact unusable ({reason}); re-detecting");
                ctx.obs.runstore_note(&note);
                ctx.log.info(format!("[run] {note}"));
                let detection =
                    detect_constraints(&flat, &z, &config.thresholds, &config.embed);
                ctx.obs.record_detection(&detection);
                for warning in &detection.warnings {
                    ctx.log.warn(warning);
                }
                session
                    .store()
                    .write_artifact(
                        "constraints.txt",
                        "constraints",
                        &write_constraints(&flat, &detection.constraints),
                    )
                    .map_err(run_err)?;
                detection.constraints
            }
        }
    } else {
        let detection = detect_constraints(&flat, &z, &config.thresholds, &config.embed);
        ctx.obs.record_detection(&detection);
        for warning in &detection.warnings {
            ctx.log.warn(warning);
        }
        session
            .complete_stage(
                "detect",
                "constraints.txt",
                "constraints",
                &write_constraints(&flat, &detection.constraints),
            )
            .map_err(run_err)?;
        detection.constraints
    };
    drop(_detect_span);

    ctx.log.info(format!("{} constraints (run `{run_dir}` complete)", constraints.len()));
    emit_outputs(ctx, args, &flat, &constraints)
}

fn cmd_train(ctx: &ObsCtx, args: Args) -> Result<(), CliError> {
    let run = run_options(&args)?;
    if args.positional.is_empty() {
        return Err(usage_err("train needs at least one netlist"));
    }
    let Some(model_out) = args.model_out.clone() else {
        return Err(usage_err("train needs --model-out"));
    };
    let circuits: Vec<FlatCircuit> = args
        .positional
        .iter()
        .map(|p| load(p, ctx))
        .collect::<Result<_, _>>()?;
    let refs: Vec<&FlatCircuit> = circuits.iter().collect();
    let corpus = args.positional.join(", ");
    let pipeline = |err: ExtractError| CliError::Pipeline { path: corpus.clone(), err };
    let config = config_with(args.epochs, args.seed);
    let mut extractor = SymmetryExtractor::try_new(config.clone()).map_err(pipeline)?;

    if let Some(opts) = run {
        let run_dir = opts.run_dir.display().to_string();
        let run_err =
            |e: RunError| CliError::Pipeline { path: run_dir.clone(), err: ExtractError::Run(e) };
        let mut session =
            RunSession::open(opts, "train", &config, &args.positional).map_err(run_err)?;
        if session.stage_done("graph") {
            ctx.log.info("[run] graph stage already done; skipping");
        } else {
            let meta = format!(
                "netlists {corpus}\ncircuits {}\ndevices {}\n",
                refs.len(),
                refs.iter().map(|f| f.devices().len()).sum::<usize>()
            );
            session.complete_stage("graph", "graph.meta", "graph-meta", &meta).map_err(run_err)?;
        }
        write_prom_checkpoint(ctx, &run_dir);
        if session.cancelled() {
            return Err(CliError::Deadline { run_dir });
        }
        ctx.log.info(format!("training on {} circuits ...", refs.len()));
        match extractor
            .fit_durable_observed(&refs, &HealthConfig::default(), &mut session, &ctx.obs)
            .map_err(pipeline)?
        {
            DurableFit::Cancelled { after_epoch } => {
                ctx.log.info(format!(
                    "[run] training cancelled after epoch {after_epoch}; checkpoint flushed"
                ));
                return Err(CliError::Deadline { run_dir });
            }
            DurableFit::Completed { report, health, resumed_from, notes } => {
                for note in &notes {
                    ctx.log.info(format!("[run] {note}"));
                }
                if let Some(epoch) = resumed_from {
                    ctx.log.info(format!(
                        "[run] resumed training from the epoch-{epoch} checkpoint"
                    ));
                }
                report_health(&ctx.log, &health);
                if let Some(loss) = report.epoch_losses.last() {
                    ctx.log.info(format!("final loss {loss:.4}"));
                }
            }
        }
        write_prom_checkpoint(ctx, &run_dir);
    } else {
        ctx.log.info(format!("training on {} circuits ...", refs.len()));
        let (report, health) = extractor
            .try_fit_observed(&refs, &HealthConfig::default(), &ctx.obs)
            .map_err(pipeline)?;
        report_health(&ctx.log, &health);
        ctx.log.info(format!("final loss {:.4}", report.final_loss()));
    }

    fs::write(&model_out, extractor.model().to_text())
        .map_err(|e| CliError::Io { path: model_out.clone(), detail: e.to_string() })?;
    ctx.log.info(format!("wrote {model_out}"));
    Ok(())
}

fn cmd_stats(ctx: &ObsCtx, args: Args) -> Result<(), CliError> {
    let [input] = args.positional.as_slice() else {
        return Err(usage_err("stats needs exactly one netlist"));
    };
    let flat = load(input, ctx)?;
    let stats = ancstr_core::pair_stats(&flat);
    println!("devices      {}", flat.devices().len());
    println!("nets         {}", flat.net_count());
    println!("blocks       {}", flat.blocks().count());
    println!("valid pairs  {}", stats.total);
    println!("  system     {}", stats.system);
    println!("  device     {}", stats.device);
    println!("ground truth {}", stats.positives);
    Ok(())
}

/// Generate a seeded stress netlist (`stress_system`) and write it to
/// `-o` or stdout. The corpus is a pure function of `(devices, seed)`,
/// so reruns with the same arguments are byte-identical — what lets CI
/// pin extraction wall times against a reproducible 10k–100k-device
/// input.
fn cmd_corpus(ctx: &ObsCtx, args: Args) -> Result<(), CliError> {
    if !args.positional.is_empty() {
        return Err(usage_err("corpus takes no positional arguments"));
    }
    let Some(devices) = args.devices else {
        return Err(usage_err("corpus needs --devices"));
    };
    let floor = ancstr_circuits::stress::min_stress_devices();
    if devices < floor {
        return Err(usage_err(format!(
            "--devices {devices} is below one stress channel ({floor} devices)"
        )));
    }
    let seed = args.seed.unwrap_or(7);
    let nl = ancstr_circuits::stress::stress_system(devices, seed);
    let text = ancstr_netlist::write::write_spice(&nl);
    match &args.output {
        Some(path) => {
            fs::write(path, &text)
                .map_err(|e| CliError::Io { path: path.clone(), detail: e.to_string() })?;
            ctx.log.info(format!("wrote {path} ({devices} devices, seed {seed})"));
        }
        None => print!("{text}"),
    }
    Ok(())
}

/// Names of the timed pipeline stages, in execution order. `stress` is
/// the scale-sweep stage: inductive extraction (graph-build + embed +
/// detect) over a generated `--stress-devices` corpus.
const BENCH_STAGES: [&str; 6] = ["graph-build", "train", "embed", "detect", "stress", "total"];

/// FNV-1a over a byte slice, continuing from `hash` — the bench report's
/// output fingerprint (constraints text, scores, warnings).
fn fnv1a(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Time every pipeline stage on the ADC1–ADC5 suite (or the given
/// netlists) at 1, 2, and N threads — for both kernel backends unless
/// `--backend` pins one — write a JSON report, and fail if any thread
/// count *or backend* changes the extraction output.
///
/// The report is the PR's performance artifact: one record per
/// `(backend, stage, threads)` with the summed wall time over the suite
/// and the speedup relative to that backend's single-thread run, plus
/// the per-`(backend, threads)` output hash CI gates on. A `kernels`
/// section attributes each sweep's time to the individual compute
/// kernels (matmul, spmm, axpy, row_norms, parallel-region overhead) so
/// a stage-level regression can be pinned on the kernel that caused it,
/// and a `simd_speedup_t1` section reports the single-thread SIMD win
/// per stage when both backends ran.
fn cmd_bench(ctx: &ObsCtx, args: Args) -> Result<(), CliError> {
    if args.run_dir.is_some() || args.resume {
        return Err(usage_err("bench does not support --run-dir/--resume"));
    }
    let out_path = args.output.clone().unwrap_or_else(|| "BENCH_PR10.json".to_owned());

    let suite: Vec<(String, FlatCircuit)> = if args.positional.is_empty() {
        ancstr_bench::adc_dataset()
            .into_iter()
            .map(|b| (b.name.to_owned(), b.flat))
            .collect()
    } else {
        let mut v = Vec::with_capacity(args.positional.len());
        for p in &args.positional {
            v.push((p.clone(), load(p, ctx)?));
        }
        v
    };

    let config = config_with(args.epochs, args.seed);
    let max_threads = args.threads.unwrap_or_else(ancstr_par::available_parallelism);
    let mut counts = vec![1usize, 2, max_threads];
    counts.sort_unstable();
    counts.dedup();
    // Scalar first: it is the bit-exactness reference the SIMD sweep's
    // hashes are compared against.
    let backends: Vec<BackendKind> = match args.backend {
        Some(k) => vec![k],
        None => vec![BackendKind::Scalar, BackendKind::Simd],
    };
    let repeat = args.repeat.unwrap_or(1);

    // The scale-sweep corpus: generated once (deterministic in devices
    // and seed), then extracted inductively at every thread count.
    let stress_devices = args.stress_devices.unwrap_or(10_000);
    let stress_flat = if stress_devices > 0 {
        let seed = args.seed.unwrap_or(7);
        ctx.log.info(format!(
            "bench: generating {stress_devices}-device stress corpus (seed {seed})"
        ));
        let nl = ancstr_circuits::stress::stress_system(stress_devices, seed);
        Some(FlatCircuit::elaborate(&nl).map_err(|err| CliError::Pipeline {
            path: "stress".to_owned(),
            err: ExtractError::Elaborate(err),
        })?)
    } else {
        None
    };

    // wall[b][c][s] = summed milliseconds for backend `backends[b]`,
    // thread count `counts[c]`, stage `BENCH_STAGES[s]`.
    let mut wall = vec![vec![[0f64; BENCH_STAGES.len()]; counts.len()]; backends.len()];
    let mut hashes = vec![vec![0u64; counts.len()]; backends.len()];
    // kernels[b][c] = per-kernel counters accumulated over the whole
    // suite for one (backend, thread count) sweep — the attribution
    // that says *which* kernel a stage's wall time went to.
    let mut kernels = vec![vec![Vec::new(); counts.len()]; backends.len()];
    ancstr_par::profile::set_enabled(true);

    // The repeat loop is OUTERMOST, not per-cell: on throttled shared
    // hardware the machine drifts over the minutes a sweep takes, so
    // back-to-back repetitions of one cell share the same weather while
    // cells run minutes apart do not. Interleaving spreads every cell's
    // samples across the whole run and the per-stage minimum then
    // compares like with like.
    for rep in 0..repeat {
        if repeat > 1 {
            ctx.log.info(format!("bench: repetition {}/{repeat}", rep + 1));
        }
        for (bi, &bk) in backends.iter().enumerate() {
            ancstr_nn::set_backend(bk);
            for (ci, &t) in counts.iter().enumerate() {
                ancstr_par::set_threads(t);
                if rep == 0 {
                    ctx.log.info(format!(
                        "bench: {} circuits at {t} thread(s), {bk} backend{}",
                        suite.len(),
                        if repeat > 1 {
                            format!(", min of {repeat} interleaved runs")
                        } else {
                            String::new()
                        }
                    ));
                }
                ancstr_par::profile::reset();
                let mut pass = [0f64; BENCH_STAGES.len()];
                let mut hash = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
                for (name, flat) in &suite {
                    let pipeline =
                        |err: ExtractError| CliError::Pipeline { path: name.clone(), err };
                    let total0 = Instant::now();

                    let t0 = Instant::now();
                    let mut extractor =
                        SymmetryExtractor::try_new(config.clone()).map_err(pipeline)?;
                    let tg = extractor.train_graph(flat);
                    pass[0] += t0.elapsed().as_secs_f64() * 1e3;

                    let t1 = Instant::now();
                    extractor
                        .try_fit_observed(&[flat], &HealthConfig::default(), &ctx.obs)
                        .map_err(pipeline)?;
                    pass[1] += t1.elapsed().as_secs_f64() * 1e3;

                    let t2 = Instant::now();
                    let z = extractor.model().embed(&tg.tensors, &tg.features);
                    pass[2] += t2.elapsed().as_secs_f64() * 1e3;

                    let t3 = Instant::now();
                    let detection =
                        detect_constraints(flat, &z, &config.thresholds, &config.embed);
                    pass[3] += t3.elapsed().as_secs_f64() * 1e3;
                    pass[5] += total0.elapsed().as_secs_f64() * 1e3;

                    // Fingerprint everything detection produced, in
                    // order: exported constraints, every score bit
                    // pattern, warnings.
                    hash = fnv1a(
                        hash,
                        write_constraints(flat, &detection.constraints).as_bytes(),
                    );
                    for s in &detection.scored {
                        hash = fnv1a(hash, &s.score.to_bits().to_le_bytes());
                        hash = fnv1a(hash, &[u8::from(s.accepted)]);
                        hash = fnv1a(hash, &s.threshold.to_bits().to_le_bytes());
                    }
                    for w in &detection.warnings {
                        hash = fnv1a(hash, w.to_string().as_bytes());
                    }
                }
                // Stress stage: inductive extraction (no training — the
                // seeded initial model is deterministic, which is all
                // the identity check needs) over the generated corpus,
                // through the pruned detection prepass (its constraints
                // are proven identical to exact detection, so the hash
                // still pins every backend and thread count to one
                // output).
                if let Some(flat) = &stress_flat {
                    let pipeline = |err: ExtractError| CliError::Pipeline {
                        path: "stress".to_owned(),
                        err,
                    };
                    let t4 = Instant::now();
                    let extractor =
                        SymmetryExtractor::try_new(config.clone()).map_err(pipeline)?;
                    let tg = extractor.train_graph(flat);
                    let z = extractor.model().embed(&tg.tensors, &tg.features);
                    let detection =
                        detect_constraints_pruned(flat, &z, &config.thresholds, &config.embed);
                    pass[4] += t4.elapsed().as_secs_f64() * 1e3;
                    hash = fnv1a(
                        hash,
                        write_constraints(flat, &detection.constraints).as_bytes(),
                    );
                    if rep == 0 {
                        ctx.log.info(format!(
                            "bench: stress {} devices -> {} constraints at {t} thread(s), \
                             {bk} backend",
                            flat.devices().len(),
                            detection.constraints.len()
                        ));
                    }
                }
                // Min-of-N per stage: repetitions exist to shake off
                // scheduler noise, and the minimum is the run the
                // machine least interfered with. The output itself must
                // not vary run to run — that would be nondeterminism,
                // which is exactly what this tool exists to catch.
                if rep == 0 {
                    hashes[bi][ci] = hash;
                    wall[bi][ci] = pass;
                } else {
                    if hashes[bi][ci] != hash {
                        return Err(CliError::Validation(format!(
                            "bench: output hash changed between repetitions at {t} \
                             thread(s) on the {bk} backend ({:016x} then {hash:016x}) — \
                             the pipeline is nondeterministic",
                            hashes[bi][ci]
                        )));
                    }
                    for (acc, &ms) in wall[bi][ci].iter_mut().zip(&pass) {
                        *acc = acc.min(ms);
                    }
                }
                kernels[bi][ci] = ancstr_par::profile::snapshot();
            }
        }
    }
    // Restore the CLI-wide thread cap and backend the sweep overrode.
    ancstr_par::set_threads(args.threads.unwrap_or(0));
    ancstr_nn::set_backend(args.backend.unwrap_or(BackendKind::Simd));
    ancstr_par::profile::set_enabled(false);

    let identical_threads = hashes.iter().all(|row| row.iter().all(|&h| h == row[0]));
    let identical_backends = hashes.iter().all(|row| row[0] == hashes[0][0]);
    let identical = identical_threads && identical_backends;
    let names: Vec<String> = suite.iter().map(|(n, _)| format!("\"{n}\"")).collect();
    let backend_names: Vec<String> =
        backends.iter().map(|b| format!("\"{b}\"")).collect();
    let mut records = String::new();
    for (bi, &bk) in backends.iter().enumerate() {
        for (si, stage) in BENCH_STAGES.iter().enumerate() {
            for (ci, &t) in counts.iter().enumerate() {
                let ms = wall[bi][ci][si];
                let speedup = if ms > 0.0 { wall[bi][0][si] / ms } else { 1.0 };
                if !records.is_empty() {
                    records.push_str(",\n");
                }
                records.push_str(&format!(
                    "    {{\"backend\": \"{bk}\", \"stage\": \"{stage}\", \"threads\": {t}, \
                     \"wall_ms\": {ms:.3}, \"speedup\": {speedup:.3}}}"
                ));
            }
        }
    }
    let hash_entries: Vec<String> = backends
        .iter()
        .enumerate()
        .flat_map(|(bi, &bk)| {
            counts
                .iter()
                .zip(&hashes[bi])
                .map(move |(t, h)| format!("\"{bk}-{t}\": \"{h:016x}\""))
                .collect::<Vec<_>>()
        })
        .collect();
    let mut kernel_records = String::new();
    for (bi, &bk) in backends.iter().enumerate() {
        for (ci, &t) in counts.iter().enumerate() {
            for s in kernels[bi][ci].iter().filter(|s| s.calls > 0) {
                if !kernel_records.is_empty() {
                    kernel_records.push_str(",\n");
                }
                kernel_records.push_str(&format!(
                    "    {{\"backend\": \"{bk}\", \"kernel\": \"{}\", \"threads\": {t}, \
                     \"calls\": {}, \"elements\": {}, \"wall_ms\": {:.3}}}",
                    s.name,
                    s.calls,
                    s.elems,
                    s.wall_ns as f64 / 1e6,
                ));
            }
        }
    }
    // Single-thread SIMD-vs-scalar ratio per stage (>1 = SIMD faster),
    // only meaningful when both backends ran.
    let simd_speedup = if backends.len() == 2 {
        let entries: Vec<String> = BENCH_STAGES
            .iter()
            .enumerate()
            .map(|(si, stage)| {
                let ratio =
                    if wall[1][0][si] > 0.0 { wall[0][0][si] / wall[1][0][si] } else { 1.0 };
                format!("\"{stage}\": {ratio:.3}")
            })
            .collect();
        format!(",\n  \"simd_speedup_t1\": {{{}}}", entries.join(", "))
    } else {
        String::new()
    };
    let report = format!(
        "{{\n  \"schema\": \"ancstr-bench-v2\",\n  \"suite\": [{}],\n  \
         \"stress_devices\": {stress_devices},\n  \"repeat\": {repeat},\n  \
         \"backends\": [{}],\n  \
         \"thread_counts\": {counts:?},\n  \"output_hashes\": {{{}}},\n  \
         \"identical_across_threads\": {identical_threads},\n  \
         \"identical_across_backends\": {identical_backends}{simd_speedup},\n  \
         \"records\": [\n{records}\n  ],\n  \
         \"kernels\": [\n{kernel_records}\n  ]\n}}\n",
        names.join(", "),
        backend_names.join(", "),
        hash_entries.join(", "),
    );
    fs::write(&out_path, &report)
        .map_err(|e| CliError::Io { path: out_path.clone(), detail: e.to_string() })?;
    ctx.log.info(format!("wrote {out_path}"));

    println!(
        "{:<8} {:<12} {:>8} {:>12} {:>9}",
        "backend", "stage", "threads", "wall_ms", "speedup"
    );
    for (bi, &bk) in backends.iter().enumerate() {
        for (si, stage) in BENCH_STAGES.iter().enumerate() {
            for (ci, &t) in counts.iter().enumerate() {
                let ms = wall[bi][ci][si];
                let speedup = if ms > 0.0 { wall[bi][0][si] / ms } else { 1.0 };
                println!("{bk:<8} {stage:<12} {t:>8} {ms:>12.3} {speedup:>8.2}x");
            }
        }
    }
    println!();
    println!(
        "{:<8} {:<12} {:>8} {:>10} {:>14} {:>12}",
        "backend", "kernel", "threads", "calls", "elements", "wall_ms"
    );
    for (bi, &bk) in backends.iter().enumerate() {
        for (ci, &t) in counts.iter().enumerate() {
            for s in kernels[bi][ci].iter().filter(|s| s.calls > 0) {
                println!(
                    "{bk:<8} {:<12} {t:>8} {:>10} {:>14} {:>12.3}",
                    s.name,
                    s.calls,
                    s.elems,
                    s.wall_ns as f64 / 1e6,
                );
            }
        }
    }

    if !identical {
        let rendered: Vec<String> = backends
            .iter()
            .enumerate()
            .flat_map(|(bi, &bk)| {
                counts
                    .iter()
                    .zip(&hashes[bi])
                    .map(move |(t, h)| format!("{bk}-{t}: {h:016x}"))
                    .collect::<Vec<_>>()
            })
            .collect();
        return Err(CliError::Validation(format!(
            "extraction output diverged across {}: {rendered:?}",
            if identical_threads { "backends" } else { "thread counts" },
        )));
    }
    println!(
        "output identical across thread counts {counts:?} and backends {:?}",
        backends.iter().map(|b| b.name()).collect::<Vec<_>>()
    );
    Ok(())
}

/// Validate an observability artifact set: a JSONL trace (line-by-line
/// schema + LIFO nesting, optionally requiring stage coverage and
/// per-epoch telemetry) and/or a Prometheus text exposition. Exit code
/// 1 on any validation failure, so CI can gate on it.
fn cmd_obs_check(ctx: &ObsCtx, args: Args) -> Result<(), CliError> {
    if args.trace.is_none() && args.prom.is_none() && args.align.is_none() {
        return Err(usage_err("obs-check needs --trace, --prom, and/or --align"));
    }
    if let Some(path) = &args.trace {
        let text = fs::read_to_string(path)
            .map_err(|e| CliError::Io { path: path.clone(), detail: e.to_string() })?;
        let events = validate_trace(&text)
            .map_err(|e| CliError::Validation(format!("`{path}` is not a valid trace: {e}")))?;
        if events.is_empty() {
            return Err(CliError::Validation(format!("`{path}` contains no trace events")));
        }
        if let Some(stages) = &args.require_stages {
            let wanted: Vec<&str> = if stages == "all" {
                STAGES.to_vec()
            } else {
                stages.split(',').filter(|s| !s.is_empty()).collect()
            };
            for stage in wanted {
                if !events.iter().any(|e| e.kind == "span_start" && e.stage == stage) {
                    return Err(CliError::Validation(format!(
                        "`{path}` has no `{stage}` stage span"
                    )));
                }
            }
        }
        if args.require_epoch_events {
            let epochs = events
                .iter()
                .filter(|e| e.kind == "event" && e.span == "epoch")
                .count();
            if epochs == 0 {
                return Err(CliError::Validation(format!(
                    "`{path}` has no per-epoch training telemetry events"
                )));
            }
            ctx.log.info(format!("{epochs} epoch telemetry events"));
        }
        ctx.log.info(format!("{path}: {} schema-valid trace events", events.len()));
    }
    if let Some(path) = &args.prom {
        let text = fs::read_to_string(path)
            .map_err(|e| CliError::Io { path: path.clone(), detail: e.to_string() })?;
        let samples = validate_exposition(&text).map_err(|e| {
            CliError::Validation(format!("`{path}` is not valid Prometheus exposition: {e}"))
        })?;
        ctx.log.info(format!("{path}: {samples} valid exposition samples"));
    }
    if let Some(path) = &args.align {
        let text = fs::read_to_string(path)
            .map_err(|e| CliError::Io { path: path.clone(), detail: e.to_string() })?;
        let doc = ancstr_hier::align::AlignDoc::parse(&text).map_err(|e| {
            CliError::Validation(format!("`{path}` is not a valid ALIGN document: {e}"))
        })?;
        // The exporter is canonical: a valid document re-renders to the
        // exact bytes on disk. Anything else means the file was edited
        // or produced by a non-canonical writer.
        if doc.render() != text {
            return Err(CliError::Validation(format!(
                "`{path}` parses but is not in canonical form (re-render differs)"
            )));
        }
        ctx.log.info(format!(
            "{path}: valid ALIGN document for `{}` ({} symmetry blocks, {} symmetry nets, \
             {} arrays)",
            doc.circuit,
            doc.symm_blocks.len(),
            doc.symm_nets.len(),
            doc.arrays.len()
        ));
    }
    Ok(())
}

/// Merge one or more JSONL trace files — typically one per serve
/// replica — into per-trace waterfalls plus aggregate per-stage
/// latency quantiles. Spans sharing a trace id are stitched across
/// files (a forwarded request shows up as one waterfall spanning both
/// replicas); clock skew between files is warned about, not fatal.
/// Exit code 1 when a file fails trace validation, 3 when one cannot
/// be read.
fn cmd_obs_report(ctx: &ObsCtx, args: Args) -> Result<(), CliError> {
    if args.positional.is_empty() {
        return Err(usage_err("obs-report needs at least one trace file"));
    }
    let mut inputs = Vec::with_capacity(args.positional.len());
    for path in &args.positional {
        let text = fs::read_to_string(path)
            .map_err(|e| CliError::Io { path: path.clone(), detail: e.to_string() })?;
        let label = Path::new(path)
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| path.clone());
        inputs.push(TraceFile { label, text });
    }
    let report = analyze(&inputs).map_err(CliError::Validation)?;
    print!("{}", report.rendered);
    for w in &report.warnings {
        ctx.log.warn(w.clone());
    }
    ctx.log.info(format!(
        "{} trace(s) across {} file(s), {} stitched from multiple replicas",
        report.traces,
        inputs.len(),
        report.merged,
    ));
    Ok(())
}

/// Run the extraction daemon until `POST /v1/shutdown` (or a signal via
/// the admin endpoint) drains it. Prints `listening on <addr>` to
/// stdout once the socket is bound — scripts and the integration tests
/// parse that line to learn the ephemeral port when `--port 0` is used.
fn cmd_serve(ctx: &ObsCtx, args: Args) -> Result<(), CliError> {
    use std::io::Write as _;

    if !args.positional.is_empty() {
        return Err(usage_err("serve takes no positional arguments"));
    }
    let Some(model_path) = &args.model else {
        return Err(usage_err("serve needs --model (train one with `ancstr train`)"));
    };
    // The daemon never trains and owns no run directory; reject the
    // flags loudly instead of silently ignoring them.
    if args.run_dir.is_some() || args.resume {
        return Err(usage_err("serve does not support --run-dir/--resume"));
    }
    if args.epochs.is_some() || args.seed.is_some() {
        return Err(usage_err("serve does not train; --epochs/--seed are not accepted"));
    }

    let text = fs::read_to_string(model_path)
        .map_err(|e| CliError::Io { path: model_path.clone(), detail: e.to_string() })?;
    let registry = match args.model_slots {
        Some(n) => ancstr_serve::ModelRegistry::load_with_slots(&text, model_path, n),
        None => ancstr_serve::ModelRegistry::load(&text, model_path),
    }
    .map_err(|err| CliError::Pipeline { path: model_path.clone(), err })?;
    let fingerprint = registry.current().fingerprint_hex();

    let mut cfg = ancstr_serve::ServeConfig {
        addr: format!("127.0.0.1:{}", args.port.unwrap_or(7878)),
        ..ancstr_serve::ServeConfig::default()
    };
    if let Some(n) = args.workers {
        cfg.workers = n;
    }
    if let Some(n) = args.queue_depth {
        cfg.queue_depth = n;
    }
    if let Some(n) = args.cache_entries {
        cfg.cache_entries = n;
    }
    if let Some(ms) = args.default_deadline_ms {
        cfg.default_deadline = Some(std::time::Duration::from_millis(ms));
    }
    if let Some(p) = &args.peers {
        cfg.peers =
            p.split(',').map(|s| s.trim().to_owned()).filter(|s| !s.is_empty()).collect();
        if !cfg.peers.is_empty() {
            ctx.log.info(format!(
                "fleet mode: {} peer(s), cache keys partitioned by rendezvous hash",
                cfg.peers.len()
            ));
        }
    }
    if let Some(n) = args.batch_max {
        cfg.batch_max = n;
    }
    cfg.chaos = args.chaos;
    if args.chaos {
        ctx.log.info("chaos cooperation enabled: x-ancstr-chaos headers are honored (test rigs only)");
    }
    // `--metrics FILE` on the daemon means "persist the final snapshot
    // on drain" — the live view is always `GET /metrics`.
    cfg.metrics_out = args.metrics.as_ref().map(std::path::PathBuf::from);
    ctx.log.info(format!(
        "model {fingerprint} from {model_path}; {} workers, queue {}, cache {}{}",
        cfg.workers,
        cfg.queue_depth,
        cfg.cache_entries,
        if ctx.obs.tracing() {
            " (tracing on: requests are serialized for a valid trace stream)"
        } else {
            ""
        }
    ));
    let server =
        ancstr_serve::Server::start(cfg.clone(), std::sync::Arc::new(registry), ctx.obs.clone())
            .map_err(|e| CliError::Io { path: cfg.addr.clone(), detail: e.to_string() })?;
    // Stdout is block-buffered when piped; flush so a supervising
    // process sees the address immediately.
    println!("listening on {}", server.local_addr());
    let _ = std::io::stdout().flush();
    server.wait();
    ctx.log.info("drained all in-flight requests; exiting");
    Ok(())
}

/// Flush terminal observability on an aborted run (watchdog
/// cancellation → exit 10, run-store failure → exit 9): a `run_aborted`
/// trace event, the abort counter, partial `metrics.prom`, and — when
/// `--metrics` was requested — a partial metrics file recording the
/// abort, so downstream tooling never waits on a file that will not
/// appear.
fn flush_abort(ctx: &ObsCtx, err: &CliError, metrics: Option<&str>, run_dir: Option<&str>) {
    let code = err.exit_code();
    ctx.obs.event(
        "run",
        "run_aborted",
        &[("exit_code", u64::from(code).into()), ("reason", err.message().into())],
    );
    ctx.obs.metrics().counter_add("ancstr_run_aborted_total", &[], 1);
    if let Some(dir) = run_dir {
        write_prom_checkpoint(ctx, dir);
    }
    if let Some(path) = metrics {
        let partial = format!("# level tpr fpr ppv acc f1\n# run_aborted exit_code={code}\n");
        if fs::write(path, partial).is_ok() {
            ctx.log.info(format!("wrote {path} (partial: run aborted)"));
        }
    }
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = raw.split_first() else {
        eprintln!("{}", usage());
        return ExitCode::from(2);
    };
    let args = match parse_args(rest) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n{}", usage());
            return ExitCode::from(2);
        }
    };

    // Cap the compute layer before any pipeline work; `bench` manages
    // the count itself (sweeping 1, 2, N) and reads the cap as its N.
    if let Some(n) = args.threads {
        ancstr_par::set_threads(n);
    }
    // Pin the kernel backend before any pipeline work; without the flag
    // the `ANCSTR_BACKEND` env var (or the SIMD default) applies, and
    // `bench` sweeps both backends.
    if let Some(k) = args.backend {
        ancstr_nn::set_backend(k);
    }

    let ctx = match ObsCtx::for_command(cmd.as_str(), &args) {
        Ok(ctx) => ctx,
        Err(e) => {
            eprintln!("error: {}", e.message());
            return ExitCode::from(e.exit_code());
        }
    };

    let metrics_path = args.metrics.clone();
    let run_dir = args.run_dir.clone();
    let result = match cmd.as_str() {
        "extract" => cmd_extract(&ctx, args),
        "train" => cmd_train(&ctx, args),
        "stats" => cmd_stats(&ctx, args),
        "corpus" => cmd_corpus(&ctx, args),
        "obs-check" => cmd_obs_check(&ctx, args),
        "obs-report" => cmd_obs_report(&ctx, args),
        "serve" => cmd_serve(&ctx, args),
        "bench" => cmd_bench(&ctx, args),
        other => Err(usage_err(format!("unknown command `{other}`"))),
    };
    let code = match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            ctx.log.error(e.message());
            if matches!(e.exit_code(), 9 | 10) {
                flush_abort(&ctx, &e, metrics_path.as_deref(), run_dir.as_deref());
            }
            ExitCode::from(e.exit_code())
        }
    };
    ctx.obs.flush();
    code
}
