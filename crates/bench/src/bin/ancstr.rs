//! `ancstr` — command-line symmetry-constraint extraction.
//!
//! ```text
//! ancstr extract <netlist.sp> [-o constraints.txt] [--model model.txt]
//!                [--epochs N] [--seed S] [--groups]
//! ancstr train   <netlist.sp>... --model-out model.txt [--epochs N]
//! ancstr stats   <netlist.sp>
//! ```
//!
//! `extract` trains on the input itself unless `--model` supplies a
//! pre-trained model (the inductive mode). `train` fits one universal
//! model over several netlists and saves it.

use std::fs;
use std::process::ExitCode;

use ancstr_core::{
    render_groups, write_constraints, ExtractorConfig, SymmetryExtractor,
};
use ancstr_core::groups::merge_groups;
use ancstr_gnn::GnnModel;
use ancstr_netlist::flat::FlatCircuit;
use ancstr_netlist::parse::parse_spice_file;

fn usage() -> &'static str {
    "usage:\n  ancstr extract <netlist.sp> [-o FILE] [--model FILE] [--epochs N] [--seed S] [--groups] [--dot FILE]\n  ancstr train <netlist.sp>... --model-out FILE [--epochs N] [--seed S]\n  ancstr stats <netlist.sp>"
}

fn load(path: &str) -> Result<FlatCircuit, String> {
    let nl = parse_spice_file(path).map_err(|e| format!("{path}: {e}"))?;
    FlatCircuit::elaborate(&nl).map_err(|e| format!("{path}: {e}"))
}

fn config_with(epochs: Option<usize>, seed: Option<u64>) -> ExtractorConfig {
    let mut cfg = ExtractorConfig::default();
    if let Some(e) = epochs {
        cfg.train.epochs = e;
    }
    if let Some(s) = seed {
        cfg.train.seed = s;
        cfg.gnn.seed = s;
    }
    cfg
}

struct Args {
    positional: Vec<String>,
    output: Option<String>,
    model: Option<String>,
    model_out: Option<String>,
    epochs: Option<usize>,
    seed: Option<u64>,
    groups: bool,
    dot: Option<String>,
}

fn parse_args(raw: &[String]) -> Result<Args, String> {
    let mut args = Args {
        positional: Vec::new(),
        output: None,
        model: None,
        model_out: None,
        epochs: None,
        seed: None,
        groups: false,
        dot: None,
    };
    let mut it = raw.iter();
    while let Some(a) = it.next() {
        let mut take = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "-o" | "--output" => args.output = Some(take("-o")?),
            "--model" => args.model = Some(take("--model")?),
            "--model-out" => args.model_out = Some(take("--model-out")?),
            "--epochs" => {
                args.epochs = Some(take("--epochs")?.parse().map_err(|_| "bad --epochs")?)
            }
            "--seed" => args.seed = Some(take("--seed")?.parse().map_err(|_| "bad --seed")?),
            "--groups" => args.groups = true,
            "--dot" => args.dot = Some(take("--dot")?),
            other if other.starts_with('-') => return Err(format!("unknown flag `{other}`")),
            other => args.positional.push(other.to_owned()),
        }
    }
    Ok(args)
}

fn cmd_extract(args: Args) -> Result<(), String> {
    let [input] = args.positional.as_slice() else {
        return Err("extract needs exactly one netlist".to_owned());
    };
    let flat = load(input)?;
    eprintln!(
        "{} devices, {} nets, {} hierarchy nodes",
        flat.devices().len(),
        flat.net_count(),
        flat.nodes().len()
    );

    let mut extractor = SymmetryExtractor::new(config_with(args.epochs, args.seed));
    if let Some(model_path) = &args.model {
        let text = fs::read_to_string(model_path).map_err(|e| format!("{model_path}: {e}"))?;
        let model = GnnModel::from_text(&text).map_err(|e| e.to_string())?;
        extractor = extractor.with_model(model).map_err(|e| e.to_string())?;
        eprintln!("loaded pre-trained model from {model_path}");
    } else {
        eprintln!("training on the input netlist ...");
        let report = extractor.fit(&[&flat]);
        eprintln!("final loss {:.4}", report.final_loss());
    }

    let result = extractor.extract(&flat);
    eprintln!(
        "{} constraints in {:.1} ms",
        result.detection.constraints.len(),
        result.runtime.as_secs_f64() * 1e3
    );

    if let Some(dot_path) = &args.dot {
        use ancstr_graph::dot::{to_dot, DotOptions};
        use ancstr_graph::{BuildOptions, HetMultigraph};
        let g = HetMultigraph::from_circuit(&flat, &BuildOptions { max_net_degree: Some(64) });
        let constrained: std::collections::HashSet<_> = result
            .detection
            .constraints
            .iter()
            .flat_map(|c| [c.pair.lo(), c.pair.hi()])
            .collect();
        let dot = to_dot(
            &g,
            &DotOptions::default(),
            |v| flat.devices()[g.device_index(v)].path.clone(),
            |v| constrained.contains(&flat.devices()[g.device_index(v)].node),
        );
        fs::write(dot_path, dot).map_err(|e| format!("{dot_path}: {e}"))?;
        eprintln!("wrote {dot_path}");
    }

    let text = if args.groups {
        render_groups(&flat, &merge_groups(&result.detection.constraints))
    } else {
        write_constraints(&flat, &result.detection.constraints)
    };
    match args.output {
        Some(path) => {
            fs::write(&path, &text).map_err(|e| format!("{path}: {e}"))?;
            eprintln!("wrote {path}");
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn cmd_train(args: Args) -> Result<(), String> {
    if args.positional.is_empty() {
        return Err("train needs at least one netlist".to_owned());
    }
    let Some(model_out) = &args.model_out else {
        return Err("train needs --model-out".to_owned());
    };
    let circuits: Vec<FlatCircuit> = args
        .positional
        .iter()
        .map(|p| load(p))
        .collect::<Result<_, _>>()?;
    let refs: Vec<&FlatCircuit> = circuits.iter().collect();
    let mut extractor = SymmetryExtractor::new(config_with(args.epochs, args.seed));
    eprintln!("training on {} circuits ...", refs.len());
    let report = extractor.fit(&refs);
    eprintln!("final loss {:.4}", report.final_loss());
    fs::write(model_out, extractor.model().to_text())
        .map_err(|e| format!("{model_out}: {e}"))?;
    eprintln!("wrote {model_out}");
    Ok(())
}

fn cmd_stats(args: Args) -> Result<(), String> {
    let [input] = args.positional.as_slice() else {
        return Err("stats needs exactly one netlist".to_owned());
    };
    let flat = load(input)?;
    let stats = ancstr_core::pair_stats(&flat);
    println!("devices      {}", flat.devices().len());
    println!("nets         {}", flat.net_count());
    println!("blocks       {}", flat.blocks().count());
    println!("valid pairs  {}", stats.total);
    println!("  system     {}", stats.system);
    println!("  device     {}", stats.device);
    println!("ground truth {}", stats.positives);
    Ok(())
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = raw.split_first() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    let args = match parse_args(rest) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n{}", usage());
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "extract" => cmd_extract(args),
        "train" => cmd_train(args),
        "stats" => cmd_stats(args),
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
