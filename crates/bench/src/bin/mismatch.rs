//! Mismatch sensitivity: for each comparator benchmark, perturb the
//! width of *one member of one matched pair* by ε and check whether
//! that specific pair is still detected. This locates the knife-edge
//! between "sizing-aware" (reject deliberate size differences, the
//! Fig. 2 requirement) and "mismatch-tolerant" (small drawn deltas must
//! not erase a constraint).
//!
//! Prints CSV: `epsilon_percent,detected_fraction`.
//!
//! ```text
//! cargo run -p ancstr-bench --bin mismatch --release
//! ```

use ancstr_bench::{quick_config, Benchmark};
use ancstr_circuits::comparator::comparator_suite;
use ancstr_netlist::flat::FlatCircuit;
use ancstr_netlist::{Element, Netlist};

/// Scale the width of `element` inside `subckt` by `1 + eps`.
fn perturb(nl: &Netlist, subckt: &str, element: &str, eps: f64) -> Netlist {
    let mut out = nl.clone();
    let sub = out.subckt_mut(subckt).expect("subckt exists");
    for e in &mut sub.elements {
        if let Element::Device(d) = e {
            if d.name == element {
                d.geometry.width *= 1.0 + eps;
            }
        }
    }
    out
}

/// The first annotated MOS pair of the circuit's top template.
fn target_pair(nl: &Netlist) -> Option<(String, String, String)> {
    let top = nl.top_subckt()?;
    for (a, b) in &top.sym_pairs {
        let is_mos = |name: &str| {
            top.element(name)
                .and_then(|e| e.as_device())
                .map(|d| d.dtype.is_mos())
                .unwrap_or(false)
        };
        if is_mos(a) && is_mos(b) {
            return Some((top.name.clone(), a.clone(), b.clone()));
        }
    }
    None
}

fn main() {
    println!("Mismatch sensitivity: single perturbed pair per comparator");
    println!("epsilon_percent,detected_fraction");

    let base: Vec<Netlist> = comparator_suite(ancstr_bench::EXPERIMENT_SEED);
    let targets: Vec<(Netlist, (String, String, String))> = base
        .iter()
        .filter_map(|nl| target_pair(nl).map(|t| (nl.clone(), t)))
        .collect();

    for eps_pct in [0.0, 0.5, 1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0] {
        let eps = eps_pct / 100.0;
        let mut detected = 0usize;
        let mut total = 0usize;
        // Train once per epsilon on the perturbed corpus (the detector
        // never sees labels, so this is fair).
        let flats: Vec<FlatCircuit> = targets
            .iter()
            .map(|(nl, (sub, a, _))| {
                FlatCircuit::elaborate(&perturb(nl, sub, a, eps)).expect("elaborates")
            })
            .collect();
        let dataset: Vec<Benchmark> = flats
            .iter()
            .map(|flat| Benchmark { name: "comp", flat: flat.clone() })
            .collect();
        let extractor = ancstr_bench::train_extractor(&dataset, quick_config());

        for (flat, (_, (sub, a, b))) in flats.iter().zip(targets.iter().map(|(n, t)| (n, t))) {
            let na = flat.node_by_path(&format!("{sub}/{a}")).expect("path").id;
            let nb = flat.node_by_path(&format!("{sub}/{b}")).expect("path").id;
            let result = extractor.extract(flat);
            total += 1;
            if result.detection.constraints.contains_pair(na, nb) {
                detected += 1;
            }
        }
        println!("{eps_pct},{:.3}", detected as f64 / total.max(1) as f64);
    }
    println!();
    println!(
        "Detection of the perturbed pair should hold for small epsilon and\n\
         collapse as the mismatch becomes a deliberate design difference —\n\
         the sizing sensitivity of the 0.99 cosine threshold."
    );
}
