//! Quantifies **Fig. 1**'s story: the paper shows that removing one
//! symmetry constraint from a CTDSM's P&R run visibly deforms the
//! layout and costs 3.1 dB SNDR. We cannot run a transistor-level
//! simulation, but the *geometric* half of the story is measurable:
//! place a block with the GNN-extracted constraints versus without any
//! constraints, and report wirelength plus the symmetry deviation of
//! the truly-matched pairs (the mismatch proxy behind the SNDR loss).
//!
//! ```text
//! cargo run -p ancstr-bench --bin fig1 --release
//! ```

use ancstr_bench::quick_config;
use ancstr_circuits::comparator::{comp2, comp5};
use ancstr_circuits::ota::ota3;
use ancstr_core::SymmetryExtractor;
use ancstr_netlist::flat::FlatCircuit;
use ancstr_netlist::Netlist;
use ancstr_place::cost::symmetry_deviation_best_axis;
use ancstr_place::{hpwl, place, AnnealConfig, PlacementProblem};

fn run_case(name: &str, nl: &Netlist) {
    let flat = FlatCircuit::elaborate(nl).expect("benchmark elaborates");

    // Extract constraints with the GNN (trained on the block itself).
    let mut extractor = SymmetryExtractor::new(quick_config());
    extractor.fit(&[&flat]);
    let extraction = extractor.extract(&flat);

    // The *evaluation* problem always carries the ground-truth pairs so
    // the deviation metric is comparable across runs.
    let truth_problem = PlacementProblem::from_circuit(&flat, flat.ground_truth());

    // (a) placement honoring the extracted constraints;
    let extracted_problem =
        PlacementProblem::from_circuit(&flat, &extraction.detection.constraints);
    let with = place(&extracted_problem, &AnnealConfig::default());

    // (b) free placement, no constraints at all.
    let off = AnnealConfig { enforce_symmetry: false, ..AnnealConfig::default() };
    let without = place(&truth_problem, &off);

    let dev_with = symmetry_deviation_best_axis(&truth_problem, &with.placement);
    let dev_without = symmetry_deviation_best_axis(&truth_problem, &without.placement);
    let hp_with = hpwl(&truth_problem, &with.placement);
    let hp_without = hpwl(&truth_problem, &without.placement);

    println!(
        "{name:<8} constrained: HPWL {hp_with:>8.2}  sym-dev {dev_with:>7.3}   \
         unconstrained: HPWL {hp_without:>8.2}  sym-dev {dev_without:>7.3}"
    );
}

fn main() {
    println!("Fig. 1 (quantified): placement with vs without extracted constraints");
    println!("(sym-dev = mean matched-pair asymmetry in µm; the paper links this");
    println!(" mismatch to its 3.1 dB SNDR / 3.8 dB SFDR loss)\n");
    run_case("COMP2", &comp2(1));
    run_case("COMP5", &comp5(1));
    run_case("OTA3", &ota3(1));
    println!();
    println!(
        "With the extracted constraints the matched pairs sit perfectly\n\
         mirrored (sym-dev = 0) at comparable wirelength; the free placement\n\
         leaves µm-scale mismatch on every matched pair."
    );
}
