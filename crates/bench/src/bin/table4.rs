//! Regenerates **Table IV**: statistics of the block-level circuit
//! benchmarks (aggregated per class, like the paper, plus per-circuit
//! detail rows).
//!
//! ```text
//! cargo run -p ancstr-bench --bin table4 --release
//! ```

use ancstr_bench::{block_dataset, stats_header, stats_line};
use ancstr_core::pair_stats;

/// Paper reference rows: (class, #circuits, #devices, #nets, #valid pairs).
const PAPER: [(&str, usize, usize, usize, usize); 5] = [
    ("OTA", 6, 133, 109, 770),
    ("COMP", 6, 145, 109, 1060),
    ("DAC", 2, 22, 30, 43),
    ("LATCH", 1, 24, 14, 132),
    ("Total", 15, 324, 262, 2005),
];

fn main() {
    println!("Table IV: statistics of the block-level circuit benchmarks");
    println!();
    let dataset = block_dataset();

    println!("Per-circuit detail:");
    println!("{}", stats_header());
    for b in &dataset {
        println!("{}", stats_line(b));
    }

    println!();
    println!("Aggregated per class (paper reference in parentheses):");
    println!(
        "{:<8} {:>9} {:>9} {:>6} {:>12}",
        "Class", "#Circuits", "#Devices", "#Nets", "#ValidPairs"
    );
    let classes: [(&str, &[usize]); 4] = [
        ("OTA", &[0, 1, 2, 3, 4, 5]),
        ("COMP", &[6, 7, 8, 9, 10, 11]),
        ("DAC", &[12, 13]),
        ("LATCH", &[14]),
    ];
    let mut tot = (0usize, 0usize, 0usize, 0usize);
    for (class, idx) in classes {
        let mut dev = 0;
        let mut nets = 0;
        let mut pairs = 0;
        for &i in idx {
            let b = &dataset[i];
            dev += b.flat.devices().len();
            nets += b.flat.net_count();
            pairs += pair_stats(&b.flat).total;
        }
        tot.0 += idx.len();
        tot.1 += dev;
        tot.2 += nets;
        tot.3 += pairs;
        let p = PAPER.iter().find(|p| p.0 == class).expect("class listed");
        println!(
            "{:<8} {:>9} {:>9} {:>6} {:>12}   (paper: {} / {} / {} / {})",
            class,
            idx.len(),
            dev,
            nets,
            pairs,
            p.1,
            p.2,
            p.3,
            p.4
        );
    }
    let p = PAPER[4];
    println!(
        "{:<8} {:>9} {:>9} {:>6} {:>12}   (paper: {} / {} / {} / {})",
        "Total", tot.0, tot.1, tot.2, tot.3, p.1, p.2, p.3, p.4
    );
}
