//! Regenerates **Table VI**: device-level symmetry constraint
//! extraction — SFA vs this work on the 15 block-level circuits.
//!
//! ```text
//! cargo run -p ancstr-bench --bin table6 --release
//! ```

use ancstr_baselines::{sfa_extract, SfaConfig};
use ancstr_bench::{
    block_dataset, experiment_config, metric_header, render_average, train_extractor, MetricRow,
};
use ancstr_core::pipeline::evaluate_detection;

/// Paper reference averages: (detector, TPR, FPR, PPV, ACC, F1).
const PAPER_AVG: [(&str, f64, f64, f64, f64, f64); 2] = [
    ("SFA", 0.839, 0.052, 0.699, 0.930, 0.717),
    ("ours", 0.790, 0.007, 0.896, 0.969, 0.815),
];

/// Paper per-design rows for SFA: (TPR, FPR, PPV, ACC, F1).
const PAPER_SFA: [(f64, f64, f64, f64, f64); 15] = [
    (0.667, 0.000, 1.000, 0.941, 0.800),
    (0.875, 0.171, 0.333, 0.833, 0.483),
    (0.667, 0.083, 0.667, 0.867, 0.667),
    (0.667, 0.131, 0.170, 0.861, 0.271),
    (0.833, 0.004, 0.909, 0.989, 0.870),
    (0.571, 0.000, 1.000, 0.870, 0.727),
    (1.000, 0.108, 0.197, 0.895, 0.329),
    (1.000, 0.000, 1.000, 1.000, 1.000),
    (0.875, 0.016, 0.778, 0.978, 0.824),
    (0.625, 0.057, 0.455, 0.921, 0.526),
    (1.000, 0.143, 0.500, 0.875, 0.667),
    (1.000, 0.000, 1.000, 1.000, 1.000),
    (1.000, 0.000, 1.000, 1.000, 1.000),
    (1.000, 0.000, 1.000, 1.000, 1.000),
    (0.800, 0.074, 0.471, 0.917, 0.593),
];

/// Paper per-design rows for this work.
const PAPER_OURS: [(f64, f64, f64, f64, f64); 15] = [
    (0.333, 0.000, 1.000, 0.882, 0.500),
    (0.625, 0.049, 0.556, 0.922, 0.588),
    (0.333, 0.000, 1.000, 0.867, 0.500),
    (0.667, 0.007, 0.800, 0.981, 0.727),
    (0.667, 0.011, 0.727, 0.975, 0.696),
    (1.000, 0.000, 1.000, 1.000, 1.000),
    (1.000, 0.011, 0.700, 0.989, 0.824),
    (1.000, 0.000, 1.000, 1.000, 1.000),
    (1.000, 0.004, 0.941, 0.996, 0.970),
    (0.625, 0.019, 0.714, 0.956, 0.667),
    (1.000, 0.000, 1.000, 1.000, 1.000),
    (1.000, 0.000, 1.000, 1.000, 1.000),
    (1.000, 0.000, 1.000, 1.000, 1.000),
    (1.000, 0.000, 1.000, 1.000, 1.000),
    (0.600, 0.000, 1.000, 0.970, 0.750),
];

fn paper_line(p: &(f64, f64, f64, f64, f64)) -> String {
    format!(
        "{:<8} {:>6.3} {:>6.3} {:>6.3} {:>6.3} {:>8.3} {:>10}",
        " paper", p.0, p.1, p.2, p.3, p.4, "-"
    )
}

fn main() {
    println!("Table VI: device-level symmetry constraint extraction");
    println!();
    let dataset = block_dataset();

    println!("[1/2] running SFA (signal-flow patterns) ...");
    let mut sfa_rows = Vec::new();
    for b in &dataset {
        let extraction = sfa_extract(&b.flat, &SfaConfig::default());
        let eval = evaluate_detection(&b.flat, extraction);
        sfa_rows.push(MetricRow::from_evaluation(b.name, &eval, |e| e.device));
    }

    println!("[2/2] training the GNN on all 15 block circuits ...");
    let extractor = train_extractor(&dataset, experiment_config());
    let mut our_rows = Vec::new();
    for b in &dataset {
        let eval = extractor.evaluate(&b.flat);
        our_rows.push(MetricRow::from_evaluation(b.name, &eval, |e| e.device));
    }

    println!();
    println!("== SFA [6] ==  (indented lines: paper's values)");
    println!("{}", metric_header());
    for (r, p) in sfa_rows.iter().zip(&PAPER_SFA) {
        println!("{}", r.render());
        println!("{}", paper_line(p));
    }
    println!("{}", render_average(&sfa_rows));
    let p = PAPER_AVG[0];
    println!(
        "(paper avg: TPR {} FPR {} PPV {} ACC {} F1 {})",
        p.1, p.2, p.3, p.4, p.5
    );

    println!();
    println!("== This work ==  (indented lines: paper's values)");
    println!("{}", metric_header());
    for (r, p) in our_rows.iter().zip(&PAPER_OURS) {
        println!("{}", r.render());
        println!("{}", paper_line(p));
    }
    println!("{}", render_average(&our_rows));
    let p = PAPER_AVG[1];
    println!(
        "(paper avg: TPR {} FPR {} PPV {} ACC {} F1 {})",
        p.1, p.2, p.3, p.4, p.5
    );
}
