//! Regenerates **Table V**: system-level symmetry constraint extraction
//! — S³DET vs this work on the five ADCs (TPR, FPR, PPV, ACC, F₁,
//! runtime).
//!
//! The GNN is trained once on the full corpus (training time excluded
//! from the reported runtimes, like the paper's footnote).
//!
//! ```text
//! cargo run -p ancstr-bench --bin table5 --release
//! ```

use ancstr_baselines::{s3det_extract, S3detConfig};
use ancstr_bench::{
    adc_dataset, experiment_config, metric_header, render_average, train_extractor, MetricRow,
};
use ancstr_core::pipeline::evaluate_detection;

/// Paper reference averages: (detector, TPR, FPR, PPV, ACC, F1, runtime s).
const PAPER_AVG: [(&str, f64, f64, f64, f64, f64, f64); 2] = [
    ("S3DET", 0.897, 0.048, 0.759, 0.915, 0.794, 726.12),
    ("ours", 0.943, 0.007, 0.965, 0.977, 0.952, 3.32),
];

/// Paper per-design rows for S³DET: (TPR, FPR, PPV, ACC, F1, runtime).
const PAPER_S3DET: [(f64, f64, f64, f64, f64, f64); 5] = [
    (1.000, 0.036, 0.667, 0.966, 0.800, 36.70),
    (1.000, 0.044, 0.765, 0.962, 0.867, 30.98),
    (1.000, 0.125, 0.526, 0.890, 0.690, 49.58),
    (0.619, 0.000, 1.000, 0.812, 0.765, 1717.81),
    (0.864, 0.036, 0.836, 0.946, 0.850, 1795.52),
];

/// Paper per-design rows for this work.
const PAPER_OURS: [(f64, f64, f64, f64, f64, f64); 5] = [
    (1.000, 0.000, 1.000, 1.000, 1.000, 2.71),
    (1.000, 0.000, 1.000, 1.000, 1.000, 2.45),
    (1.000, 0.014, 0.909, 0.988, 0.952, 2.74),
    (0.880, 0.005, 0.994, 0.938, 0.934, 3.55),
    (0.835, 0.015, 0.920, 0.958, 0.875, 5.14),
];

fn paper_line(p: &(f64, f64, f64, f64, f64, f64)) -> String {
    format!(
        "{:<8} {:>6.3} {:>6.3} {:>6.3} {:>6.3} {:>8.3} {:>10.2}",
        " paper", p.0, p.1, p.2, p.3, p.4, p.5
    )
}

fn main() {
    println!("Table V: system-level symmetry constraint extraction");
    println!();
    let dataset = adc_dataset();

    println!("[1/2] running S3DET (spectral + K-S) ...");
    let mut s3_rows = Vec::new();
    for b in &dataset {
        let extraction = s3det_extract(&b.flat, &S3detConfig::default());
        let eval = evaluate_detection(&b.flat, extraction);
        let row = MetricRow::from_evaluation(b.name, &eval, |e| e.system);
        println!("  {}", row.render());
        s3_rows.push(row);
    }

    println!("[2/2] training the GNN on all five ADCs ...");
    let extractor = train_extractor(&dataset, experiment_config());
    let mut our_rows = Vec::new();
    for b in &dataset {
        let eval = extractor.evaluate(&b.flat);
        let row = MetricRow::from_evaluation(b.name, &eval, |e| e.system);
        our_rows.push(row);
    }

    println!();
    println!("== S3DET [20] ==  (indented lines: paper's values)");
    println!("{}", metric_header());
    for (r, p) in s3_rows.iter().zip(&PAPER_S3DET) {
        println!("{}", r.render());
        println!("{}", paper_line(p));
    }
    println!("{}", render_average(&s3_rows));
    let p = PAPER_AVG[0];
    println!(
        "(paper avg: TPR {} FPR {} PPV {} ACC {} F1 {} runtime {}s)",
        p.1, p.2, p.3, p.4, p.5, p.6
    );

    println!();
    println!("== This work ==  (indented lines: paper's values)");
    println!("{}", metric_header());
    for (r, p) in our_rows.iter().zip(&PAPER_OURS) {
        println!("{}", r.render());
        println!("{}", paper_line(p));
    }
    println!("{}", render_average(&our_rows));
    let p = PAPER_AVG[1];
    println!(
        "(paper avg: TPR {} FPR {} PPV {} ACC {} F1 {} runtime {}s)",
        p.1, p.2, p.3, p.4, p.5, p.6
    );

    let speedup = s3_rows
        .iter()
        .zip(&our_rows)
        .map(|(s, o)| s.runtime.as_secs_f64() / o.runtime.as_secs_f64().max(1e-9))
        .collect::<Vec<_>>();
    let avg_speedup = speedup.iter().sum::<f64>() / speedup.len() as f64;
    println!();
    println!(
        "Runtime ratio S3DET / ours per design: {:?}",
        speedup.iter().map(|s| format!("{s:.0}x")).collect::<Vec<_>>()
    );
    println!("Average speedup: {avg_speedup:.0}x (paper: ~218x average, up to 483x)");
}
