//! `loadgen` — a load client for the `ancstr serve` daemon.
//!
//! ```text
//! loadgen --addr 127.0.0.1:7878 --netlist ota.sp [--requests N]
//!         [--concurrency N] [--expect-cached] [--retry-seed S]
//!         [--chaos SEED]
//! ```
//!
//! Fires `--requests` `POST /v1/extract` requests at the daemon from
//! `--concurrency` threads, then reports a one-screen summary:
//! status counts, cache hits, throughput, and latency percentiles.
//! Requests shed by the daemon (`503`/`429`) are retried on a seeded
//! jittered exponential backoff that honors the server's `Retry-After`
//! hint (`--retry-seed` pins the schedule, so runs are reproducible).
//! Two invariants are checked on every run and fail the process
//! (exit 1) when violated:
//!
//! 1. every request must succeed with `200`, and
//! 2. every response must carry the same `constraints_text` — the
//!    daemon is deterministic, so divergence under concurrency is a
//!    bug, not noise.
//!
//! `--expect-cached` additionally requires at least one response served
//! from the result cache (used by the CI smoke job to prove the cache
//! is actually in the request path).
//!
//! `--chaos SEED` switches to the fault-injection soak: every serve
//! fault operator from `ancstr_core::inject` (truncated bodies, torn
//! writes, stalled reads, injected worker panics, corrupt model
//! uploads) is compiled into a deterministic wire plan from the seed —
//! no wall-clock randomness — and replayed `--requests` rounds against
//! the daemon (start it with `--chaos` so panic headers are honored).
//! After every fault the harness asserts the resilience invariants: the
//! daemon answers a clean follow-up request with the exact baseline
//! bytes (no wedged workers, no silent corruption), a faulted exchange
//! never yields a `200` with wrong bytes, and the request counters in
//! `/metrics` only ever move forward. Exit codes: 0 success, 1 failed
//! invariant, 2 usage, 3 connection/file errors.

use std::net::SocketAddr;
use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use ancstr_core::{plan_serve_fault, ALL_SERVE_FAULTS};
use ancstr_serve::client::{self, RetryPolicy};

fn usage() -> &'static str {
    "usage:\n  loadgen --addr HOST:PORT --netlist FILE [--requests N] [--concurrency N] [--expect-cached] [--retry-seed S] [--chaos SEED]"
}

struct Options {
    addr: SocketAddr,
    netlist: String,
    requests: usize,
    concurrency: usize,
    expect_cached: bool,
    retry_seed: u64,
    chaos: Option<u64>,
}

fn parse(raw: &[String]) -> Result<Options, String> {
    let mut addr = None;
    let mut netlist = None;
    let mut requests = 32usize;
    let mut concurrency = 8usize;
    let mut expect_cached = false;
    let mut retry_seed = 1u64;
    let mut chaos = None;
    let mut it = raw.iter();
    while let Some(a) = it.next() {
        let mut take = |name: &str| -> Result<String, String> {
            it.next().cloned().ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--addr" => {
                let v = take("--addr")?;
                addr = Some(v.parse().map_err(|_| format!("bad --addr `{v}`"))?);
            }
            "--netlist" => netlist = Some(take("--netlist")?),
            "--requests" => {
                requests = take("--requests")?.parse().map_err(|_| "bad --requests")?;
                if requests == 0 {
                    return Err("--requests must be at least 1".to_owned());
                }
            }
            "--concurrency" => {
                concurrency = take("--concurrency")?.parse().map_err(|_| "bad --concurrency")?;
                if concurrency == 0 {
                    return Err("--concurrency must be at least 1".to_owned());
                }
            }
            "--expect-cached" => expect_cached = true,
            "--retry-seed" => {
                retry_seed = take("--retry-seed")?.parse().map_err(|_| "bad --retry-seed")?;
            }
            "--chaos" => {
                chaos = Some(take("--chaos")?.parse().map_err(|_| "bad --chaos (want a seed)")?);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(Options {
        addr: addr.ok_or("--addr is required")?,
        netlist: netlist.ok_or("--netlist is required")?,
        requests,
        concurrency,
        expect_cached,
        retry_seed,
        chaos,
    })
}

/// One request's outcome, as much as the summary needs.
struct Sample {
    status: u16,
    cached: bool,
    latency: Duration,
    /// The `constraints_text` JSON field, still escaped — byte equality
    /// of the escaped form implies byte equality of the text itself.
    constraints: Option<String>,
}

/// Pull a string field out of a flat JSON object without re-parsing:
/// returns the escaped value between the quotes.
fn raw_field(body: &str, key: &str) -> Option<String> {
    let marker = format!("\"{key}\":\"");
    let start = body.find(&marker)? + marker.len();
    let rest = &body[start..];
    let mut end = 0;
    let bytes = rest.as_bytes();
    while end < bytes.len() {
        match bytes[end] {
            b'\\' => end += 2,
            b'"' => return Some(rest[..end].to_owned()),
            _ => end += 1,
        }
    }
    None
}

fn run(opts: &Options) -> Result<bool, String> {
    let body = std::fs::read(&opts.netlist)
        .map_err(|e| format!("cannot read `{}`: {e}", opts.netlist))?;
    let body = Arc::new(body);
    let samples: Arc<Mutex<Vec<Sample>>> = Arc::new(Mutex::new(Vec::new()));
    let next = Arc::new(AtomicUsize::new(0));
    let started = Instant::now();

    std::thread::scope(|scope| {
        for _ in 0..opts.concurrency {
            let body = Arc::clone(&body);
            let samples = Arc::clone(&samples);
            let next = Arc::clone(&next);
            scope.spawn(move || {
                loop {
                    let index = next.fetch_add(1, Ordering::SeqCst);
                    if index >= opts.requests {
                        break;
                    }
                    // Per-request seed: every request gets its own
                    // deterministic retry schedule, and distinct
                    // requests de-synchronize instead of stampeding.
                    let policy = RetryPolicy::new(opts.retry_seed ^ (index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
                    let t0 = Instant::now();
                    let sample = match client::request_with_retry(
                        opts.addr,
                        "POST",
                        "/v1/extract",
                        &[],
                        &body,
                        Duration::from_secs(60),
                        &policy,
                    ) {
                        Ok(reply) => {
                            let text = reply.text();
                            Sample {
                                status: reply.status,
                                cached: text.contains("\"cached\":true"),
                                latency: t0.elapsed(),
                                constraints: raw_field(&text, "constraints_text"),
                            }
                        }
                        Err(_) => Sample {
                            status: 0,
                            cached: false,
                            latency: t0.elapsed(),
                            constraints: None,
                        },
                    };
                    samples.lock().unwrap().push(sample);
                }
            });
        }
    });

    let elapsed = started.elapsed();
    let samples = samples.lock().unwrap();
    let ok = samples.iter().filter(|s| s.status == 200).count();
    let cached = samples.iter().filter(|s| s.cached).count();
    let errors = samples.len() - ok;
    let mut latencies: Vec<Duration> = samples.iter().map(|s| s.latency).collect();
    latencies.sort();
    let pct = |p: f64| -> f64 {
        let idx = ((latencies.len() as f64 - 1.0) * p).round() as usize;
        latencies[idx].as_secs_f64() * 1e3
    };
    let distinct: std::collections::HashSet<&str> = samples
        .iter()
        .filter_map(|s| s.constraints.as_deref())
        .collect();

    println!("requests {}  ok {ok}  cached {cached}  errors {errors}", samples.len());
    println!("throughput {:.1} req/s", samples.len() as f64 / elapsed.as_secs_f64());
    println!("latency_ms p50 {:.2} p95 {:.2} max {:.2}", pct(0.50), pct(0.95), pct(1.0));

    let mut healthy = true;
    if errors > 0 {
        eprintln!("error: {errors} request(s) did not return 200");
        healthy = false;
    }
    if distinct.len() > 1 {
        eprintln!(
            "error: {} distinct constraint sets from one netlist — the daemon must be \
             deterministic",
            distinct.len()
        );
        healthy = false;
    }
    if opts.expect_cached && cached == 0 {
        eprintln!("error: --expect-cached was set but no response was served from the cache");
        healthy = false;
    }
    Ok(healthy)
}

/// Sum every `ancstr_http_requests_total{...}` sample in a metrics
/// scrape — the monotone witness for the chaos soak.
fn requests_total(metrics: &str) -> u64 {
    metrics
        .lines()
        .filter(|l| l.starts_with("ancstr_http_requests_total"))
        .filter_map(|l| l.rsplit(' ').next())
        .filter_map(|v| v.parse::<f64>().ok())
        .map(|v| v as u64)
        .sum()
}

/// The seeded chaos soak: replay every fault operator, and after each
/// one require the daemon to answer a clean request with the exact
/// baseline bytes.
fn run_chaos(opts: &Options, seed: u64) -> Result<bool, String> {
    const T: Duration = Duration::from_secs(30);
    let body = std::fs::read(&opts.netlist)
        .map_err(|e| format!("cannot read `{}`: {e}", opts.netlist))?;

    // The fault-free baseline everything else is compared against.
    let baseline = client::post(opts.addr, "/v1/extract", &body, T)
        .map_err(|e| format!("baseline request failed: {e}"))?;
    if baseline.status != 200 {
        return Err(format!("baseline request returned {}", baseline.status));
    }
    let baseline_constraints = raw_field(&baseline.text(), "constraints_text")
        .ok_or("baseline reply has no constraints_text")?;

    let mut healthy = true;
    let mut fail = |msg: String| {
        eprintln!("error: {msg}");
        healthy = false;
    };
    let mut last_total = 0u64;
    let mut faults_run = 0usize;
    let policy = RetryPolicy::new(seed);

    for round in 0..opts.requests {
        for (i, fault) in ALL_SERVE_FAULTS.iter().enumerate() {
            // Seed per (round, operator): deterministic for a fixed
            // --chaos seed, different wire bytes across rounds.
            let plan_seed = seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add((round * ALL_SERVE_FAULTS.len() + i) as u64);
            let plan = plan_serve_fault(*fault, "POST", "/v1/extract", &body, plan_seed);
            let outcome = client::send_plan(opts.addr, &plan, T)
                .map_err(|e| format!("chaos plan {fault:?} could not connect: {e}"))?;
            faults_run += 1;

            // Invariant: a faulted exchange may fail any way it likes,
            // but a 200 with bytes that differ from the baseline is
            // silent corruption.
            if let Some(reply) = &outcome.reply {
                if reply.status == 200 {
                    if let Some(c) = raw_field(&reply.text(), "constraints_text") {
                        if c != baseline_constraints {
                            fail(format!("{fault:?}: 200 reply with wrong constraint bytes"));
                        }
                    }
                }
            }

            // Invariant: the daemon is not wedged — a clean request on
            // a fresh connection succeeds (retrying through shed
            // replies) and reproduces the baseline bytes.
            match client::request_with_retry(
                opts.addr, "POST", "/v1/extract", &[], &body, T, &policy,
            ) {
                Ok(probe) if probe.status == 200 => {
                    if raw_field(&probe.text(), "constraints_text").as_deref()
                        != Some(baseline_constraints.as_str())
                    {
                        fail(format!("{fault:?}: recovery reply diverged from the baseline"));
                    }
                }
                Ok(probe) => fail(format!(
                    "{fault:?}: recovery request returned {} — a worker may be wedged",
                    probe.status
                )),
                Err(e) => fail(format!("{fault:?}: recovery request failed: {e}")),
            }

            // Invariant: counters only move forward.
            match client::get(opts.addr, "/metrics", T) {
                Ok(m) => {
                    let total = requests_total(&m.text());
                    if total < last_total {
                        fail(format!(
                            "{fault:?}: ancstr_http_requests_total went backwards ({last_total} -> {total})"
                        ));
                    }
                    last_total = total;
                }
                Err(e) => fail(format!("{fault:?}: /metrics scrape failed: {e}")),
            }
        }
    }

    println!(
        "chaos seed {seed}: {faults_run} fault injections over {} round(s), {} operator(s); \
         requests_total {last_total}",
        opts.requests,
        ALL_SERVE_FAULTS.len(),
    );
    if healthy {
        println!("all resilience invariants held");
    }
    Ok(healthy)
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse(&raw) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n{}", usage());
            return ExitCode::from(2);
        }
    };
    let outcome = match opts.chaos {
        Some(seed) => run_chaos(&opts, seed),
        None => run(&opts),
    };
    match outcome {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(3)
        }
    }
}
