//! `loadgen` — a load client for the `ancstr serve` daemon.
//!
//! ```text
//! loadgen --addr 127.0.0.1:7878 --netlist ota.sp [--requests N]
//!         [--concurrency N] [--expect-cached]
//! ```
//!
//! Fires `--requests` `POST /v1/extract` requests at the daemon from
//! `--concurrency` threads, then reports a one-screen summary:
//! status counts, cache hits, throughput, and latency percentiles. Two
//! invariants are checked on every run and fail the process (exit 1)
//! when violated:
//!
//! 1. every request must succeed with `200`, and
//! 2. every response must carry the same `constraints_text` — the
//!    daemon is deterministic, so divergence under concurrency is a
//!    bug, not noise.
//!
//! `--expect-cached` additionally requires at least one response served
//! from the result cache (used by the CI smoke job to prove the cache
//! is actually in the request path). Exit codes: 0 success, 1 failed
//! invariant, 2 usage, 3 connection/file errors.

use std::net::SocketAddr;
use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use ancstr_serve::client;

fn usage() -> &'static str {
    "usage:\n  loadgen --addr HOST:PORT --netlist FILE [--requests N] [--concurrency N] [--expect-cached]"
}

struct Options {
    addr: SocketAddr,
    netlist: String,
    requests: usize,
    concurrency: usize,
    expect_cached: bool,
}

fn parse(raw: &[String]) -> Result<Options, String> {
    let mut addr = None;
    let mut netlist = None;
    let mut requests = 32usize;
    let mut concurrency = 8usize;
    let mut expect_cached = false;
    let mut it = raw.iter();
    while let Some(a) = it.next() {
        let mut take = |name: &str| -> Result<String, String> {
            it.next().cloned().ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--addr" => {
                let v = take("--addr")?;
                addr = Some(v.parse().map_err(|_| format!("bad --addr `{v}`"))?);
            }
            "--netlist" => netlist = Some(take("--netlist")?),
            "--requests" => {
                requests = take("--requests")?.parse().map_err(|_| "bad --requests")?;
                if requests == 0 {
                    return Err("--requests must be at least 1".to_owned());
                }
            }
            "--concurrency" => {
                concurrency = take("--concurrency")?.parse().map_err(|_| "bad --concurrency")?;
                if concurrency == 0 {
                    return Err("--concurrency must be at least 1".to_owned());
                }
            }
            "--expect-cached" => expect_cached = true,
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(Options {
        addr: addr.ok_or("--addr is required")?,
        netlist: netlist.ok_or("--netlist is required")?,
        requests,
        concurrency,
        expect_cached,
    })
}

/// One request's outcome, as much as the summary needs.
struct Sample {
    status: u16,
    cached: bool,
    latency: Duration,
    /// The `constraints_text` JSON field, still escaped — byte equality
    /// of the escaped form implies byte equality of the text itself.
    constraints: Option<String>,
}

/// Pull a string field out of a flat JSON object without re-parsing:
/// returns the escaped value between the quotes.
fn raw_field(body: &str, key: &str) -> Option<String> {
    let marker = format!("\"{key}\":\"");
    let start = body.find(&marker)? + marker.len();
    let rest = &body[start..];
    let mut end = 0;
    let bytes = rest.as_bytes();
    while end < bytes.len() {
        match bytes[end] {
            b'\\' => end += 2,
            b'"' => return Some(rest[..end].to_owned()),
            _ => end += 1,
        }
    }
    None
}

fn run(opts: &Options) -> Result<bool, String> {
    let body = std::fs::read(&opts.netlist)
        .map_err(|e| format!("cannot read `{}`: {e}", opts.netlist))?;
    let body = Arc::new(body);
    let samples: Arc<Mutex<Vec<Sample>>> = Arc::new(Mutex::new(Vec::new()));
    let next = Arc::new(AtomicUsize::new(0));
    let started = Instant::now();

    std::thread::scope(|scope| {
        for _ in 0..opts.concurrency {
            let body = Arc::clone(&body);
            let samples = Arc::clone(&samples);
            let next = Arc::clone(&next);
            scope.spawn(move || {
                while next.fetch_add(1, Ordering::SeqCst) < opts.requests {
                    let t0 = Instant::now();
                    let sample = match client::post(
                        opts.addr,
                        "/v1/extract",
                        &body,
                        Duration::from_secs(60),
                    ) {
                        Ok(reply) => {
                            let text = reply.text();
                            Sample {
                                status: reply.status,
                                cached: text.contains("\"cached\":true"),
                                latency: t0.elapsed(),
                                constraints: raw_field(&text, "constraints_text"),
                            }
                        }
                        Err(_) => Sample {
                            status: 0,
                            cached: false,
                            latency: t0.elapsed(),
                            constraints: None,
                        },
                    };
                    samples.lock().unwrap().push(sample);
                }
            });
        }
    });

    let elapsed = started.elapsed();
    let samples = samples.lock().unwrap();
    let ok = samples.iter().filter(|s| s.status == 200).count();
    let cached = samples.iter().filter(|s| s.cached).count();
    let errors = samples.len() - ok;
    let mut latencies: Vec<Duration> = samples.iter().map(|s| s.latency).collect();
    latencies.sort();
    let pct = |p: f64| -> f64 {
        let idx = ((latencies.len() as f64 - 1.0) * p).round() as usize;
        latencies[idx].as_secs_f64() * 1e3
    };
    let distinct: std::collections::HashSet<&str> = samples
        .iter()
        .filter_map(|s| s.constraints.as_deref())
        .collect();

    println!("requests {}  ok {ok}  cached {cached}  errors {errors}", samples.len());
    println!("throughput {:.1} req/s", samples.len() as f64 / elapsed.as_secs_f64());
    println!("latency_ms p50 {:.2} p95 {:.2} max {:.2}", pct(0.50), pct(0.95), pct(1.0));

    let mut healthy = true;
    if errors > 0 {
        eprintln!("error: {errors} request(s) did not return 200");
        healthy = false;
    }
    if distinct.len() > 1 {
        eprintln!(
            "error: {} distinct constraint sets from one netlist — the daemon must be \
             deterministic",
            distinct.len()
        );
        healthy = false;
    }
    if opts.expect_cached && cached == 0 {
        eprintln!("error: --expect-cached was set but no response was served from the cache");
        healthy = false;
    }
    Ok(healthy)
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse(&raw) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n{}", usage());
            return ExitCode::from(2);
        }
    };
    match run(&opts) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(3)
        }
    }
}
