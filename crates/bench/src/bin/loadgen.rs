//! `loadgen` — a load client for the `ancstr serve` daemon.
//!
//! ```text
//! loadgen --addr 127.0.0.1:7878 --netlist ota.sp [--requests N]
//!         [--concurrency N] [--expect-cached] [--retry-seed S]
//!         [--chaos SEED]
//! ```
//!
//! Fires `--requests` `POST /v1/extract` requests at the daemon from
//! `--concurrency` threads, then reports a one-screen summary:
//! status counts, cache hits, throughput, and latency percentiles.
//! Requests shed by the daemon (`503`/`429`) are retried on a seeded
//! jittered exponential backoff that honors the server's `Retry-After`
//! hint (`--retry-seed` pins the schedule, so runs are reproducible).
//! Two invariants are checked on every run and fail the process
//! (exit 1) when violated:
//!
//! 1. every request must succeed with `200`,
//! 2. every response must carry the same `constraints_text` — the
//!    daemon is deterministic, so divergence under concurrency is a
//!    bug, not noise — and
//! 3. every request is sent with a freshly minted `x-ancstr-trace-id`
//!    (logged per request); when the daemon traces it must echo the id
//!    back verbatim on every `200`, so a dropped or rewritten id is a
//!    broken trace, not noise. A daemon running without `--trace-out`
//!    echoes nothing, which is tolerated — but once any response
//!    carries the header, every `200` must.
//!
//! `--expect-cached` additionally requires at least one response served
//! from the result cache (used by the CI smoke job to prove the cache
//! is actually in the request path).
//!
//! `--chaos SEED` switches to the fault-injection soak: every serve
//! fault operator from `ancstr_core::inject` (truncated bodies, torn
//! writes, stalled reads, injected worker panics, corrupt model
//! uploads) is compiled into a deterministic wire plan from the seed —
//! no wall-clock randomness — and replayed `--requests` rounds against
//! the daemon (start it with `--chaos` so panic headers are honored).
//! After every fault the harness asserts the resilience invariants: the
//! daemon answers a clean follow-up request with the exact baseline
//! bytes (no wedged workers, no silent corruption), a faulted exchange
//! never yields a `200` with wrong bytes, and the request counters in
//! `/metrics` only ever move forward. Exit codes: 0 success, 1 failed
//! invariant, 2 usage, 3 connection/file errors.
//!
//! `--ramp` switches to the stepped-RPS saturation probe: each step
//! raises the offered rate (`--ramp-start-rps` + step ×
//! `--ramp-step-rps`, `--ramp-steps` steps of `--ramp-step-secs` each)
//! and drives a deterministic request mix — hot cache hits, cold
//! variants (the netlist plus a unique comment line, so every cold body
//! recomputes but yields the same constraint bytes), explicit
//! `x-ancstr-model` routed requests, and malformed bodies that must be
//! rejected with `400`. Shed replies are **not** retried: per-step
//! per-status-code counts are the signal. The report — one row per
//! step plus the saturation knee (the highest step that achieved ≥80%
//! of its offered rate with <10% shed) — is written as JSON to `--out`
//! (default `BENCH_PR7.json`). The run fails (exit 1) on any transport
//! error, any `5xx`, a malformed body answered with anything but
//! `400`, or two `200`s with different constraint bytes.

use std::net::SocketAddr;
use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use ancstr_core::{plan_serve_fault, ALL_SERVE_FAULTS};
use ancstr_obs::{is_trace_id, mint_trace_id};
use ancstr_serve::client::{self, RetryPolicy};

fn usage() -> &'static str {
    "usage:\n  loadgen --addr HOST:PORT --netlist FILE [--requests N] [--concurrency N] [--expect-cached] [--retry-seed S] [--chaos SEED]\n  loadgen --addr HOST:PORT --netlist FILE --ramp [--ramp-steps N] [--ramp-start-rps N] [--ramp-step-rps N] [--ramp-step-secs N] [--concurrency N] [--out FILE]"
}

struct Options {
    addr: SocketAddr,
    netlist: String,
    requests: usize,
    concurrency: usize,
    expect_cached: bool,
    retry_seed: u64,
    chaos: Option<u64>,
    ramp: bool,
    ramp_steps: usize,
    ramp_start_rps: u64,
    ramp_step_rps: u64,
    ramp_step_secs: u64,
    out: String,
}

fn parse(raw: &[String]) -> Result<Options, String> {
    let mut addr = None;
    let mut netlist = None;
    let mut requests = 32usize;
    let mut concurrency = 8usize;
    let mut expect_cached = false;
    let mut retry_seed = 1u64;
    let mut chaos = None;
    let mut ramp = false;
    let mut ramp_steps = 4usize;
    let mut ramp_start_rps = 4u64;
    let mut ramp_step_rps = 4u64;
    let mut ramp_step_secs = 2u64;
    let mut out = "BENCH_PR7.json".to_owned();
    let mut it = raw.iter();
    while let Some(a) = it.next() {
        let mut take = |name: &str| -> Result<String, String> {
            it.next().cloned().ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--addr" => {
                let v = take("--addr")?;
                addr = Some(v.parse().map_err(|_| format!("bad --addr `{v}`"))?);
            }
            "--netlist" => netlist = Some(take("--netlist")?),
            "--requests" => {
                requests = take("--requests")?.parse().map_err(|_| "bad --requests")?;
                if requests == 0 {
                    return Err("--requests must be at least 1".to_owned());
                }
            }
            "--concurrency" => {
                concurrency = take("--concurrency")?.parse().map_err(|_| "bad --concurrency")?;
                if concurrency == 0 {
                    return Err("--concurrency must be at least 1".to_owned());
                }
            }
            "--expect-cached" => expect_cached = true,
            "--retry-seed" => {
                retry_seed = take("--retry-seed")?.parse().map_err(|_| "bad --retry-seed")?;
            }
            "--chaos" => {
                chaos = Some(take("--chaos")?.parse().map_err(|_| "bad --chaos (want a seed)")?);
            }
            "--ramp" => ramp = true,
            "--ramp-steps" => {
                ramp_steps = take("--ramp-steps")?.parse().map_err(|_| "bad --ramp-steps")?;
                if ramp_steps == 0 {
                    return Err("--ramp-steps must be at least 1".to_owned());
                }
            }
            "--ramp-start-rps" => {
                ramp_start_rps =
                    take("--ramp-start-rps")?.parse().map_err(|_| "bad --ramp-start-rps")?;
                if ramp_start_rps == 0 {
                    return Err("--ramp-start-rps must be at least 1".to_owned());
                }
            }
            "--ramp-step-rps" => {
                ramp_step_rps =
                    take("--ramp-step-rps")?.parse().map_err(|_| "bad --ramp-step-rps")?;
            }
            "--ramp-step-secs" => {
                ramp_step_secs =
                    take("--ramp-step-secs")?.parse().map_err(|_| "bad --ramp-step-secs")?;
                if ramp_step_secs == 0 {
                    return Err("--ramp-step-secs must be at least 1".to_owned());
                }
            }
            "--out" => out = take("--out")?,
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if ramp && chaos.is_some() {
        return Err("--ramp and --chaos are mutually exclusive".to_owned());
    }
    Ok(Options {
        addr: addr.ok_or("--addr is required")?,
        netlist: netlist.ok_or("--netlist is required")?,
        requests,
        concurrency,
        expect_cached,
        retry_seed,
        chaos,
        ramp,
        ramp_steps,
        ramp_start_rps,
        ramp_step_rps,
        ramp_step_secs,
        out,
    })
}

/// One request's outcome, as much as the summary needs.
struct Sample {
    status: u16,
    cached: bool,
    latency: Duration,
    /// The `constraints_text` JSON field, still escaped — byte equality
    /// of the escaped form implies byte equality of the text itself.
    constraints: Option<String>,
    /// The trace id minted for this request and sent in
    /// `x-ancstr-trace-id`.
    trace: String,
    /// The trace id the daemon echoed back, if it traces.
    echo: Option<String>,
}

/// Pull a string field out of a flat JSON object without re-parsing:
/// returns the escaped value between the quotes.
fn raw_field(body: &str, key: &str) -> Option<String> {
    let marker = format!("\"{key}\":\"");
    let start = body.find(&marker)? + marker.len();
    let rest = &body[start..];
    let mut end = 0;
    let bytes = rest.as_bytes();
    while end < bytes.len() {
        match bytes[end] {
            b'\\' => end += 2,
            b'"' => return Some(rest[..end].to_owned()),
            _ => end += 1,
        }
    }
    None
}

fn run(opts: &Options) -> Result<bool, String> {
    let body = std::fs::read(&opts.netlist)
        .map_err(|e| format!("cannot read `{}`: {e}", opts.netlist))?;
    let body = Arc::new(body);
    let samples: Arc<Mutex<Vec<Sample>>> = Arc::new(Mutex::new(Vec::new()));
    let next = Arc::new(AtomicUsize::new(0));
    let started = Instant::now();

    std::thread::scope(|scope| {
        for _ in 0..opts.concurrency {
            let body = Arc::clone(&body);
            let samples = Arc::clone(&samples);
            let next = Arc::clone(&next);
            scope.spawn(move || {
                loop {
                    let index = next.fetch_add(1, Ordering::SeqCst);
                    if index >= opts.requests {
                        break;
                    }
                    // Per-request seed: every request gets its own
                    // deterministic retry schedule, and distinct
                    // requests de-synchronize instead of stampeding.
                    let policy = RetryPolicy::new(opts.retry_seed ^ (index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
                    let trace = mint_trace_id();
                    let t0 = Instant::now();
                    let sample = match client::request_with_retry(
                        opts.addr,
                        "POST",
                        "/v1/extract",
                        &[("x-ancstr-trace-id", trace.as_str())],
                        &body,
                        Duration::from_secs(60),
                        &policy,
                    ) {
                        Ok(reply) => {
                            let text = reply.text();
                            Sample {
                                status: reply.status,
                                cached: text.contains("\"cached\":true"),
                                latency: t0.elapsed(),
                                constraints: raw_field(&text, "constraints_text"),
                                echo: reply.header("x-ancstr-trace-id").map(str::to_owned),
                                trace,
                            }
                        }
                        Err(_) => Sample {
                            status: 0,
                            cached: false,
                            latency: t0.elapsed(),
                            constraints: None,
                            echo: None,
                            trace,
                        },
                    };
                    println!(
                        "trace {} status {} latency_ms {:.2}",
                        sample.trace,
                        sample.status,
                        sample.latency.as_secs_f64() * 1e3
                    );
                    samples.lock().unwrap().push(sample);
                }
            });
        }
    });

    let elapsed = started.elapsed();
    let samples = samples.lock().unwrap();
    let ok = samples.iter().filter(|s| s.status == 200).count();
    let cached = samples.iter().filter(|s| s.cached).count();
    let errors = samples.len() - ok;
    let mut latencies: Vec<Duration> = samples.iter().map(|s| s.latency).collect();
    latencies.sort();
    let pct = |p: f64| -> f64 {
        let idx = ((latencies.len() as f64 - 1.0) * p).round() as usize;
        latencies[idx].as_secs_f64() * 1e3
    };
    let distinct: std::collections::HashSet<&str> = samples
        .iter()
        .filter_map(|s| s.constraints.as_deref())
        .collect();

    let echoed = samples.iter().filter(|s| s.echo.is_some()).count();
    println!("requests {}  ok {ok}  cached {cached}  errors {errors}", samples.len());
    println!("throughput {:.1} req/s", samples.len() as f64 / elapsed.as_secs_f64());
    println!("latency_ms p50 {:.2} p95 {:.2} max {:.2}", pct(0.50), pct(0.95), pct(1.0));
    println!("trace ids: {} minted, {echoed} echoed by the daemon", samples.len());

    let mut healthy = true;
    for s in samples.iter() {
        match &s.echo {
            Some(e) if !is_trace_id(e) => {
                eprintln!("error: daemon echoed malformed trace id `{e}`");
                healthy = false;
            }
            Some(e) if e != &s.trace => {
                eprintln!("error: trace id rewritten in flight: sent {} got {e}", s.trace);
                healthy = false;
            }
            Some(_) => {}
            // A daemon without tracing echoes nothing; but once any
            // response proved tracing is on, a silent 200 is a hole in
            // the trace.
            None if echoed > 0 && s.status == 200 => {
                eprintln!("error: trace {} got a 200 with no echoed trace id", s.trace);
                healthy = false;
            }
            None => {}
        }
    }
    if errors > 0 {
        eprintln!("error: {errors} request(s) did not return 200");
        healthy = false;
    }
    if distinct.len() > 1 {
        eprintln!(
            "error: {} distinct constraint sets from one netlist — the daemon must be \
             deterministic",
            distinct.len()
        );
        healthy = false;
    }
    if opts.expect_cached && cached == 0 {
        eprintln!("error: --expect-cached was set but no response was served from the cache");
        healthy = false;
    }
    Ok(healthy)
}

/// Sum every `ancstr_http_requests_total{...}` sample in a metrics
/// scrape — the monotone witness for the chaos soak.
fn requests_total(metrics: &str) -> u64 {
    metrics
        .lines()
        .filter(|l| l.starts_with("ancstr_http_requests_total"))
        .filter_map(|l| l.rsplit(' ').next())
        .filter_map(|v| v.parse::<f64>().ok())
        .map(|v| v as u64)
        .sum()
}

/// The seeded chaos soak: replay every fault operator, and after each
/// one require the daemon to answer a clean request with the exact
/// baseline bytes.
fn run_chaos(opts: &Options, seed: u64) -> Result<bool, String> {
    const T: Duration = Duration::from_secs(30);
    let body = std::fs::read(&opts.netlist)
        .map_err(|e| format!("cannot read `{}`: {e}", opts.netlist))?;

    // The fault-free baseline everything else is compared against.
    let baseline = client::post(opts.addr, "/v1/extract", &body, T)
        .map_err(|e| format!("baseline request failed: {e}"))?;
    if baseline.status != 200 {
        return Err(format!("baseline request returned {}", baseline.status));
    }
    let baseline_constraints = raw_field(&baseline.text(), "constraints_text")
        .ok_or("baseline reply has no constraints_text")?;

    let mut healthy = true;
    let mut fail = |msg: String| {
        eprintln!("error: {msg}");
        healthy = false;
    };
    let mut last_total = 0u64;
    let mut faults_run = 0usize;
    // Set once any recovery probe echoes a trace id: from then on a
    // 200 without one is an incomplete trace, not a daemon that simply
    // runs untraced.
    let mut tracing_proven = false;
    let policy = RetryPolicy::new(seed);

    for round in 0..opts.requests {
        for (i, fault) in ALL_SERVE_FAULTS.iter().enumerate() {
            // Seed per (round, operator): deterministic for a fixed
            // --chaos seed, different wire bytes across rounds.
            let plan_seed = seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add((round * ALL_SERVE_FAULTS.len() + i) as u64);
            let plan = plan_serve_fault(*fault, "POST", "/v1/extract", &body, plan_seed);
            let outcome = client::send_plan(opts.addr, &plan, T)
                .map_err(|e| format!("chaos plan {fault:?} could not connect: {e}"))?;
            faults_run += 1;

            // Invariant: a faulted exchange may fail any way it likes,
            // but a 200 with bytes that differ from the baseline is
            // silent corruption.
            if let Some(reply) = &outcome.reply {
                if reply.status == 200 {
                    if let Some(c) = raw_field(&reply.text(), "constraints_text") {
                        if c != baseline_constraints {
                            fail(format!("{fault:?}: 200 reply with wrong constraint bytes"));
                        }
                    }
                }
            }

            // Invariant: the daemon is not wedged — a clean request on
            // a fresh connection succeeds (retrying through shed
            // replies) and reproduces the baseline bytes. The probe
            // carries a fresh trace id; a tracing daemon must echo it
            // on every 200 (trace completeness under faults).
            let trace = mint_trace_id();
            match client::request_with_retry(
                opts.addr,
                "POST",
                "/v1/extract",
                &[("x-ancstr-trace-id", trace.as_str())],
                &body,
                T,
                &policy,
            ) {
                Ok(probe) if probe.status == 200 => {
                    if raw_field(&probe.text(), "constraints_text").as_deref()
                        != Some(baseline_constraints.as_str())
                    {
                        fail(format!("{fault:?}: recovery reply diverged from the baseline"));
                    }
                    match probe.header("x-ancstr-trace-id") {
                        Some(e) if e == trace => tracing_proven = true,
                        Some(e) => fail(format!(
                            "{fault:?}: trace id rewritten in flight: sent {trace} got {e}"
                        )),
                        None if tracing_proven => fail(format!(
                            "{fault:?}: 200 recovery reply lost its trace id {trace}"
                        )),
                        None => {}
                    }
                }
                Ok(probe) => fail(format!(
                    "{fault:?}: recovery request returned {} — a worker may be wedged",
                    probe.status
                )),
                Err(e) => fail(format!("{fault:?}: recovery request failed: {e}")),
            }

            // Invariant: counters only move forward.
            match client::get(opts.addr, "/metrics", T) {
                Ok(m) => {
                    let total = requests_total(&m.text());
                    if total < last_total {
                        fail(format!(
                            "{fault:?}: ancstr_http_requests_total went backwards ({last_total} -> {total})"
                        ));
                    }
                    last_total = total;
                }
                Err(e) => fail(format!("{fault:?}: /metrics scrape failed: {e}")),
            }
        }
    }

    println!(
        "chaos seed {seed}: {faults_run} fault injections over {} round(s), {} operator(s); \
         requests_total {last_total}",
        opts.requests,
        ALL_SERVE_FAULTS.len(),
    );
    if tracing_proven {
        println!("trace completeness held: every 200 echoed its minted trace id");
    }
    if healthy {
        println!("all resilience invariants held");
    }
    Ok(healthy)
}

/// The deterministic request mix for the ramp probe, keyed by global
/// request index: half hot cache hits, a quarter cold recomputes, an
/// eighth explicitly model-routed, an eighth malformed.
#[derive(Clone, Copy, PartialEq)]
enum Mix {
    /// The netlist verbatim — after the first compute, a cache hit.
    Hot,
    /// The netlist plus a unique comment line: new cache key, same
    /// circuit, so a cold compute that must reproduce the hot bytes.
    Cold,
    /// The hot body routed explicitly via `x-ancstr-model`.
    MultiModel,
    /// A body that is not a netlist; the daemon must answer `400`.
    Malformed,
}

fn mix_of(index: usize) -> Mix {
    match index % 8 {
        0..=3 => Mix::Hot,
        4 | 5 => Mix::Cold,
        6 => Mix::MultiModel,
        _ => Mix::Malformed,
    }
}

/// One ramp step's ledger.
struct StepReport {
    target_rps: u64,
    achieved_rps: f64,
    requests: usize,
    statuses: std::collections::BTreeMap<u16, usize>,
    cache_hits: usize,
    p50_ms: f64,
    p95_ms: f64,
}

/// The stepped-RPS saturation probe: offered load climbs step by step,
/// nothing is retried, and the per-status-code ledger is the output.
fn run_ramp(opts: &Options) -> Result<bool, String> {
    const T: Duration = Duration::from_secs(30);
    let netlist = std::fs::read(&opts.netlist)
        .map_err(|e| format!("cannot read `{}`: {e}", opts.netlist))?;

    // The routing fingerprint for the multi-model mix comes from the
    // daemon itself, so the probe needs no model file.
    let health = client::get(opts.addr, "/healthz", T)
        .map_err(|e| format!("/healthz probe failed: {e}"))?;
    let fingerprint = raw_field(&health.text(), "fingerprint")
        .ok_or("/healthz reply carries no model fingerprint")?;

    // Warm the hot key once so "hot" means "cache hit" from step 0, and
    // pin the baseline constraint bytes every 200 must reproduce.
    let baseline = client::post(opts.addr, "/v1/extract", &netlist, T)
        .map_err(|e| format!("warmup request failed: {e}"))?;
    if baseline.status != 200 {
        return Err(format!("warmup request returned {}", baseline.status));
    }
    let baseline_constraints = raw_field(&baseline.text(), "constraints_text")
        .ok_or("warmup reply has no constraints_text")?;

    let mut healthy = true;
    let mut fail = |msg: String| {
        eprintln!("error: {msg}");
        healthy = false;
    };

    let mut steps: Vec<StepReport> = Vec::new();
    let mut cold_serial = 0usize;
    for step in 0..opts.ramp_steps {
        let target_rps = opts.ramp_start_rps + opts.ramp_step_rps * step as u64;
        let total = (target_rps * opts.ramp_step_secs) as usize;
        let samples: Arc<Mutex<Vec<Sample>>> = Arc::new(Mutex::new(Vec::new()));
        let next = Arc::new(AtomicUsize::new(0));
        let cold_base = cold_serial;
        cold_serial += total;
        let step_start = Instant::now();

        std::thread::scope(|scope| {
            for _ in 0..opts.concurrency {
                let netlist = &netlist;
                let fingerprint = &fingerprint;
                let samples = Arc::clone(&samples);
                let next = Arc::clone(&next);
                scope.spawn(move || loop {
                    let index = next.fetch_add(1, Ordering::SeqCst);
                    if index >= total {
                        break;
                    }
                    // Open-loop pacing: each request has an ideal send
                    // time on the step's clock; sleep until it, then
                    // fire regardless of how the last one fared.
                    let due = Duration::from_secs_f64(index as f64 / target_rps as f64);
                    if let Some(wait) = due.checked_sub(step_start.elapsed()) {
                        std::thread::sleep(wait);
                    }
                    let mix = mix_of(index);
                    let body: Vec<u8> = match mix {
                        Mix::Hot | Mix::MultiModel => netlist.clone(),
                        Mix::Cold => {
                            let mut b = netlist.clone();
                            b.extend_from_slice(
                                format!("\n* cold variant {}\n", cold_base + index).as_bytes(),
                            );
                            b
                        }
                        Mix::Malformed => format!("definitely not spice {index}").into_bytes(),
                    };
                    let headers: &[(&str, &str)] = match mix {
                        Mix::MultiModel => &[("x-ancstr-model", fingerprint.as_str())],
                        _ => &[],
                    };
                    let t0 = Instant::now();
                    let sample = match client::post_with(
                        opts.addr,
                        "/v1/extract",
                        headers,
                        &body,
                        T,
                    ) {
                        Ok(reply) => {
                            let text = reply.text();
                            Sample {
                                status: reply.status,
                                cached: text.contains("\"cached\":true"),
                                latency: t0.elapsed(),
                                constraints: if mix == Mix::Malformed {
                                    None
                                } else {
                                    raw_field(&text, "constraints_text")
                                },
                                // The ramp probe measures saturation,
                                // not tracing; it sends no trace ids.
                                trace: String::new(),
                                echo: None,
                            }
                        }
                        Err(_) => Sample {
                            status: 0,
                            cached: false,
                            latency: t0.elapsed(),
                            constraints: None,
                            trace: String::new(),
                            echo: None,
                        },
                    };
                    samples.lock().unwrap().push(sample);
                });
            }
        });

        let elapsed = step_start.elapsed();
        let samples = samples.lock().unwrap();
        let mut statuses = std::collections::BTreeMap::new();
        for s in samples.iter() {
            *statuses.entry(s.status).or_insert(0usize) += 1;
        }
        for (index, s) in samples.iter().enumerate() {
            if s.status == 0 {
                fail(format!("step {step}: a request failed at the transport layer"));
            }
            if s.status >= 500 && s.status != 503 {
                fail(format!("step {step} request {index}: unexpected {}", s.status));
            }
            if let Some(c) = &s.constraints {
                if s.status == 200 && c != &baseline_constraints {
                    fail(format!("step {step}: 200 reply with wrong constraint bytes"));
                }
            }
        }
        // Malformed bodies must be *rejected*, not shed or crashed on:
        // at the lowest offered rate every one of them gets its 400.
        if step == 0 {
            let malformed = (0..total).filter(|&i| mix_of(i) == Mix::Malformed).count();
            if statuses.get(&400).copied().unwrap_or(0) < malformed {
                fail(format!(
                    "step 0: {malformed} malformed request(s) sent but only {} answered 400",
                    statuses.get(&400).copied().unwrap_or(0)
                ));
            }
        }
        let mut latencies: Vec<Duration> = samples.iter().map(|s| s.latency).collect();
        latencies.sort();
        let pct = |p: f64| -> f64 {
            let idx = ((latencies.len() as f64 - 1.0) * p).round() as usize;
            latencies[idx].as_secs_f64() * 1e3
        };
        let report = StepReport {
            target_rps,
            achieved_rps: samples.len() as f64 / elapsed.as_secs_f64(),
            requests: samples.len(),
            statuses,
            cache_hits: samples.iter().filter(|s| s.cached).count(),
            p50_ms: pct(0.50),
            p95_ms: pct(0.95),
        };
        println!(
            "step {step}: offered {target_rps} rps, achieved {:.1} rps, statuses {:?}",
            report.achieved_rps,
            report.statuses.iter().map(|(k, v)| format!("{k}:{v}")).collect::<Vec<_>>(),
        );
        steps.push(report);
    }

    // The saturation knee: the highest offered rate the daemon kept up
    // with — ≥80% of the offered rate achieved and <10% shed (503).
    let knee = steps
        .iter()
        .filter(|s| {
            let shed = s.statuses.get(&503).copied().unwrap_or(0);
            s.achieved_rps >= 0.8 * s.target_rps as f64
                && (shed as f64) < 0.1 * s.requests as f64
        })
        .map(|s| s.target_rps)
        .max();

    let step_rows: Vec<String> = steps
        .iter()
        .map(|s| {
            let statuses: Vec<String> =
                s.statuses.iter().map(|(code, n)| format!("\"{code}\":{n}")).collect();
            format!(
                "{{\"target_rps\":{},\"achieved_rps\":{:.2},\"requests\":{},\"statuses\":{{{}}},\"cache_hits\":{},\"p50_ms\":{:.2},\"p95_ms\":{:.2}}}",
                s.target_rps,
                s.achieved_rps,
                s.requests,
                statuses.join(","),
                s.cache_hits,
                s.p50_ms,
                s.p95_ms,
            )
        })
        .collect();
    let report = format!(
        "{{\n  \"mode\": \"ramp\",\n  \"netlist\": {:?},\n  \"model\": {:?},\n  \"steps\": [\n    {}\n  ],\n  \"knee_rps\": {},\n  \"healthy\": {}\n}}\n",
        opts.netlist,
        fingerprint,
        step_rows.join(",\n    "),
        knee.map_or("null".to_owned(), |k| k.to_string()),
        healthy,
    );
    std::fs::write(&opts.out, &report)
        .map_err(|e| format!("cannot write `{}`: {e}", opts.out))?;
    match knee {
        Some(k) => println!("saturation knee at {k} rps; report written to {}", opts.out),
        None => println!("no step met the knee criteria; report written to {}", opts.out),
    }
    Ok(healthy)
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse(&raw) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n{}", usage());
            return ExitCode::from(2);
        }
    };
    let outcome = if opts.ramp {
        run_ramp(&opts)
    } else {
        match opts.chaos {
            Some(seed) => run_chaos(&opts, seed),
            None => run(&opts),
        }
    };
    match outcome {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(3)
        }
    }
}
