#![warn(missing_docs)]

//! Experiment harness: shared plumbing for the binaries that regenerate
//! every table and figure of the paper, the Criterion benches, and the
//! workspace examples/integration tests.

use std::time::Duration;

use ancstr_circuits::{adc, adc_benchmark_names, block_benchmark_names, block_benchmarks};
use ancstr_core::{
    pair_stats, Confusion, Evaluation, ExtractorConfig, SymmetryExtractor,
};
use ancstr_gnn::TrainConfig;
use ancstr_netlist::flat::FlatCircuit;
use ancstr_netlist::Netlist;

/// Deterministic seed used by every experiment binary.
pub const EXPERIMENT_SEED: u64 = 20210705;

/// A named elaborated benchmark.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Table row name (e.g. `ADC1`, `OTA3`).
    pub name: &'static str,
    /// The elaborated circuit.
    pub flat: FlatCircuit,
}

fn elaborate_all(names: Vec<&'static str>, netlists: Vec<Netlist>) -> Vec<Benchmark> {
    names
        .into_iter()
        .zip(netlists)
        .map(|(name, nl)| Benchmark {
            name,
            flat: FlatCircuit::elaborate(&nl)
                .unwrap_or_else(|e| panic!("{name} must elaborate: {e}")),
        })
        .collect()
}

/// The five ADC benchmarks of Table III.
pub fn adc_dataset() -> Vec<Benchmark> {
    elaborate_all(adc_benchmark_names(), adc::adc_benchmarks())
}

/// The 15 block-level benchmarks of Table IV.
pub fn block_dataset() -> Vec<Benchmark> {
    elaborate_all(block_benchmark_names(), block_benchmarks(EXPERIMENT_SEED))
}

/// The experiment-grade extractor configuration (Section V: K = 2,
/// D = 18, B = 5, M = 10, α = β = 0.95).
pub fn experiment_config() -> ExtractorConfig {
    ExtractorConfig {
        train: TrainConfig {
            epochs: 60,
            learning_rate: 0.01,
            seed: EXPERIMENT_SEED,
            ..TrainConfig::default()
        },
        ..ExtractorConfig::default()
    }
}

/// A faster configuration for tests and smoke runs.
pub fn quick_config() -> ExtractorConfig {
    ExtractorConfig {
        train: TrainConfig {
            epochs: 30,
            learning_rate: 0.02,
            seed: EXPERIMENT_SEED,
            ..TrainConfig::default()
        },
        ..ExtractorConfig::default()
    }
}

/// Train one extractor on a whole dataset (the paper trains the
/// unsupervised model on all circuits jointly).
pub fn train_extractor(dataset: &[Benchmark], config: ExtractorConfig) -> SymmetryExtractor {
    let mut ex = SymmetryExtractor::new(config);
    let refs: Vec<&FlatCircuit> = dataset.iter().map(|b| &b.flat).collect();
    ex.fit(&refs);
    ex
}

/// One formatted metric row (TPR/FPR/PPV/ACC/F1 + runtime).
#[derive(Debug, Clone)]
pub struct MetricRow {
    /// Row label.
    pub name: String,
    /// Confusion the metrics derive from.
    pub confusion: Confusion,
    /// Detection runtime.
    pub runtime: Duration,
}

impl MetricRow {
    /// Build from an evaluation, selecting the confusion by `selector`.
    pub fn from_evaluation(
        name: impl Into<String>,
        eval: &Evaluation,
        selector: impl Fn(&Evaluation) -> Confusion,
    ) -> MetricRow {
        MetricRow {
            name: name.into(),
            confusion: selector(eval),
            runtime: eval.extraction.runtime,
        }
    }

    /// Render as a fixed-width table line.
    pub fn render(&self) -> String {
        let c = &self.confusion;
        format!(
            "{:<8} {:>6.3} {:>6.3} {:>6.3} {:>6.3} {:>8.3} {:>10.3}",
            self.name,
            c.tpr(),
            c.fpr(),
            c.ppv(),
            c.acc(),
            c.f1(),
            self.runtime.as_secs_f64()
        )
    }
}

/// The table header matching [`MetricRow::render`].
pub fn metric_header() -> String {
    format!(
        "{:<8} {:>6} {:>6} {:>6} {:>6} {:>8} {:>10}",
        "Design", "TPR", "FPR", "PPV", "ACC", "F1", "Runtime(s)"
    )
}

/// Macro-averaged metrics over a set of rows (the paper's "Average"
/// rows average the per-design metrics, not the confusions).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AverageRow {
    /// Mean true positive rate.
    pub tpr: f64,
    /// Mean false positive rate.
    pub fpr: f64,
    /// Mean positive predictive value.
    pub ppv: f64,
    /// Mean accuracy.
    pub acc: f64,
    /// Mean F₁-score.
    pub f1: f64,
    /// Mean runtime.
    pub runtime: Duration,
}

impl AverageRow {
    /// Macro-average a non-empty set of rows.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty.
    pub fn of(rows: &[MetricRow]) -> AverageRow {
        assert!(!rows.is_empty(), "cannot average zero rows");
        let n = rows.len() as f64;
        let avg = |f: &dyn Fn(&Confusion) -> f64| {
            rows.iter().map(|r| f(&r.confusion)).sum::<f64>() / n
        };
        AverageRow {
            tpr: avg(&Confusion::tpr),
            fpr: avg(&Confusion::fpr),
            ppv: avg(&Confusion::ppv),
            acc: avg(&Confusion::acc),
            f1: avg(&Confusion::f1),
            runtime: rows.iter().map(|r| r.runtime).sum::<Duration>() / rows.len() as u32,
        }
    }

    /// Render in the [`MetricRow::render`] format.
    pub fn render(&self) -> String {
        format!(
            "{:<8} {:>6.3} {:>6.3} {:>6.3} {:>6.3} {:>8.3} {:>10.3}",
            "Average",
            self.tpr,
            self.fpr,
            self.ppv,
            self.acc,
            self.f1,
            self.runtime.as_secs_f64()
        )
    }
}

/// Render the macro-average row of a set of rows.
pub fn render_average(rows: &[MetricRow]) -> String {
    AverageRow::of(rows).render()
}

/// Dataset statistics line for Tables III/IV.
pub fn stats_line(b: &Benchmark) -> String {
    let stats = pair_stats(&b.flat);
    format!(
        "{:<8} {:>9} {:>6} {:>12} {:>10} {:>8} {:>8}",
        b.name,
        b.flat.devices().len(),
        b.flat.net_count(),
        stats.total,
        stats.positives,
        stats.system,
        stats.device,
    )
}

/// Header matching [`stats_line`].
pub fn stats_header() -> String {
    format!(
        "{:<8} {:>9} {:>6} {:>12} {:>10} {:>8} {:>8}",
        "Design", "#Devices", "#Nets", "#ValidPairs", "#Matched", "#System", "#Device"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datasets_load() {
        let blocks = block_dataset();
        assert_eq!(blocks.len(), 15);
        let total: usize = blocks.iter().map(|b| b.flat.devices().len()).sum();
        assert_eq!(total, 324);
    }

    #[test]
    fn metric_row_renders_all_fields() {
        let row = MetricRow {
            name: "X".into(),
            confusion: Confusion { tp: 1, fp: 1, tn: 1, fn_: 1 },
            runtime: Duration::from_millis(1500),
        };
        let s = row.render();
        assert!(s.contains("0.500"));
        assert!(s.contains("1.500"));
        assert_eq!(metric_header().split_whitespace().count(), 7);
    }

    #[test]
    fn average_row_macro_averages() {
        let rows = vec![
            MetricRow {
                name: "a".into(),
                confusion: Confusion { tp: 1, fp: 0, tn: 1, fn_: 0 },
                runtime: Duration::from_secs(1),
            },
            MetricRow {
                name: "b".into(),
                confusion: Confusion { tp: 0, fp: 1, tn: 0, fn_: 1 },
                runtime: Duration::from_secs(3),
            },
        ];
        let avg = render_average(&rows);
        // TPR avg of 1.0 and 0.0.
        assert!(avg.contains("0.500"));
        assert!(avg.contains("2.000"));
    }
}
