//! Criterion benches timing the end-to-end experiment units behind each
//! table: per-design detection for Table V (ours vs S³DET) and Table VI
//! (ours vs SFA). Training is benchmarked separately since the paper's
//! runtimes exclude it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ancstr_baselines::{s3det_extract, sfa_extract, S3detConfig, SfaConfig};
use ancstr_bench::{block_dataset, quick_config, train_extractor, Benchmark};
use ancstr_circuits::adc::{adc1, adc4};
use ancstr_netlist::flat::FlatCircuit;

fn bench_table5_designs(c: &mut Criterion) {
    let designs: Vec<(&str, FlatCircuit)> = vec![
        ("ADC1", FlatCircuit::elaborate(&adc1()).expect("adc1")),
        ("ADC4", FlatCircuit::elaborate(&adc4()).expect("adc4")),
    ];
    let dataset: Vec<Benchmark> = designs
        .iter()
        .map(|(name, flat)| Benchmark { name, flat: flat.clone() })
        .collect();
    let extractor = train_extractor(&dataset, quick_config());

    let mut group = c.benchmark_group("table5_system_level");
    group.sample_size(10);
    for (name, flat) in &designs {
        group.bench_with_input(BenchmarkId::new("ours", name), flat, |b, flat| {
            b.iter(|| extractor.extract(flat))
        });
        group.bench_with_input(BenchmarkId::new("s3det", name), flat, |b, flat| {
            b.iter(|| {
                s3det_extract(flat, &S3detConfig { cache_spectra: true, ..Default::default() })
            })
        });
    }
    group.finish();
}

fn bench_table6_designs(c: &mut Criterion) {
    let dataset = block_dataset();
    let extractor = train_extractor(&dataset, quick_config());

    let mut group = c.benchmark_group("table6_device_level");
    group.sample_size(20);
    for b in dataset.iter().take(3) {
        group.bench_with_input(BenchmarkId::new("ours", b.name), &b.flat, |bn, flat| {
            bn.iter(|| extractor.extract(flat))
        });
        group.bench_with_input(BenchmarkId::new("sfa", b.name), &b.flat, |bn, flat| {
            bn.iter(|| sfa_extract(flat, &SfaConfig::default()))
        });
    }
    group.finish();
}

fn bench_training(c: &mut Criterion) {
    let dataset = block_dataset();
    let mut group = c.benchmark_group("gnn_training");
    group.sample_size(10);
    group.bench_function("fit_15_blocks_5_epochs", |b| {
        b.iter(|| {
            let mut cfg = quick_config();
            cfg.train.epochs = 5;
            train_extractor(&dataset, cfg)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_table5_designs, bench_table6_designs, bench_training);
criterion_main!(benches);
