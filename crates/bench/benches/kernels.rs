//! Criterion benches for the computational kernels behind every table:
//! multigraph construction (Alg. 1), PageRank (Eq. 3), GNN forward
//! (Eq. 1), training step (Eq. 2), Jacobi eigensolve and K-S statistic
//! (the S³DET inner loops).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ancstr_bench::quick_config;
use ancstr_circuits::adc::adc1;
use ancstr_circuits::comparator::comp1;
use ancstr_core::circuit_features;
use ancstr_core::FeatureConfig;
use ancstr_gnn::{GnnConfig, GnnModel, GraphTensors};
use ancstr_graph::{pagerank, BuildOptions, HetMultigraph, PageRankOptions, SimpleDigraph};
use ancstr_netlist::flat::FlatCircuit;
use ancstr_nn::linalg::{normalized_laplacian, symmetric_eigenvalues};
use ancstr_nn::Matrix;

fn bench_graph_build(c: &mut Criterion) {
    let small = FlatCircuit::elaborate(&comp1(1)).expect("comp1");
    let large = FlatCircuit::elaborate(&adc1()).expect("adc1");
    let mut g = c.benchmark_group("multigraph_build");
    for (name, flat) in [("comp1_47", &small), ("adc1_285", &large)] {
        g.bench_with_input(BenchmarkId::from_parameter(name), flat, |b, flat| {
            b.iter(|| HetMultigraph::from_circuit(flat, &BuildOptions { max_net_degree: Some(64) }))
        });
    }
    g.finish();
}

fn bench_pagerank(c: &mut Criterion) {
    let flat = FlatCircuit::elaborate(&adc1()).expect("adc1");
    let g = HetMultigraph::from_circuit(&flat, &BuildOptions { max_net_degree: Some(64) });
    let s = SimpleDigraph::from_multigraph(&g);
    c.bench_function("pagerank_adc1", |b| {
        b.iter(|| pagerank(&s, &PageRankOptions::default()))
    });
}

fn bench_gnn_forward(c: &mut Criterion) {
    let flat = FlatCircuit::elaborate(&adc1()).expect("adc1");
    let g = HetMultigraph::from_circuit(&flat, &BuildOptions { max_net_degree: Some(64) });
    let tensors = GraphTensors::from_multigraph(&g);
    let features = circuit_features(&flat, &FeatureConfig::default());
    let model = GnnModel::new(GnnConfig::default());
    c.bench_function("gnn_forward_adc1", |b| {
        b.iter(|| model.embed(&tensors, &features))
    });
}

fn bench_extraction(c: &mut Criterion) {
    let flat = FlatCircuit::elaborate(&comp1(1)).expect("comp1");
    let mut ex = ancstr_core::SymmetryExtractor::new(quick_config());
    ex.fit(&[&flat]);
    c.bench_function("extract_comp1", |b| b.iter(|| ex.extract(&flat)));
}

fn bench_eigensolve(c: &mut Criterion) {
    let mut g = c.benchmark_group("jacobi_eigensolve");
    g.sample_size(10);
    for n in [16usize, 48, 96] {
        // A Laplacian-like symmetric matrix.
        let adj = Matrix::from_fn(n, n, |i, j| {
            if i != j && (i + j) % 3 == 0 {
                1.0
            } else {
                0.0
            }
        });
        let lap = normalized_laplacian(&adj);
        g.bench_with_input(BenchmarkId::from_parameter(n), &lap, |b, lap| {
            b.iter(|| symmetric_eigenvalues(lap))
        });
    }
    g.finish();
}

fn bench_ks(c: &mut Criterion) {
    let a: Vec<f64> = (0..512).map(|i| (i as f64 * 37.0) % 101.0).collect();
    let b_: Vec<f64> = (0..512).map(|i| (i as f64 * 53.0) % 97.0).collect();
    c.bench_function("ks_statistic_512", |b| {
        b.iter(|| ancstr_baselines::ks_statistic(&a, &b_))
    });
}

fn bench_placer(c: &mut Criterion) {
    use ancstr_place::{place, AnnealConfig, PlacementProblem};
    let flat = FlatCircuit::elaborate(&comp1(1)).expect("comp1");
    let problem = PlacementProblem::from_circuit(&flat, flat.ground_truth());
    let cfg = AnnealConfig { steps: 40, moves_per_step: 60, ..AnnealConfig::default() };
    let mut g = c.benchmark_group("placer_anneal");
    g.sample_size(10);
    g.bench_function("comp1_47_cells", |b| b.iter(|| place(&problem, &cfg)));
    g.finish();
}

criterion_group!(
    benches,
    bench_graph_build,
    bench_pagerank,
    bench_gnn_forward,
    bench_extraction,
    bench_eigensolve,
    bench_ks,
    bench_placer
);
criterion_main!(benches);
