//! Ablation benches for the design choices DESIGN.md calls out: number
//! of GNN layers K, sizing features on/off (the Fig. 2 story), the
//! top-M embedding budget, power-net pruning, and S³DET spectra caching.
//!
//! These are quality-oriented ablations wrapped in Criterion so the
//! runtime cost of each choice is measured too; the resulting F1 values
//! are printed once per configuration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ancstr_baselines::{s3det_extract, S3detConfig};
use ancstr_bench::{block_dataset, quick_config, train_extractor, AverageRow, MetricRow};
use ancstr_circuits::adc::adc1;
use ancstr_core::{EmbedOptions, FeatureConfig};
use ancstr_graph::BuildOptions;
use ancstr_netlist::flat::FlatCircuit;

fn device_f1(config: ancstr_core::ExtractorConfig) -> f64 {
    let dataset = block_dataset();
    let ex = train_extractor(&dataset, config);
    let rows: Vec<MetricRow> = dataset
        .iter()
        .map(|b| MetricRow::from_evaluation(b.name, &ex.evaluate(&b.flat), |e| e.device))
        .collect();
    AverageRow::of(&rows).f1
}

fn bench_layers_k(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_layers_k");
    group.sample_size(10);
    for k in [1usize, 2, 3] {
        let mut cfg = quick_config();
        cfg.gnn.layers = k;
        let f1 = device_f1(cfg.clone());
        println!("[ablation] K = {k}: device-level mean F1 = {f1:.3}");
        let dataset = block_dataset();
        let ex = train_extractor(&dataset, cfg);
        group.bench_with_input(BenchmarkId::from_parameter(k), &dataset[3], |b, bench| {
            b.iter(|| ex.extract(&bench.flat))
        });
    }
    group.finish();
}

fn bench_sizing_features(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_sizing");
    group.sample_size(10);
    for (name, use_sizing) in [("with_sizing", true), ("without_sizing", false)] {
        let mut cfg = quick_config();
        cfg.features = FeatureConfig { use_sizing };
        let f1 = device_f1(cfg.clone());
        println!("[ablation] {name}: device-level mean F1 = {f1:.3}");
        let dataset = block_dataset();
        let ex = train_extractor(&dataset, cfg);
        group.bench_with_input(BenchmarkId::from_parameter(name), &dataset[0], |b, bench| {
            b.iter(|| ex.extract(&bench.flat))
        });
    }
    group.finish();
}

fn bench_top_m(c: &mut Criterion) {
    let flat = FlatCircuit::elaborate(&adc1()).expect("adc1");
    let dataset = vec![ancstr_bench::Benchmark { name: "ADC1", flat: flat.clone() }];
    let mut group = c.benchmark_group("ablation_top_m");
    group.sample_size(10);
    for m in [1usize, 5, 10, 20] {
        let mut cfg = quick_config();
        cfg.embed = EmbedOptions { m, ..EmbedOptions::default() };
        let ex = train_extractor(&dataset, cfg);
        let eval = ex.evaluate(&flat);
        println!(
            "[ablation] M = {m:>2}: ADC1 system F1 = {:.3}",
            eval.system.f1()
        );
        group.bench_with_input(BenchmarkId::from_parameter(m), &flat, |b, flat| {
            b.iter(|| ex.extract(flat))
        });
    }
    group.finish();
}

fn bench_net_pruning(c: &mut Criterion) {
    let flat = FlatCircuit::elaborate(&adc1()).expect("adc1");
    let mut group = c.benchmark_group("ablation_net_pruning");
    group.sample_size(10);
    for (name, max) in [("faithful_none", None), ("pruned_64", Some(64)), ("pruned_16", Some(16))]
    {
        let mut cfg = quick_config();
        cfg.build = BuildOptions { max_net_degree: max };
        let dataset = vec![ancstr_bench::Benchmark { name: "ADC1", flat: flat.clone() }];
        let ex = train_extractor(&dataset, cfg);
        let eval = ex.evaluate(&flat);
        println!(
            "[ablation] net pruning {name}: ADC1 overall F1 = {:.3}",
            eval.overall.f1()
        );
        group.bench_with_input(BenchmarkId::from_parameter(name), &flat, |b, flat| {
            b.iter(|| ex.extract(flat))
        });
    }
    group.finish();
}

fn bench_s3det_caching(c: &mut Criterion) {
    let flat = FlatCircuit::elaborate(&adc1()).expect("adc1");
    let mut group = c.benchmark_group("ablation_s3det_cache");
    group.sample_size(10);
    for (name, cache) in [("recompute", false), ("cached", true)] {
        let cfg = S3detConfig { cache_spectra: cache, ..Default::default() };
        group.bench_with_input(BenchmarkId::from_parameter(name), &flat, |b, flat| {
            b.iter(|| s3det_extract(flat, &cfg))
        });
    }
    group.finish();
}

fn bench_neighbor_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_neighbor_sampling");
    group.sample_size(10);
    for (name, k) in [("full", None), ("sample8", Some(8usize)), ("sample3", Some(3))] {
        let mut cfg = quick_config();
        cfg.train.neighbor_samples = k;
        let f1 = device_f1(cfg.clone());
        println!("[ablation] neighbor sampling {name}: device-level mean F1 = {f1:.3}");
        let dataset = block_dataset();
        group.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            let mut train_cfg = cfg.clone();
            train_cfg.train.epochs = 3;
            b.iter(|| train_extractor(&dataset, train_cfg.clone()))
        });
    }
    group.finish();
}

fn bench_combiner(c: &mut Criterion) {
    use ancstr_gnn::model::Combiner;
    let mut group = c.benchmark_group("ablation_combiner");
    group.sample_size(10);
    for (name, combiner) in [("gru", Combiner::Gru), ("mean_linear", Combiner::MeanLinear)] {
        let mut cfg = quick_config();
        cfg.gnn.combiner = combiner;
        let f1 = device_f1(cfg.clone());
        println!("[ablation] combiner {name}: device-level mean F1 = {f1:.3}");
        let dataset = block_dataset();
        let ex = train_extractor(&dataset, cfg);
        group.bench_with_input(BenchmarkId::from_parameter(name), &dataset[6], |b, bench| {
            b.iter(|| ex.extract(&bench.flat))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_layers_k,
    bench_sizing_features,
    bench_top_m,
    bench_net_pruning,
    bench_s3det_caching,
    bench_neighbor_sampling,
    bench_combiner
);
criterion_main!(benches);
