//! Offline in-workspace stand-in for the subset of the `criterion`
//! benchmark API this workspace uses.
//!
//! The build environment has no access to crates.io, so the real
//! `criterion` cannot be fetched. This crate implements a simple
//! mean-of-samples timer behind the same API (`Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `criterion_group!`, `criterion_main!`, `black_box`)
//! so `cargo bench` still runs every bench and prints timings, without
//! upstream's statistical analysis, warm-up heuristics, or HTML
//! reports.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { text: format!("{}/{}", function.into(), parameter) }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { text: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Passed to benchmark closures; `iter` times the workload.
pub struct Bencher {
    samples: usize,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Run `f` repeatedly and record the mean wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed call to warm caches.
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        self.total = start.elapsed();
        self.iters = self.samples as u64;
    }
}

/// A named group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher { samples: self.sample_size, total: Duration::ZERO, iters: 0 };
        f(&mut b);
        report(&self.name, &id.to_string(), &b);
        self
    }

    /// Benchmark a closure over one input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher { samples: self.sample_size, total: Duration::ZERO, iters: 0 };
        f(&mut b, input);
        report(&self.name, &id.to_string(), &b);
        self
    }

    /// End the group (upstream flushes reports here; a no-op for us).
    pub fn finish(&mut self) {}
}

fn report(group: &str, id: &str, b: &Bencher) {
    if b.iters == 0 {
        println!("{group}/{id}: no samples recorded");
        return;
    }
    let mean = b.total.as_secs_f64() / b.iters as f64;
    let (value, unit) = if mean < 1e-6 {
        (mean * 1e9, "ns")
    } else if mean < 1e-3 {
        (mean * 1e6, "µs")
    } else if mean < 1.0 {
        (mean * 1e3, "ms")
    } else {
        (mean, "s")
    };
    println!("{group}/{id}: {value:.3} {unit}/iter ({} iters)", b.iters);
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { default_sample_size: 20 }
    }
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup { name: name.into(), sample_size, _criterion: self }
    }

    /// Benchmark a closure outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b =
            Bencher { samples: self.default_sample_size, total: Duration::ZERO, iters: 0 };
        f(&mut b);
        report("bench", id, &b);
        self
    }

    /// Upstream parses CLI args here; we accept and ignore them.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($target(&mut c);)+
        }
    };
}

/// Produce `main` for a bench binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("test_group");
        g.sample_size(3);
        g.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
        g.bench_with_input(BenchmarkId::new("scale", 4), &4u64, |b, &n| {
            b.iter(|| black_box(n) * 2)
        });
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_macro_and_timing_run() {
        benches();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("ours", "ADC1").to_string(), "ours/ADC1");
        assert_eq!(BenchmarkId::from_parameter("gru").to_string(), "gru");
    }
}
