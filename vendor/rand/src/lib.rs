//! Offline in-workspace stand-in for the subset of the `rand` crate API
//! this workspace uses (`Rng`, `SeedableRng`, `rngs::StdRng`,
//! `seq::SliceRandom`).
//!
//! The build environment has no access to crates.io, so the real `rand`
//! cannot be fetched; this crate keeps the workspace self-contained. The
//! generator is xoshiro256++ seeded through SplitMix64 — deterministic
//! for a given seed, statistically solid for simulation/testing, but
//! **not** stream-compatible with upstream `rand::rngs::StdRng` and not
//! cryptographically secure.

#![warn(missing_docs)]

/// Core pseudo-random number source: 64 random bits per call.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of a [`Standard`]-distributed type (`f64` in
    /// `[0, 1)`, uniform integers, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a range (`lo..hi` or `lo..=hi`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} not in [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable uniformly from their "standard" distribution.
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> f64 {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can be sampled uniformly, producing `T`.
pub trait SampleRange<T> {
    /// Draw one value from `rng`.
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

/// Element types uniform ranges can produce. The single blanket
/// [`SampleRange`] impl below relies on this (and mirrors upstream
/// `rand`, which type inference depends on: the range's element type
/// variable must unify with the produced type).
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                lo + ((rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) as $t
                    * (hi - lo)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "cannot sample empty range");
                lo + ((rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) as $t
                    * (hi - lo)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// Deterministically seedable generators.
pub trait SeedableRng: Sized {
    /// Build a generator whose full state derives from one `u64`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded via SplitMix64 (not stream-compatible with upstream
    /// `rand`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl StdRng {
        /// The generator's full internal state, for durable checkpoints:
        /// [`StdRng::from_state`] on these words resumes the exact
        /// stream, which a fresh [`super::SeedableRng::seed_from_u64`]
        /// cannot (the seed only determines the *initial* state).
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator mid-stream from [`StdRng::state`] words.
        ///
        /// An all-zero state is a xoshiro256++ fixed point (the stream
        /// would be constant zero); it is re-seeded from 0 instead, so a
        /// zeroed checkpoint degrades to a valid generator.
        pub fn from_state(s: [u64; 4]) -> StdRng {
            if s == [0; 4] {
                return <StdRng as super::SeedableRng>::seed_from_u64(0);
            }
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The slice element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// One uniformly chosen element, or `None` when empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let va: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        assert_eq!(va, vb);
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(va[0], c.gen::<u64>());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let i = rng.gen_range(3usize..17);
            assert!((3..17).contains(&i));
            let f = rng.gen_range(-2.5f64..=2.5);
            assert!((-2.5..=2.5).contains(&f));
            let n = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&n));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
