//! Offline in-workspace stand-in for the subset of the `proptest` crate
//! API this workspace uses.
//!
//! The build environment has no access to crates.io, so the real
//! `proptest` cannot be fetched. This crate implements the same surface
//! (`proptest!`, `Strategy`, `prop_map`, `prop::collection::vec`, range
//! and tuple strategies, regex-subset string strategies, `prop_assert*`,
//! `prop_assume!`, `ProptestConfig`) with a deterministic per-test RNG.
//!
//! Differences from upstream, by design:
//! * **No shrinking** — a failing case reports its case number and
//!   message; the run is deterministic (seeded from the test's module
//!   path and name), so failures reproduce exactly.
//! * String strategies implement a pragmatic regex subset: literals,
//!   `[...]` classes with ranges, `.`, `\PC`/`\pC`, `\d`, `\w`, `\s`,
//!   and the `{m,n}` / `{n}` / `*` / `+` / `?` quantifiers.

#![warn(missing_docs)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------

/// Deterministic test-case RNG (xoshiro256++ seeded via SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// A generator seeded from an arbitrary label (test name).
    pub fn from_label(label: &str) -> TestRng {
        // FNV-1a over the label, then SplitMix64 expansion.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in label.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng::from_seed(h)
    }

    /// A generator seeded from a `u64`.
    pub fn from_seed(seed: u64) -> TestRng {
        let mut sm = seed;
        TestRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `usize` in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "below(0) is empty");
        (self.next_u64() % bound as u64) as usize
    }
}

// ---------------------------------------------------------------------
// Strategy core
// ---------------------------------------------------------------------

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Discard generated values failing `pred` (re-drawn, bounded).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, whence, pred }
    }

    /// Generate a value, then generate from the strategy it maps to.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy { inner: std::rc::Rc::new(self) }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.new_value(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter `{}` rejected 10000 consecutive draws", self.whence)
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn new_value(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

/// See [`Strategy::boxed`].
pub struct BoxedStrategy<T> {
    inner: std::rc::Rc<dyn Strategy<Value = T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy { inner: self.inner.clone() }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        self.inner.new_value(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---------------------------------------------------------------------
// Primitive strategies: ranges, bool, tuples
// ---------------------------------------------------------------------

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + (rng.unit_f64() as $t) * (hi - lo)
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Types with a canonical "arbitrary" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Produce one arbitrary value.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary_value(rng: &mut TestRng) -> f64 {
        // Mostly finite values across magnitudes; occasionally special.
        match rng.below(16) {
            0 => 0.0,
            1 => -0.0,
            2 => f64::NAN,
            3 => f64::INFINITY,
            4 => f64::NEG_INFINITY,
            _ => {
                let m = rng.unit_f64() * 2.0 - 1.0;
                let e = (rng.below(61) as i32) - 30;
                m * 10f64.powi(e)
            }
        }
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for char {
    fn arbitrary_value(rng: &mut TestRng) -> char {
        strings::printable_char(rng)
    }
}

/// Strategy wrapper returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

/// The canonical strategy for `T` (`any::<bool>()`, …).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

// ---------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------

/// Size specification for collection strategies.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // inclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange { lo: r.start, hi: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange { lo: *r.start(), hi: *r.end() }
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// A vector of `size` elements generated by `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi - self.size.lo + 1;
            let n = self.size.lo + rng.below(span.max(1));
            (0..n).map(|_| self.elem.new_value(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------
// Regex-subset string strategies
// ---------------------------------------------------------------------

pub(crate) mod strings {
    use super::TestRng;

    /// A printable (non-control) char: mostly ASCII, occasionally a
    /// small unicode sample to exercise multi-byte handling.
    pub fn printable_char(rng: &mut TestRng) -> char {
        const EXOTIC: &[char] = &['µ', 'Ω', '中', 'é', '☃', '¢', 'ß', '→'];
        if rng.below(8) == 0 {
            EXOTIC[rng.below(EXOTIC.len())]
        } else {
            char::from(32 + rng.below(95) as u8) // ' ' ..= '~'
        }
    }

    #[derive(Debug, Clone)]
    enum Atom {
        Literal(char),
        Class(Vec<(char, char)>), // inclusive ranges
        AnyPrintable,
        Digit,
        Word,
        Space,
    }

    #[derive(Debug, Clone)]
    struct Piece {
        atom: Atom,
        min: usize,
        max: usize,
    }

    /// Parse the supported regex subset. Panics on constructs outside
    /// the subset — that is a bug in the calling test, not an input
    /// condition.
    fn parse(pattern: &str) -> Vec<Piece> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut i = 0;
        let mut pieces = Vec::new();
        while i < chars.len() {
            let atom = match chars[i] {
                '\\' => {
                    i += 1;
                    let c = *chars.get(i).unwrap_or_else(|| panic!("dangling `\\` in `{pattern}`"));
                    i += 1;
                    match c {
                        'P' | 'p' => {
                            // `\PC` / `\pC` — (non-)control general
                            // category; both generate printable chars.
                            let class = *chars
                                .get(i)
                                .unwrap_or_else(|| panic!("dangling `\\{c}` in `{pattern}`"));
                            assert!(
                                class == 'C',
                                "unsupported unicode class `\\{c}{class}` in `{pattern}`"
                            );
                            i += 1;
                            Atom::AnyPrintable
                        }
                        'd' => Atom::Digit,
                        'w' => Atom::Word,
                        's' => Atom::Space,
                        'n' => Atom::Literal('\n'),
                        't' => Atom::Literal('\t'),
                        other => Atom::Literal(other),
                    }
                }
                '[' => {
                    i += 1;
                    let mut ranges = Vec::new();
                    while i < chars.len() && chars[i] != ']' {
                        let mut c = chars[i];
                        if c == '\\' {
                            i += 1;
                            c = *chars
                                .get(i)
                                .unwrap_or_else(|| panic!("dangling `\\` in class in `{pattern}`"));
                        }
                        if chars.get(i + 1) == Some(&'-') && chars.get(i + 2).is_some_and(|&e| e != ']') {
                            let end = chars[i + 2];
                            ranges.push((c, end));
                            i += 3;
                        } else {
                            ranges.push((c, c));
                            i += 1;
                        }
                    }
                    assert!(i < chars.len(), "unterminated `[` in `{pattern}`");
                    i += 1; // skip ']'
                    Atom::Class(ranges)
                }
                '.' => {
                    i += 1;
                    Atom::AnyPrintable
                }
                c => {
                    i += 1;
                    Atom::Literal(c)
                }
            };
            // Quantifier.
            let (min, max) = match chars.get(i) {
                Some('{') => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .unwrap_or_else(|| panic!("unterminated `{{` in `{pattern}`"))
                        + i;
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((lo, hi)) => {
                            let lo = lo.trim().parse().expect("bad quantifier lower bound");
                            let hi = hi.trim().parse().expect("bad quantifier upper bound");
                            (lo, hi)
                        }
                        None => {
                            let n = body.trim().parse().expect("bad quantifier count");
                            (n, n)
                        }
                    }
                }
                Some('*') => {
                    i += 1;
                    (0, 8)
                }
                Some('+') => {
                    i += 1;
                    (1, 8)
                }
                Some('?') => {
                    i += 1;
                    (0, 1)
                }
                _ => (1, 1),
            };
            pieces.push(Piece { atom, min, max });
        }
        pieces
    }

    fn gen_atom(atom: &Atom, rng: &mut TestRng) -> char {
        match atom {
            Atom::Literal(c) => *c,
            Atom::AnyPrintable => printable_char(rng),
            Atom::Digit => char::from(b'0' + rng.below(10) as u8),
            Atom::Word => {
                const W: &[u8] =
                    b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_";
                char::from(W[rng.below(W.len())])
            }
            Atom::Space => [' ', '\t', '\n'][rng.below(3)],
            Atom::Class(ranges) => {
                let total: u32 = ranges
                    .iter()
                    .map(|&(a, b)| (b as u32).saturating_sub(a as u32) + 1)
                    .sum();
                let mut pick = rng.below(total.max(1) as usize) as u32;
                for &(a, b) in ranges {
                    let span = (b as u32) - (a as u32) + 1;
                    if pick < span {
                        return char::from_u32(a as u32 + pick).unwrap_or(a);
                    }
                    pick -= span;
                }
                ranges.first().map_or('?', |&(a, _)| a)
            }
        }
    }

    /// Generate one string matching the pattern subset.
    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let pieces = parse(pattern);
        let mut out = String::new();
        for p in &pieces {
            let n = p.min + rng.below(p.max - p.min + 1);
            for _ in 0..n {
                out.push(gen_atom(&p.atom, rng));
            }
        }
        out
    }
}

impl Strategy for &'static str {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        strings::generate(self, rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        strings::generate(self, rng)
    }
}

// ---------------------------------------------------------------------
// Runner plumbing
// ---------------------------------------------------------------------

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Maximum number of `prop_assume!` rejections tolerated.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64, max_global_rejects: 65_536 }
    }
}

impl ProptestConfig {
    /// A config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases, ..ProptestConfig::default() }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is re-drawn.
    Reject(String),
    /// An assertion failed; the whole test fails.
    Fail(String),
}

impl TestCaseError {
    /// Construct a failure.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    /// Construct a rejection.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "failed: {m}"),
        }
    }
}

/// Result type of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Everything a `use proptest::prelude::*;` is expected to bring in.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

// ---------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------

/// Assert inside a proptest body; failure fails the whole test with the
/// generated case's number in the message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// `prop_assert!(a == b)` with value reporting.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// `prop_assert!(a != b)` with value reporting.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {} != {}\n  both: {:?}",
            stringify!($a), stringify!($b), a);
    }};
}

/// Reject this generated case (it is re-drawn, not counted as a pass).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Define property tests. Mirrors upstream `proptest!` syntax for the
/// forms used in this workspace.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let label = concat!(module_path!(), "::", stringify!($name));
            let mut rng = $crate::TestRng::from_label(label);
            let mut passed: u32 = 0;
            let mut rejected: u32 = 0;
            let mut case: u64 = 0;
            while passed < config.cases {
                case += 1;
                let result: $crate::TestCaseResult = (|| {
                    $(let $arg = $crate::Strategy::new_value(&($strat), &mut rng);)+
                    $body
                    ::core::result::Result::Ok(())
                })();
                match result {
                    ::core::result::Result::Ok(()) => passed += 1,
                    ::core::result::Result::Err($crate::TestCaseError::Reject(_)) => {
                        rejected += 1;
                        if rejected > config.max_global_rejects {
                            panic!(
                                "proptest `{}`: too many prop_assume! rejections ({})",
                                stringify!($name), rejected
                            );
                        }
                    }
                    ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest `{}` failed at generated case #{} (after {} passes): {}",
                            stringify!($name), case, passed, msg
                        );
                    }
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn regex_subset_generates_matching_strings() {
        let mut rng = crate::TestRng::from_label("regex");
        for _ in 0..200 {
            let s = crate::strings::generate("[a-c]{2,4}", &mut rng);
            assert!(s.len() >= 2 && s.len() <= 4);
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)));

            let t = crate::strings::generate("\\PC{0,20}", &mut rng);
            assert!(t.chars().count() <= 20);
            assert!(t.chars().all(|c| !c.is_control()));

            let u = crate::strings::generate("[MRCLXQD.*+][a-z0-9 =._]{0,5}", &mut rng);
            assert!(!u.is_empty());
            assert!("MRCLXQD.*+".contains(u.chars().next().unwrap()));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::from_label("x");
        let mut b = crate::TestRng::from_label("x");
        let s = crate::collection::vec(0usize..100, 3..10);
        assert_eq!(s.new_value(&mut a), s.new_value(&mut b));
    }

    proptest! {
        #[test]
        fn macro_smoke(v in prop::collection::vec(0usize..10, 1..5), flag in any::<bool>()) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|&x| x < 10));
            let _ = flag;
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(17))]
        #[test]
        fn config_and_assume(x in 0i32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
            prop_assert_ne!(x, 1);
        }
    }
}
