//! Kill-at-epoch acceptance test: SIGKILL-equivalent crash mid-training
//! (`std::process::abort` fired from inside the binary immediately
//! after a checkpoint write — no destructors, no flushes, exactly what
//! a power cut leaves behind), then `--resume`, then assert the final
//! constraints and the sealed model artifact are **bit-identical** to
//! an uninterrupted reference run.

use std::fs;
use std::path::PathBuf;
use std::process::Command;

const NETLIST: &str = "\
.subckt sa inp inn outp outn clk vdd vss
*.class comparator
M1 x1 inp tail vss nch_lvt w=6u l=0.1u
M2 x2 inn tail vss nch_lvt w=6u l=0.1u
M3 outn outp x1 vss nch_lvt w=6u l=0.1u
M4 outp outn x2 vss nch_lvt w=6u l=0.1u
M5 outn outp vdd vdd pch_lvt w=12u l=0.1u
M6 outp outn vdd vdd pch_lvt w=12u l=0.1u
M7 tail clk vss vss nch w=12u l=0.1u
.ends
";

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ancstr"))
}

fn workdir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("ancstr-crash-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create temp workdir");
    dir
}

const EPOCHS: &str = "30";
const SEED: &str = "11";

fn extract(sp: &PathBuf, run: &PathBuf, out: &PathBuf, resume: bool) -> Command {
    let mut cmd = bin();
    cmd.arg("extract")
        .arg(sp)
        .args(["--epochs", EPOCHS, "--seed", SEED, "--checkpoint-every", "1"])
        .arg("--run-dir")
        .arg(run)
        .arg("-o")
        .arg(out);
    if resume {
        cmd.arg("--resume");
    }
    cmd
}

#[test]
fn killed_mid_training_then_resumed_is_bit_identical_to_uninterrupted() {
    let dir = workdir("kill");
    let sp = dir.join("sa.sp");
    fs::write(&sp, NETLIST).unwrap();

    // Reference: one uninterrupted durable run.
    let ref_run = dir.join("ref-run");
    let ref_out = dir.join("ref.sym");
    let out = extract(&sp, &ref_run, &ref_out, false).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    // Crashed run: the binary aborts right after the 5th checkpoint
    // write (completed epoch 5 of 30) — mid-pipeline, nothing cleaned
    // up, no output file written.
    let run = dir.join("crash-run");
    let sym = dir.join("crash.sym");
    let out = extract(&sp, &run, &sym, false)
        .env("ANCSTR_TEST_ABORT_AFTER_CHECKPOINTS", "5")
        .output()
        .unwrap();
    assert!(!out.status.success(), "the crash hook must kill the process");
    assert!(out.status.code() != Some(0), "{:?}", out.status);
    assert!(!sym.exists(), "no constraints may be written before the crash point");
    assert!(run.join("manifest.json").exists(), "manifest survives the crash");
    assert!(
        run.join("checkpoints").join("epoch-000005.ckpt").exists(),
        "the checkpoint that triggered the abort is on disk"
    );

    // Resume in a fresh process. It must pick the run up from epoch 5,
    // finish, and write outputs.
    let out = extract(&sp, &run, &sym, true).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("resumed training from the epoch-5 checkpoint"),
        "{stderr}"
    );

    // Bit-identical constraints and sealed model artifact.
    let reference = fs::read(&ref_out).unwrap();
    let resumed = fs::read(&sym).unwrap();
    assert!(!reference.is_empty());
    assert_eq!(resumed, reference, "constraints diverged across crash/resume");
    let ref_model = fs::read(ref_run.join("model.txt")).unwrap();
    let model = fs::read(run.join("model.txt")).unwrap();
    assert_eq!(model, ref_model, "model weights diverged across crash/resume");

    // And both match a run that never used a run directory at all.
    let plain = dir.join("plain.sym");
    let out = bin()
        .arg("extract")
        .arg(&sp)
        .args(["--epochs", EPOCHS, "--seed", SEED])
        .arg("-o")
        .arg(&plain)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert_eq!(fs::read(&plain).unwrap(), reference, "durable vs plain runs diverged");
}

/// Crashing *twice* — once more after resuming — still converges to the
/// identical result: resume composes with itself.
#[test]
fn double_crash_still_resumes_bit_identically() {
    let dir = workdir("double-kill");
    let sp = dir.join("sa.sp");
    fs::write(&sp, NETLIST).unwrap();

    let ref_run = dir.join("ref-run");
    let ref_out = dir.join("ref.sym");
    let out = extract(&sp, &ref_run, &ref_out, false).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let run = dir.join("crash-run");
    let sym = dir.join("crash.sym");
    let out = extract(&sp, &run, &sym, false)
        .env("ANCSTR_TEST_ABORT_AFTER_CHECKPOINTS", "3")
        .output()
        .unwrap();
    assert!(!out.status.success());
    // Second crash *after a resume*: four more checkpoint writes land
    // at epoch 7.
    let out = extract(&sp, &run, &sym, true)
        .env("ANCSTR_TEST_ABORT_AFTER_CHECKPOINTS", "4")
        .output()
        .unwrap();
    assert!(!out.status.success());
    let out = extract(&sp, &run, &sym, true).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("resumed training from the epoch-7 checkpoint"), "{stderr}");

    assert_eq!(fs::read(&sym).unwrap(), fs::read(&ref_out).unwrap());
    assert_eq!(
        fs::read(run.join("model.txt")).unwrap(),
        fs::read(ref_run.join("model.txt")).unwrap()
    );
}
