//! Observability integration tests, covering the PR's two acceptance
//! criteria end to end:
//!
//! 1. Observation is strictly read-only: a traced run produces
//!    byte-identical pipeline outputs (model text, constraints, metrics
//!    table) to an unobserved run with the same seed.
//! 2. A fully observed run emits a schema-valid JSONL trace covering
//!    every one of the seven pipeline stages plus per-epoch training
//!    telemetry, and a Prometheus exposition that re-parses.
//!
//! Both library-level (in-memory tracer) and binary-level (`--trace-out`
//! + `obs-check`) paths are exercised.

use std::fs;
use std::path::PathBuf;
use std::process::Command;

use ancstr_core::{
    render_metrics_table, write_constraints, ExtractorConfig, PipelineObs, SymmetryExtractor,
    STAGES,
};
use ancstr_gnn::HealthConfig;
use ancstr_netlist::parse::parse_spice;
use ancstr_netlist::FlatCircuit;
use ancstr_obs::{validate_exposition, validate_trace, Tracer};

const NETLIST: &str = "\
.subckt sa inp inn outp outn clk vdd vss
*.class comparator
M1 x1 inp tail vss nch_lvt w=6u l=0.1u
M2 x2 inn tail vss nch_lvt w=6u l=0.1u
M3 outn outp x1 vss nch_lvt w=6u l=0.1u
M4 outp outn x2 vss nch_lvt w=6u l=0.1u
M5 outn outp vdd vdd pch_lvt w=12u l=0.1u
M6 outp outn vdd vdd pch_lvt w=12u l=0.1u
M7 tail clk vss vss nch w=12u l=0.1u
.ends
";

const EPOCHS: usize = 12;

fn fixture() -> FlatCircuit {
    let nl = parse_spice(NETLIST).expect("valid SPICE");
    FlatCircuit::elaborate(&nl).expect("elaborates")
}

fn quick_config() -> ExtractorConfig {
    let mut cfg = ExtractorConfig::default();
    cfg.train.epochs = EPOCHS;
    cfg.train.seed = 7;
    cfg.gnn.seed = 7;
    cfg
}

/// Run fit + extract and return the three user-visible artifacts:
/// (model text, constraints text, metrics table).
fn run_pipeline(obs: Option<&PipelineObs>) -> (String, String, String) {
    let flat = fixture();
    let mut ex = SymmetryExtractor::try_new(quick_config()).expect("config is valid");
    let health = HealthConfig::default();
    let result = match obs {
        Some(obs) => {
            ex.try_fit_observed(&[&flat], &health, obs).expect("fit");
            ex.try_extract_observed(&flat, obs).expect("extract")
        }
        None => {
            ex.try_fit(&[&flat], &health).expect("fit");
            ex.try_extract(&flat).expect("extract")
        }
    };
    (
        ex.model().to_text(),
        write_constraints(&flat, &result.detection.constraints),
        render_metrics_table(&flat, &result.detection.constraints),
    )
}

/// Criterion 1 (library level): tracing a run does not change a single
/// byte of its outputs — model, constraints, and metrics table are all
/// identical with a disabled handle, an enabled handle, and a full
/// in-memory tracer.
#[test]
fn observed_run_is_byte_identical_to_plain_run() {
    let plain = run_pipeline(None);
    let disabled = run_pipeline(Some(&PipelineObs::disabled()));
    let (tracer, buf) = Tracer::in_memory();
    let enabled = PipelineObs::new(Some(tracer));
    let traced = run_pipeline(Some(&enabled));
    enabled.flush();

    assert_eq!(plain.0, disabled.0, "model text drifted under a disabled handle");
    assert_eq!(plain.0, traced.0, "model text drifted under tracing");
    assert_eq!(plain.1, traced.1, "constraints drifted under tracing");
    assert_eq!(plain.2, traced.2, "metrics table drifted under tracing");
    // And the trace itself was real, not empty.
    assert!(
        !validate_trace(&buf.contents()).expect("trace validates").is_empty(),
        "tracer saw no events"
    );
}

/// Criterion 2 (library level): one observed fit + extract covers all
/// seven stages with schema-valid spans, exactly one epoch event per
/// configured epoch, and a metrics registry that renders to valid
/// Prometheus exposition (also via the atomic `write_prom` path).
#[test]
fn observed_run_covers_all_stages_with_epoch_telemetry() {
    let dir = workdir("coverage");
    let sp = dir.join("sa.sp");
    fs::write(&sp, NETLIST).unwrap();

    let (tracer, buf) = Tracer::in_memory();
    let obs = PipelineObs::new(Some(tracer));
    let flat = ancstr_core::load_netlist_observed(sp.to_str().unwrap(), &obs).expect("loads");
    let mut ex = SymmetryExtractor::try_new(quick_config()).expect("config is valid");
    ex.try_fit_observed(&[&flat], &HealthConfig::default(), &obs).expect("fit");
    ex.try_extract_observed(&flat, &obs).expect("extract");
    obs.flush();

    let events = validate_trace(&buf.contents()).expect("schema-valid trace");
    for stage in STAGES {
        assert!(
            events.iter().any(|e| e.kind == "span_start" && e.stage == stage),
            "stage `{stage}` has no span in the trace"
        );
    }
    let epochs = events.iter().filter(|e| e.kind == "event" && e.span == "epoch").count();
    assert_eq!(epochs, EPOCHS, "one telemetry event per training epoch");
    // Epoch events nest under the train span.
    let train_id = events
        .iter()
        .find(|e| e.kind == "span_start" && e.stage == "train" && e.span == "train")
        .expect("train span present")
        .id;
    assert!(
        events.iter().filter(|e| e.span == "epoch").all(|e| e.parent == train_id),
        "epoch events must be children of the train span"
    );

    let prom = obs.metrics().render();
    validate_exposition(&prom).expect("valid Prometheus exposition");
    assert!(prom.contains("ancstr_train_epochs_total"), "{prom}");
    assert!(prom.contains("ancstr_stage_duration_seconds_bucket"), "{prom}");

    let path = dir.join("metrics.prom");
    obs.write_prom(&path).expect("atomic write");
    let reread = fs::read_to_string(&path).unwrap();
    assert_eq!(reread, prom, "write_prom altered the exposition");
}

// ---- binary-level tests --------------------------------------------------

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ancstr"))
}

fn workdir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("ancstr-obs-test-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create temp workdir");
    dir
}

/// Criterion 1 (binary level): `-o` output is byte-identical with and
/// without `--trace-out`, and the produced trace passes `obs-check`
/// with full stage coverage and epoch telemetry required.
#[test]
fn cli_trace_out_does_not_change_outputs_and_validates() {
    let dir = workdir("cli-trace");
    let sp = dir.join("sa.sp");
    fs::write(&sp, NETLIST).unwrap();
    let plain_out = dir.join("plain.sym");
    let traced_out = dir.join("traced.sym");
    let trace = dir.join("trace.jsonl");

    let common = ["--epochs", "12", "--seed", "3"];
    let out = bin().arg("extract").arg(&sp).args(common).arg("-o").arg(&plain_out)
        .output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let out = bin().arg("extract").arg(&sp).args(common).arg("-o").arg(&traced_out)
        .arg("--trace-out").arg(&trace)
        .output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert_eq!(
        fs::read(&plain_out).unwrap(),
        fs::read(&traced_out).unwrap(),
        "--trace-out changed the constraint output"
    );

    // Self-contained validation via the library…
    let events = validate_trace(&fs::read_to_string(&trace).unwrap()).expect("valid trace");
    for stage in STAGES {
        assert!(
            events.iter().any(|e| e.kind == "span_start" && e.stage == stage),
            "stage `{stage}` missing from CLI trace"
        );
    }
    // …and via the `obs-check` subcommand CI uses.
    let out = bin().arg("obs-check").arg("--trace").arg(&trace)
        .args(["--require-stages", "all", "--require-epoch-events"])
        .output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    // A malformed trace must fail obs-check with exit 1.
    let broken = dir.join("broken.jsonl");
    fs::write(&broken, "{\"ts_ns\":1,\"kind\":\"bogus\"}\n").unwrap();
    let out = bin().arg("obs-check").arg("--trace").arg(&broken).output().unwrap();
    assert_eq!(out.status.code(), Some(1), "{}", String::from_utf8_lossy(&out.stderr));
}

/// A durable run writes `<run-dir>/metrics.prom` that re-parses as
/// Prometheus exposition (checked via `obs-check --prom`).
#[test]
fn durable_run_writes_valid_metrics_prom() {
    let dir = workdir("cli-prom");
    let sp = dir.join("sa.sp");
    fs::write(&sp, NETLIST).unwrap();
    let run = dir.join("run");

    let out = bin().arg("extract").arg(&sp)
        .args(["--epochs", "12", "--seed", "3"])
        .arg("--run-dir").arg(&run)
        .output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let prom = run.join("metrics.prom");
    let text = fs::read_to_string(&prom).expect("metrics.prom written");
    let samples = validate_exposition(&text).expect("valid exposition");
    assert!(samples > 0);
    assert!(text.contains("ancstr_stage_runs_total"), "{text}");

    let out = bin().arg("obs-check").arg("--prom").arg(&prom).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
}

/// `--log-format json` makes every stderr line a parseable JSON object
/// with `level` and `msg` keys; `--quiet` silences progress entirely.
#[test]
fn json_logs_parse_and_quiet_silences_progress() {
    let dir = workdir("cli-logs");
    let sp = dir.join("sa.sp");
    fs::write(&sp, NETLIST).unwrap();

    let out = bin().arg("extract").arg(&sp)
        .args(["--epochs", "12", "--log-format", "json"])
        .output().unwrap();
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!stderr.trim().is_empty(), "progress expected on stderr");
    for line in stderr.lines() {
        let parsed = ancstr_obs::json::parse(line).expect("stderr line is JSON");
        let obj = parsed.as_obj().expect("stderr line is a JSON object");
        assert!(obj.contains_key("level") && obj.contains_key("msg"), "{line}");
    }

    let out = bin().arg("extract").arg(&sp)
        .args(["--epochs", "12", "--quiet"])
        .output().unwrap();
    assert!(out.status.success());
    assert!(
        out.stderr.is_empty(),
        "--quiet left stderr output: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

/// Satellite 6: a watchdog-cancelled run (exit 10) still flushes
/// observability — the partial `--metrics` file records the abort, the
/// trace ends with a `run_aborted` event, and `metrics.prom` exists
/// and validates.
#[test]
fn aborted_run_flushes_partial_metrics_and_run_aborted_event() {
    let dir = workdir("cli-abort");
    let sp = dir.join("sa.sp");
    fs::write(&sp, NETLIST).unwrap();
    let run = dir.join("run");
    let metrics = dir.join("metrics.txt");
    let trace = dir.join("trace.jsonl");

    // Deterministic cancellation: the run store honours this env hook
    // as if the deadline watchdog had fired after the 2nd checkpoint.
    let out = bin().arg("extract").arg(&sp)
        .args(["--epochs", "50000", "--seed", "3", "--checkpoint-every", "5",
               "--time-budget", "3600"])
        .arg("--run-dir").arg(&run)
        .arg("--metrics").arg(&metrics)
        .arg("--trace-out").arg(&trace)
        .env("ANCSTR_TEST_CANCEL_AFTER_CHECKPOINTS", "2")
        .output().unwrap();
    assert_eq!(out.status.code(), Some(10), "{}", String::from_utf8_lossy(&out.stderr));

    let partial = fs::read_to_string(&metrics).expect("partial metrics written on abort");
    assert!(partial.contains("run_aborted exit_code=10"), "{partial}");

    let events = validate_trace(&fs::read_to_string(&trace).unwrap())
        .expect("aborted trace still validates");
    assert!(
        events.iter().any(|e| e.kind == "event" && e.span == "run_aborted"),
        "no run_aborted event in the trace"
    );

    let prom = fs::read_to_string(run.join("metrics.prom")).expect("metrics.prom on abort");
    validate_exposition(&prom).expect("valid exposition after abort");
    assert!(prom.contains("ancstr_run_aborted_total 1"), "{prom}");
}
