//! Cross-crate comparisons: the headline claims of Tables V–VI must
//! hold on the synthetic benchmarks — who wins, and in which metric.

use ancstr_baselines::{s3det_extract, sfa_extract, S3detConfig, SfaConfig};
use ancstr_bench::{block_dataset, quick_config, train_extractor, AverageRow, MetricRow};
use ancstr_circuits::adc::adc1;
use ancstr_core::pipeline::evaluate_detection;
use ancstr_core::roc_curve;
use ancstr_netlist::flat::FlatCircuit;

/// Table VI shape: SFA recalls more but false-alarms much more; the GNN
/// wins on FPR, PPV, and F1.
#[test]
fn device_level_shape_holds() {
    let dataset = block_dataset();
    let extractor = train_extractor(&dataset, quick_config());

    let mut gnn_rows = Vec::new();
    let mut sfa_rows = Vec::new();
    for b in &dataset {
        let g = extractor.evaluate(&b.flat);
        gnn_rows.push(MetricRow::from_evaluation(b.name, &g, |e| e.device));
        let s = evaluate_detection(&b.flat, sfa_extract(&b.flat, &SfaConfig::default()));
        sfa_rows.push(MetricRow::from_evaluation(b.name, &s, |e| e.device));
    }
    let gnn = AverageRow::of(&gnn_rows);
    let sfa = AverageRow::of(&sfa_rows);

    assert!(sfa.tpr >= gnn.tpr - 0.05, "SFA recalls at least comparably");
    assert!(gnn.fpr < sfa.fpr / 2.0, "GNN false-alarms far less: {} vs {}", gnn.fpr, sfa.fpr);
    assert!(gnn.ppv > sfa.ppv, "GNN precision wins");
    assert!(gnn.f1 > sfa.f1, "GNN F1 wins: {} vs {}", gnn.f1, sfa.f1);
    assert!(gnn.fpr < 0.05, "GNN FPR is small in absolute terms");
}

/// Table V shape on one ADC: S3DET is sizing-blind (high FPR), the GNN
/// is precise; the GNN is also faster.
#[test]
fn system_level_shape_holds_on_adc1() {
    let flat = FlatCircuit::elaborate(&adc1()).expect("adc1");
    let mut ex = ancstr_core::SymmetryExtractor::new(quick_config());
    ex.fit(&[&flat]);
    let gnn = ex.evaluate(&flat);
    let s3 = evaluate_detection(&flat, s3det_extract(&flat, &S3detConfig::default()));

    assert!(
        gnn.system.fpr() < s3.system.fpr(),
        "GNN FPR {} < S3DET FPR {}",
        gnn.system.fpr(),
        s3.system.fpr()
    );
    assert!(
        gnn.system.f1() > s3.system.f1(),
        "GNN F1 {} > S3DET F1 {}",
        gnn.system.f1(),
        s3.system.f1()
    );
}

/// Fig. 6 shape: the GNN ROC dominates S3DET's on merged system pairs.
#[test]
fn system_roc_dominates() {
    let flat = FlatCircuit::elaborate(&adc1()).expect("adc1");
    let mut ex = ancstr_core::SymmetryExtractor::new(quick_config());
    ex.fit(&[&flat]);
    let gnn_samples = ex.evaluate(&flat).system_samples;
    let s3 = evaluate_detection(
        &flat,
        s3det_extract(&flat, &S3detConfig { cache_spectra: true, ..Default::default() }),
    );
    let gnn_auc = roc_curve(&gnn_samples).auc;
    let s3_auc = roc_curve(&s3.system_samples).auc;
    assert!(
        gnn_auc > s3_auc,
        "GNN AUC {gnn_auc:.3} should exceed S3DET AUC {s3_auc:.3}"
    );
}

/// Fig. 7 shape: device-level merged AUC is high (paper: 0.956).
#[test]
fn device_roc_auc_is_high() {
    let dataset = block_dataset();
    let extractor = train_extractor(&dataset, quick_config());
    let mut samples = Vec::new();
    for b in &dataset {
        samples.extend(extractor.evaluate(&b.flat).device_samples);
    }
    let auc = roc_curve(&samples).auc;
    assert!(auc > 0.85, "device-level AUC {auc:.3} (paper: 0.956)");
}

/// Runtime shape: S3DET cost grows much faster with design size than
/// the GNN's (the 218x story, scaled to our substrate).
#[test]
fn runtime_gap_grows_with_design_size() {
    let small = FlatCircuit::elaborate(&ancstr_circuits::comparator::comp3(1)).expect("comp3");
    let large = FlatCircuit::elaborate(&ancstr_circuits::adc::adc5()).expect("adc5");

    let t_small = s3det_extract(&small, &S3detConfig::default()).runtime;
    let t_large = s3det_extract(&large, &S3detConfig::default()).runtime;

    let mut ex = ancstr_core::SymmetryExtractor::new(quick_config());
    ex.fit(&[&small]);
    let g_small = ex.extract(&small).runtime;
    let g_large = ex.extract(&large).runtime;

    let s3_growth = t_large.as_secs_f64() / t_small.as_secs_f64().max(1e-6);
    let gnn_growth = g_large.as_secs_f64() / g_small.as_secs_f64().max(1e-6);
    assert!(
        s3_growth > gnn_growth,
        "S3DET growth {s3_growth:.1}x vs GNN growth {gnn_growth:.1}x"
    );
}
