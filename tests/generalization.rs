//! Generalizability integration tests: the unsupervised model trained
//! on the Table IV corpus transfers zero-shot to unseen circuit
//! classes, with precision intact (the paper's core inductive claim).

use ancstr_bench::{block_dataset, quick_config, train_extractor};
use ancstr_circuits::extras::extra_benchmarks;
use ancstr_netlist::flat::FlatCircuit;

#[test]
fn zero_shot_precision_stays_high() {
    let train_set = block_dataset();
    let extractor = train_extractor(&train_set, quick_config());

    let mut total_tp = 0usize;
    let mut total_fp = 0usize;
    for (name, nl) in extra_benchmarks(5) {
        let flat = FlatCircuit::elaborate(&nl).unwrap_or_else(|e| panic!("{name}: {e}"));
        let eval = extractor.evaluate(&flat);
        total_tp += eval.overall.tp;
        total_fp += eval.overall.fp;
        assert!(
            eval.overall.fpr() < 0.35,
            "{name}: zero-shot FPR {:.3} too high",
            eval.overall.fpr()
        );
    }
    // Micro-averaged precision across the unseen suite.
    let ppv = total_tp as f64 / (total_tp + total_fp).max(1) as f64;
    assert!(ppv > 0.7, "zero-shot micro PPV {ppv:.3}");
    assert!(total_tp >= 10, "finds a useful number of pairs: {total_tp}");
}

#[test]
fn ring_vco_stage_group_transfers() {
    // Perfectly matched identical stages should be found even though no
    // VCO was ever in the training set.
    let train_set = block_dataset();
    let extractor = train_extractor(&train_set, quick_config());
    let flat = FlatCircuit::elaborate(&ancstr_circuits::extras::ring_vco(1)).unwrap();
    let eval = extractor.evaluate(&flat);
    assert!(
        eval.system.tpr() > 0.5,
        "VCO stages found zero-shot: {:?}",
        eval.system
    );
}

#[test]
fn mixed_topologies_train_together() {
    // The paper's premise: one functionality, many topologies. Train a
    // single model jointly on four OTA/comparator topologies plus the
    // regular corpus and verify every variant still gets high-precision
    // extraction from the shared weights.
    use ancstr_bench::Benchmark;
    use ancstr_circuits::variants::variant_benchmarks;

    let mut dataset = block_dataset();
    let variants: Vec<(&'static str, FlatCircuit)> = variant_benchmarks(3)
        .into_iter()
        .map(|(name, nl)| (name, FlatCircuit::elaborate(&nl).expect("variant elaborates")))
        .collect();
    for (name, flat) in &variants {
        dataset.push(Benchmark { name, flat: flat.clone() });
    }
    let extractor = train_extractor(&dataset, quick_config());
    let mut total_tp = 0;
    for (name, flat) in &variants {
        let eval = extractor.evaluate(flat);
        assert!(
            eval.overall.ppv() > 0.7,
            "{name}: mixed-topology PPV {:.3}",
            eval.overall.ppv()
        );
        total_tp += eval.overall.tp;
    }
    // Recall varies per topology (the single-ended telescopic OTA's
    // asymmetric output defeats the 0.99 threshold, like the paper's
    // low-TPR OTA rows); the aggregate must still be substantial.
    assert!(total_tp >= 8, "mixed-topology total TP = {total_tp}");
}

#[test]
fn pretrained_model_round_trips_through_text() {
    use ancstr_core::SymmetryExtractor;
    use ancstr_gnn::GnnModel;

    let train_set = block_dataset();
    let extractor = train_extractor(&train_set[..3], quick_config());
    let text = extractor.model().to_text();
    let model = GnnModel::from_text(&text).expect("serialized model parses");
    let restored = SymmetryExtractor::new(quick_config())
        .with_model(model)
        .expect("dimensions match");

    let flat = FlatCircuit::elaborate(&ancstr_circuits::extras::ldo(2)).unwrap();
    let a = extractor.extract(&flat);
    let b = restored.extract(&flat);
    assert_eq!(
        a.detection.constraints.len(),
        b.detection.constraints.len()
    );
    for (x, y) in a.detection.scored.iter().zip(&b.detection.scored) {
        assert!((x.score - y.score).abs() < 1e-12);
    }
}
