//! One-stop fidelity check: every numeric choice the paper pins down,
//! asserted against the defaults of this implementation.

use ancstr_core::{EmbedOptions, ExtractorConfig, ThresholdConfig, FEATURE_DIM};
use ancstr_gnn::LossConfig;
use ancstr_netlist::{DeviceType, PortType};

#[test]
fn table2_feature_layout() {
    // 15-dim one-hot device type + 2 geometry + 1 layer = 18.
    assert_eq!(DeviceType::COUNT, 15);
    assert_eq!(FEATURE_DIM, 18);
}

#[test]
fn section4a_port_types() {
    // P = {p_gate, p_drain, p_source, p_passive}, |W| = 4.
    assert_eq!(PortType::COUNT, 4);
}

#[test]
fn section4c_model_shape() {
    let cfg = ExtractorConfig::default();
    // K = 2 layers; output dimension D = 18.
    assert_eq!(cfg.gnn.layers, 2);
    assert_eq!(cfg.gnn.dim, 18);
}

#[test]
fn eq2_negative_samples() {
    // B = 5.
    assert_eq!(LossConfig::default().negative_samples, 5);
}

#[test]
fn section4d_top_m() {
    // M = 10.
    assert_eq!(EmbedOptions::default().m, 10);
}

#[test]
fn eq4_threshold_constants() {
    let t = ThresholdConfig::default();
    // α = β = 0.95, cap 0.999, device-level λ = 0.99.
    assert_eq!(t.alpha, 0.95);
    assert_eq!(t.beta, 0.95);
    assert_eq!(t.cap, 0.999);
    assert_eq!(t.device, 0.99);
    // Eq. 4 behaviour at the extremes.
    assert_eq!(t.system_threshold(0), 0.999); // capped
    let large = t.system_threshold(10_000);
    assert!(large > 0.95 && large < 0.9502);
}

#[test]
fn table3_and_4_sizes() {
    // Five ADCs, fifteen block circuits, 324 block devices.
    assert_eq!(ancstr_circuits::adc_benchmark_names().len(), 5);
    assert_eq!(ancstr_circuits::block_benchmark_names().len(), 15);
}
