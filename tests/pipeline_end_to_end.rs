//! End-to-end integration tests spanning every crate: SPICE text →
//! parse → elaborate → multigraph → GNN training → embedding →
//! detection → metrics.

use ancstr_bench::quick_config;
use ancstr_circuits::comparator::comp5;
use ancstr_circuits::ota::ota2;
use ancstr_core::{ExtractorConfig, SymmetryExtractor, FEATURE_DIM};
use ancstr_gnn::TrainConfig;
use ancstr_netlist::flat::FlatCircuit;
use ancstr_netlist::parse::parse_spice;
use ancstr_netlist::write::write_spice;
use ancstr_netlist::SymmetryKind;

/// The whole pipeline driven from raw SPICE text, not generator objects.
#[test]
fn spice_text_to_constraints() {
    let src = "\
.subckt latchpair q qb en vdd vss
M1 q qb t vss nch_lvt w=4u l=0.1u
M2 qb q t vss nch_lvt w=4u l=0.1u
M3 q qb vdd vdd pch_lvt w=8u l=0.1u
M4 qb q vdd vdd pch_lvt w=8u l=0.1u
M5 t en vss vss nch w=2u l=0.2u
C1 q vss 10f
C2 qb vss 10f
.ends
";
    let nl = parse_spice(src).expect("valid SPICE");
    let flat = FlatCircuit::elaborate(&nl).expect("elaborates");
    let mut ex = SymmetryExtractor::new(quick_config());
    ex.fit(&[&flat]);
    let result = ex.extract(&flat);

    let id = |p: &str| flat.node_by_path(p).expect("path exists").id;
    let constraints = &result.detection.constraints;
    assert!(constraints.contains_pair(id("latchpair/M1"), id("latchpair/M2")));
    assert!(constraints.contains_pair(id("latchpair/M3"), id("latchpair/M4")));
    assert!(constraints.contains_pair(id("latchpair/C1"), id("latchpair/C2")));
    // Type-mismatched pairs are never even candidates.
    assert!(!constraints.contains_pair(id("latchpair/M1"), id("latchpair/M3")));
}

/// Training on one circuit and extracting on another (inductive use).
#[test]
fn inductive_cross_circuit_extraction() {
    let train_flat = FlatCircuit::elaborate(&ota2(11)).expect("ota2");
    let test_flat = FlatCircuit::elaborate(&comp5(12)).expect("comp5");
    let mut ex = SymmetryExtractor::new(quick_config());
    ex.fit(&[&train_flat]);
    let eval = ex.evaluate(&test_flat);
    assert!(
        eval.overall.acc() > 0.7,
        "unseen-circuit accuracy: {:?}",
        eval.overall
    );
}

/// Round-tripping a generated benchmark through SPICE text preserves
/// the extraction result exactly.
#[test]
fn extraction_is_stable_under_spice_round_trip() {
    let nl = ota2(21);
    let text = write_spice(&nl);
    let back = parse_spice(&text).expect("round trip parses");

    let f1 = FlatCircuit::elaborate(&nl).expect("original");
    let f2 = FlatCircuit::elaborate(&back).expect("round-tripped");

    let mut ex1 = SymmetryExtractor::new(quick_config());
    ex1.fit(&[&f1]);
    let mut ex2 = SymmetryExtractor::new(quick_config());
    ex2.fit(&[&f2]);

    let r1 = ex1.extract(&f1);
    let r2 = ex2.extract(&f2);
    assert_eq!(
        r1.detection.constraints.len(),
        r2.detection.constraints.len()
    );
    let scores1: Vec<f64> = r1.detection.scored.iter().map(|s| s.score).collect();
    let scores2: Vec<f64> = r2.detection.scored.iter().map(|s| s.score).collect();
    assert_eq!(scores1.len(), scores2.len());
    for (a, b) in scores1.iter().zip(&scores2) {
        // The writer rounds geometries to 6 decimals, which perturbs the
        // normalized features by ~1e-7; scores track that perturbation.
        assert!((a - b).abs() < 1e-5, "{a} vs {b}");
    }
}

/// The full experiment path is deterministic end to end.
#[test]
fn extraction_is_deterministic() {
    let flat = FlatCircuit::elaborate(&comp5(2)).expect("comp5");
    let run = || {
        let mut ex = SymmetryExtractor::new(quick_config());
        ex.fit(&[&flat]);
        let r = ex.extract(&flat);
        r.detection
            .scored
            .iter()
            .map(|s| (s.score, s.accepted))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

/// Hierarchical systems produce both constraint levels with correct
/// classification.
#[test]
fn system_and_device_levels_coexist() {
    let flat = FlatCircuit::elaborate(&ancstr_circuits::adc::adc1()).expect("adc1");
    let mut ex = SymmetryExtractor::new(ExtractorConfig {
        train: TrainConfig { epochs: 8, ..TrainConfig::default() },
        ..ExtractorConfig::default()
    });
    ex.fit(&[&flat]);
    let result = ex.extract(&flat);
    let sys = result
        .detection
        .scored
        .iter()
        .filter(|s| s.candidate.kind == SymmetryKind::System)
        .count();
    let dev = result.detection.scored.len() - sys;
    assert!(sys > 0, "system candidates scored");
    assert!(dev > 0, "device candidates scored");
    // Eq. 4: the system threshold sits between alpha and the cap.
    assert!(result.detection.system_threshold >= 0.95);
    assert!(result.detection.system_threshold <= 0.999);
}

/// The model dimension is pinned to the Table II feature width.
#[test]
fn feature_dim_is_18() {
    assert_eq!(FEATURE_DIM, 18);
}
