//! Batched-execution identity tests: fusing many extraction requests
//! into one GNN forward pass must be a pure scheduling decision, never
//! a semantic one.
//!
//! Two layers are pinned here:
//!
//! 1. **In-process**: [`ancstr_core::extract_source_batch`] over batch
//!    sizes 1, 4, and 16 returns, for every item, the byte-identical
//!    `constraints_text` (and identical counts and warnings) that the
//!    solo [`ancstr_core::extract_source`] path returns for that item.
//! 2. **End-to-end**: a live daemon fed 16 concurrent requests, one of
//!    them poisoned (`x-ancstr-chaos: poison` under `--chaos`), answers
//!    exactly 15 of them `200` with the correct bytes and the poisoned
//!    one `500` with the `batch_poison` stage — bisection isolates the
//!    poison instead of failing its batch-mates.

use std::fs;
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use ancstr_core::{extract_source, extract_source_batch, PipelineObs, SymmetryExtractor};
use ancstr_gnn::{HealthConfig, TrainConfig};
use ancstr_netlist::flat::FlatCircuit;
use ancstr_netlist::parse::parse_spice;
use ancstr_serve::client;

const T: Duration = Duration::from_secs(60);

const NETLIST: &str = "\
.subckt sa inp inn outp outn clk vdd vss
M1 x1 inp tail vss nch_lvt w=6u l=0.1u
M2 x2 inn tail vss nch_lvt w=6u l=0.1u
M3 outn outp x1 vss nch_lvt w=6u l=0.1u
M4 outp outn x2 vss nch_lvt w=6u l=0.1u
M5 outn outp vdd vdd pch_lvt w=12u l=0.1u
M6 outp outn vdd vdd pch_lvt w=12u l=0.1u
M7 tail clk vss vss nch w=12u l=0.1u
.ends
";

/// Sixteen *distinct* sources: varied device widths change the graph
/// features item by item, so cross-item leakage in the fused pass would
/// actually move bytes instead of cancelling out.
fn variants() -> Vec<String> {
    (0..16).map(|i| NETLIST.replace("w=6u", &format!("w={}u", 4 + i))).collect()
}

fn trained_extractor() -> SymmetryExtractor {
    let cfg = ancstr_core::ExtractorConfig {
        train: TrainConfig { epochs: 6, seed: 23, ..TrainConfig::default() },
        ..ancstr_core::ExtractorConfig::default()
    };
    let nl = parse_spice(NETLIST).expect("fixture parses");
    let flat = FlatCircuit::elaborate(&nl).expect("fixture elaborates");
    let mut ex = SymmetryExtractor::try_new(cfg).expect("config is consistent");
    let (_, health) = ex.try_fit(&[&flat], &HealthConfig::default()).expect("healthy fit");
    assert!(health.clean(), "fixture training must be anomaly-free: {health:?}");
    ex
}

#[test]
fn batched_extraction_is_byte_identical_at_sizes_1_4_16() {
    let ex = trained_extractor();
    let obs = PipelineObs::new(None);
    let sources = variants();

    // The solo path is the reference semantics.
    let solo: Vec<_> = sources
        .iter()
        .enumerate()
        .map(|(i, s)| extract_source(s, &format!("v{i}.sp"), &ex, &obs).expect("solo extracts"))
        .collect();

    for batch in [1usize, 4, 16] {
        for (chunk_idx, chunk) in sources.chunks(batch).enumerate() {
            let items: Vec<(&str, &str)> =
                chunk.iter().map(|s| (s.as_str(), "batched.sp")).collect();
            let replies = extract_source_batch(&items, &ex, &obs);
            assert_eq!(replies.len(), chunk.len());
            for (j, reply) in replies.into_iter().enumerate() {
                let reply = reply.expect("batched item extracts");
                let reference = &solo[chunk_idx * batch + j];
                assert_eq!(
                    reply.constraints_text, reference.constraints_text,
                    "batch size {batch}, item {j}: constraint bytes diverged"
                );
                assert_eq!(reply.devices, reference.devices);
                assert_eq!(reply.nets, reference.nets);
                assert_eq!(reply.constraints, reference.constraints);
                assert_eq!(reply.warnings, reference.warnings);
            }
        }
    }
}

// ---------------------------------------------------------------- daemon

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ancstr"))
}

fn workdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ancstr-batch-test-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create temp workdir");
    dir
}

fn trained_model(dir: &Path) -> PathBuf {
    let sp = dir.join("sa.sp");
    fs::write(&sp, NETLIST).unwrap();
    let model = dir.join("model.txt");
    let out = bin()
        .args(["train"])
        .arg(&sp)
        .args(["--model-out"])
        .arg(&model)
        .args(["--epochs", "12", "--seed", "7", "--quiet"])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "train failed: {}", String::from_utf8_lossy(&out.stderr));
    model
}

struct Daemon {
    child: Child,
    addr: SocketAddr,
}

impl Daemon {
    fn spawn(model: &Path, extra: &[&str]) -> Daemon {
        let mut child = bin()
            .args(["serve", "--model"])
            .arg(model)
            .args(["--port", "0", "--quiet"])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("daemon spawns");
        let stdout = child.stdout.take().expect("stdout piped");
        let mut line = String::new();
        BufReader::new(stdout).read_line(&mut line).expect("daemon prints its address");
        let addr = line
            .trim()
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("unexpected startup line `{line}`"))
            .parse()
            .expect("address parses");
        Daemon { child, addr }
    }

    fn shutdown(mut self) {
        let reply = client::post(self.addr, "/v1/shutdown", b"", T).expect("shutdown responds");
        assert_eq!(reply.status, 200, "{}", reply.text());
        let status = self.child.wait().expect("daemon exits");
        assert_eq!(status.code(), Some(0), "daemon must drain and exit cleanly");
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// The escaped `constraints_text` field of a JSON reply body.
fn constraints(text: &str) -> Option<String> {
    let marker = "\"constraints_text\":\"";
    let start = text.find(marker)? + marker.len();
    let rest = &text[start..];
    let bytes = rest.as_bytes();
    let mut end = 0;
    while end < bytes.len() {
        match bytes[end] {
            b'\\' => end += 2,
            b'"' => return Some(rest[..end].to_owned()),
            _ => end += 1,
        }
    }
    None
}

#[test]
fn one_poison_in_sixteen_concurrent_requests_fails_alone() {
    let dir = workdir("poison");
    let model = trained_model(&dir);
    let daemon = Daemon::spawn(
        &model,
        &["--chaos", "--workers", "16", "--queue-depth", "64", "--batch-max", "16"],
    );
    let addr = daemon.addr;

    // The fault-free reference bytes for this circuit.
    let reference = {
        let reply = client::post(addr, "/v1/extract", NETLIST.as_bytes(), T).unwrap();
        assert_eq!(reply.status, 200, "{}", reply.text());
        constraints(&reply.text()).expect("reference has constraints_text")
    };

    // Sixteen distinct *bodies* of the same circuit (a unique comment
    // line changes the cache key, not the constraints), fired at once;
    // request 0 carries the poison header.
    let replies: Vec<(usize, u16, String)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..16usize)
            .map(|i| {
                scope.spawn(move || {
                    let body = format!("{NETLIST}* mate {i}\n");
                    let headers: &[(&str, &str)] =
                        if i == 0 { &[("x-ancstr-chaos", "poison")] } else { &[] };
                    let reply =
                        client::post_with(addr, "/v1/extract", headers, body.as_bytes(), T)
                            .expect("request completes");
                    (i, reply.status, reply.text())
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("request thread")).collect()
    });

    let ok: Vec<_> = replies.iter().filter(|(_, status, _)| *status == 200).collect();
    let poisoned: Vec<_> = replies.iter().filter(|(_, status, _)| *status == 500).collect();
    assert_eq!(ok.len(), 15, "exactly the 15 healthy mates succeed: {replies:?}");
    assert_eq!(poisoned.len(), 1, "exactly the poison request fails: {replies:?}");
    assert_eq!(poisoned[0].0, 0, "the 500 lands on the poisoned request, not a mate");
    assert!(
        poisoned[0].2.contains("\"stage\":\"batch_poison\""),
        "poison failure is typed: {}",
        poisoned[0].2
    );
    for (i, _, text) in &ok {
        assert_eq!(
            constraints(text).as_deref(),
            Some(reference.as_str()),
            "mate {i} returned wrong bytes"
        );
    }
    daemon.shutdown();
}
