//! Chaos tests for the `ancstr serve` daemon: every serve-layer fault
//! operator from `ancstr_core::inject` is compiled into a deterministic
//! wire plan (seeded, no wall-clock randomness) and replayed against a
//! live daemon started with `--chaos`.
//!
//! The resilience contract under test:
//!
//! 1. every injected fault yields a *clean* failure — an error status
//!    or a torn connection, never a `200` whose bytes differ from the
//!    fault-free baseline (no silent corruption);
//! 2. immediately after each fault, a well-formed request on a fresh
//!    connection succeeds with the exact baseline bytes (no wedged
//!    workers); and
//! 3. the daemon still drains and exits 0 afterwards.

use std::fs;
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use ancstr_core::{plan_serve_fault, ServeFault, ALL_SERVE_FAULTS};
use ancstr_serve::client::{self, RetryPolicy};

const NETLIST: &str = "\
.subckt sa inp inn outp outn clk vdd vss
M1 x1 inp tail vss nch_lvt w=6u l=0.1u
M2 x2 inn tail vss nch_lvt w=6u l=0.1u
M3 outn outp x1 vss nch_lvt w=6u l=0.1u
M4 outp outn x2 vss nch_lvt w=6u l=0.1u
M5 outn outp vdd vdd pch_lvt w=12u l=0.1u
M6 outp outn vdd vdd pch_lvt w=12u l=0.1u
M7 tail clk vss vss nch w=12u l=0.1u
.ends
";

const T: Duration = Duration::from_secs(60);

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ancstr"))
}

fn workdir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("ancstr-chaos-test-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create temp workdir");
    dir
}

/// Train a model via the CLI and return (netlist path, model path).
fn trained_model(dir: &Path) -> (PathBuf, PathBuf) {
    let sp = dir.join("sa.sp");
    fs::write(&sp, NETLIST).unwrap();
    let model = dir.join("model.txt");
    let out = bin()
        .args(["train"])
        .arg(&sp)
        .args(["--model-out"])
        .arg(&model)
        .args(["--epochs", "12", "--seed", "7", "--quiet"])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "train failed: {}", String::from_utf8_lossy(&out.stderr));
    (sp, model)
}

/// A daemon child plus the address it bound. Killed on drop so a failed
/// assertion cannot leak a listener.
struct Daemon {
    child: Child,
    addr: SocketAddr,
}

impl Daemon {
    fn spawn(model: &Path, extra: &[&str]) -> Daemon {
        let mut child = bin()
            .args(["serve", "--model"])
            .arg(model)
            .args(["--port", "0", "--quiet"])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("daemon spawns");
        let stdout = child.stdout.take().expect("stdout piped");
        let mut line = String::new();
        BufReader::new(stdout).read_line(&mut line).expect("daemon prints its address");
        let addr = line
            .trim()
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("unexpected startup line `{line}`"))
            .parse()
            .expect("address parses");
        Daemon { child, addr }
    }

    /// Graceful stop: `POST /v1/shutdown`, then the process must exit 0.
    fn shutdown(mut self) {
        let reply = client::post(self.addr, "/v1/shutdown", b"", T).expect("shutdown responds");
        assert_eq!(reply.status, 200, "{}", reply.text());
        let status = self.child.wait().expect("daemon exits");
        assert_eq!(status.code(), Some(0), "daemon must drain and exit cleanly");
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// The escaped `constraints_text` field of a JSON reply body.
fn constraints(text: &str) -> Option<String> {
    let marker = "\"constraints_text\":\"";
    let start = text.find(marker)? + marker.len();
    let rest = &text[start..];
    let bytes = rest.as_bytes();
    let mut end = 0;
    while end < bytes.len() {
        match bytes[end] {
            b'\\' => end += 2,
            b'"' => return Some(rest[..end].to_owned()),
            _ => end += 1,
        }
    }
    None
}

/// The fault-free baseline reply the chaos invariants compare against.
fn baseline(addr: SocketAddr) -> String {
    let reply = client::post(addr, "/v1/extract", NETLIST.as_bytes(), T).unwrap();
    assert_eq!(reply.status, 200, "{}", reply.text());
    constraints(&reply.text()).expect("baseline has constraints_text")
}

#[test]
fn every_fault_operator_leaves_the_daemon_serving() {
    let dir = workdir("sweep");
    let (_sp, model) = trained_model(&dir);
    let daemon = Daemon::spawn(&model, &["--chaos", "--workers", "2"]);
    let addr = daemon.addr;
    let reference = baseline(addr);
    let policy = RetryPolicy::new(7);

    for (i, fault) in ALL_SERVE_FAULTS.iter().enumerate() {
        for seed in [3u64, 1931] {
            let plan = plan_serve_fault(
                *fault,
                "POST",
                "/v1/extract",
                NETLIST.as_bytes(),
                seed.wrapping_mul(31).wrapping_add(i as u64),
            );
            let outcome =
                client::send_plan(addr, &plan, T).unwrap_or_else(|e| panic!("{fault:?}: {e}"));
            // A faulted exchange may fail any way it likes, but never
            // silently corrupt: a 200 must carry the baseline bytes.
            if let Some(reply) = &outcome.reply {
                if reply.status == 200 {
                    assert_eq!(
                        constraints(&reply.text()).as_deref(),
                        Some(reference.as_str()),
                        "{fault:?} produced a 200 with wrong bytes"
                    );
                }
            }
            // No wedged workers: a clean request right after the fault
            // succeeds with the exact baseline bytes.
            let probe = client::request_with_retry(
                addr,
                "POST",
                "/v1/extract",
                &[],
                NETLIST.as_bytes(),
                T,
                &policy,
            )
            .unwrap_or_else(|e| panic!("recovery after {fault:?} failed: {e}"));
            assert_eq!(probe.status, 200, "after {fault:?}: {}", probe.text());
            assert_eq!(
                constraints(&probe.text()).as_deref(),
                Some(reference.as_str()),
                "recovery after {fault:?} diverged from the baseline"
            );
        }
    }
    daemon.shutdown();
}

#[test]
fn fault_operators_map_to_clean_statuses() {
    let dir = workdir("statuses");
    let (_sp, model) = trained_model(&dir);
    let daemon = Daemon::spawn(&model, &["--chaos"]);
    let addr = daemon.addr;
    let reference = baseline(addr);

    let send = |fault: ServeFault, seed: u64| {
        let plan = plan_serve_fault(fault, "POST", "/v1/extract", NETLIST.as_bytes(), seed);
        client::send_plan(addr, &plan, T).expect("plan connects")
    };

    // A torn write still reassembles into the intact request: full 200
    // with baseline bytes.
    let torn = send(ServeFault::TornWrite { fragments: 7 }, 5);
    let torn_reply = torn.reply.expect("torn write gets a reply");
    assert_eq!(torn_reply.status, 200, "{}", torn_reply.text());
    assert_eq!(constraints(&torn_reply.text()).as_deref(), Some(reference.as_str()));

    // A truncated body is a clean 400 (connection closed mid-body).
    let truncated = send(ServeFault::TruncateBody { keep_frac: 0.5 }, 6);
    let truncated_reply = truncated.reply.expect("truncation gets a reply");
    assert_eq!(truncated_reply.status, 400, "{}", truncated_reply.text());

    // A stalled read that dies mid-head is a clean 400 too.
    let stalled = send(ServeFault::StalledRead { hold_ms: 50 }, 7);
    if let Some(reply) = stalled.reply {
        assert_eq!(reply.status, 400, "{}", reply.text());
    }

    // An injected worker panic is isolated into a 500 with the
    // worker_panic stage — same connection, clean JSON.
    let panic = send(ServeFault::WorkerPanic, 8);
    let panic_reply = panic.reply.expect("panic gets a reply");
    assert_eq!(panic_reply.status, 500, "{}", panic_reply.text());
    assert!(panic_reply.text().contains("worker_panic"), "{}", panic_reply.text());

    // A corrupt model upload is refused (seal failure now, breaker
    // afterwards) and never swaps the serving model.
    let corrupt = send(ServeFault::CorruptModelUpload, 9);
    let corrupt_reply = corrupt.reply.expect("corrupt upload gets a reply");
    assert!(
        corrupt_reply.status == 400 || corrupt_reply.status == 422,
        "{}: {}",
        corrupt_reply.status,
        corrupt_reply.text()
    );
    let health = client::get(addr, "/healthz", T).unwrap().text();
    assert!(health.contains("\"generation\":1"), "{health}");

    // A dead owning replica degrades to *local compute*, not an error:
    // a cold body (unique comment, same circuit) under the peer-down
    // fault is a 200 with the baseline bytes, and the failover counter
    // moves. Same contract for a slow peer.
    let cold = |tag: &str| format!("{NETLIST}* chaos probe {tag}\n").into_bytes();
    for (fault, seed, tag) in [
        (ServeFault::PeerDown, 10u64, "down"),
        (ServeFault::SlowPeer { hold_ms: 40 }, 11, "slow"),
    ] {
        let plan = plan_serve_fault(fault, "POST", "/v1/extract", &cold(tag), seed);
        let outcome = client::send_plan(addr, &plan, T).expect("plan connects");
        let reply = outcome.reply.unwrap_or_else(|| panic!("{fault:?} gets a reply"));
        assert_eq!(reply.status, 200, "{fault:?} must fail over, not error: {}", reply.text());
        assert_eq!(
            constraints(&reply.text()).as_deref(),
            Some(reference.as_str()),
            "{fault:?} failover diverged from the baseline"
        );
    }
    let metrics = client::get(addr, "/metrics", T).unwrap().text();
    assert!(
        metrics.contains("ancstr_serve_peer_forwards_total{result=\"failover\"} 2"),
        "both peer faults count as failovers:\n{metrics}"
    );

    // A poisoned batch request fails alone with the typed batch_poison
    // stage — and since its body is unique, no mate is implicated.
    let plan =
        plan_serve_fault(ServeFault::PoisonBatchMate, "POST", "/v1/extract", &cold("poison"), 12);
    let outcome = client::send_plan(addr, &plan, T).expect("plan connects");
    let reply = outcome.reply.expect("poison gets a reply");
    assert_eq!(reply.status, 500, "{}", reply.text());
    assert!(reply.text().contains("\"stage\":\"batch_poison\""), "{}", reply.text());

    // After the whole parade the baseline still reproduces.
    assert_eq!(baseline(addr), reference);
    daemon.shutdown();
}

#[test]
fn chaos_headers_require_opt_in() {
    let dir = workdir("optin");
    let (_sp, model) = trained_model(&dir);
    // No --chaos flag: the panic header is inert.
    let daemon = Daemon::spawn(&model, &[]);
    let reply = client::post_with(
        daemon.addr,
        "/v1/extract",
        &[("x-ancstr-chaos", "panic")],
        NETLIST.as_bytes(),
        T,
    )
    .unwrap();
    assert_eq!(reply.status, 200, "{}", reply.text());
    daemon.shutdown();
}

#[test]
fn deadline_header_aborts_with_408_end_to_end() {
    let dir = workdir("deadline");
    let (_sp, model) = trained_model(&dir);
    let daemon = Daemon::spawn(&model, &[]);
    let reply = client::post_with(
        daemon.addr,
        "/v1/extract",
        &[("x-ancstr-deadline-ms", "0")],
        NETLIST.as_bytes(),
        T,
    )
    .unwrap();
    assert_eq!(reply.status, 408, "{}", reply.text());
    assert!(reply.text().contains("\"stage\":\"deadline\""), "{}", reply.text());
    // The daemon is fine; the same request without the header succeeds.
    let ok = client::post(daemon.addr, "/v1/extract", NETLIST.as_bytes(), T).unwrap();
    assert_eq!(ok.status, 200, "{}", ok.text());
    daemon.shutdown();
}

#[test]
fn oversized_header_blocks_are_refused_with_431() {
    let dir = workdir("headers");
    let (_sp, model) = trained_model(&dir);
    let daemon = Daemon::spawn(&model, &[]);
    // More header lines than the daemon's bound (64).
    let names: Vec<String> = (0..80).map(|i| format!("x-filler-{i}")).collect();
    let headers: Vec<(&str, &str)> =
        names.iter().map(|n| (n.as_str(), "x")).collect();
    let reply =
        client::request_with(daemon.addr, "POST", "/v1/extract", &headers, b"", T).unwrap();
    assert_eq!(reply.status, 431, "{}", reply.text());
    daemon.shutdown();
}

#[test]
fn loadgen_chaos_soak_holds_every_invariant() {
    let dir = workdir("loadgen");
    let (sp, model) = trained_model(&dir);
    let daemon = Daemon::spawn(&model, &["--chaos", "--workers", "2"]);
    let out = Command::new(env!("CARGO_BIN_EXE_loadgen"))
        .args(["--addr", &daemon.addr.to_string()])
        .args(["--netlist"])
        .arg(&sp)
        .args(["--requests", "1", "--chaos", "7"])
        .output()
        .expect("loadgen runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "loadgen --chaos failed:\n{stdout}\n{stderr}");
    assert!(stdout.contains("all resilience invariants held"), "{stdout}");
    daemon.shutdown();
}
