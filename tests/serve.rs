//! End-to-end tests for the `ancstr serve` daemon.
//!
//! The headline property is **concurrency identity**: N parallel
//! clients hammering one daemon must each receive a constraint set
//! byte-identical to what one-shot `ancstr extract --model` writes for
//! the same netlist and model — and the result cache must actually be
//! in the request path (asserted through the `/metrics` counters), not
//! just present in the code.

use std::fs;
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use ancstr_obs::json;
use ancstr_serve::client;

const NETLIST: &str = "\
.subckt sa inp inn outp outn clk vdd vss
*.class comparator
M1 x1 inp tail vss nch_lvt w=6u l=0.1u
M2 x2 inn tail vss nch_lvt w=6u l=0.1u
M3 outn outp x1 vss nch_lvt w=6u l=0.1u
M4 outp outn x2 vss nch_lvt w=6u l=0.1u
M5 outn outp vdd vdd pch_lvt w=12u l=0.1u
M6 outp outn vdd vdd pch_lvt w=12u l=0.1u
M7 tail clk vss vss nch w=12u l=0.1u
.ends
";

/// A second, structurally different circuit (five-transistor OTA) for
/// the mixed-traffic identity test — the model never saw it during
/// training, exercising the inductive serve-unseen-netlists path.
const OTA: &str = "\
.subckt ota inp inn out vdd vss
M1 x inp t vss nch w=2u l=0.1u
M2 y inn t vss nch w=2u l=0.1u
M3 x x vdd vdd pch w=4u l=0.1u
M4 out x vdd vdd pch w=4u l=0.1u
M5 t t vss vss nch w=1u l=0.1u
.ends
";

const T: Duration = Duration::from_secs(60);

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ancstr"))
}

fn workdir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("ancstr-serve-test-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create temp workdir");
    dir
}

/// Train a model via the CLI and return (netlist path, model path).
fn trained_model(dir: &Path) -> (PathBuf, PathBuf) {
    let sp = dir.join("sa.sp");
    fs::write(&sp, NETLIST).unwrap();
    let model = dir.join("model.txt");
    let out = bin()
        .args(["train"])
        .arg(&sp)
        .args(["--model-out"])
        .arg(&model)
        .args(["--epochs", "12", "--seed", "7", "--quiet"])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "train failed: {}", String::from_utf8_lossy(&out.stderr));
    (sp, model)
}

/// A daemon child plus the address it bound. Killed on drop so a failed
/// assertion cannot leak a listener.
struct Daemon {
    child: Child,
    addr: SocketAddr,
}

impl Daemon {
    fn spawn(model: &Path, extra: &[&str]) -> Daemon {
        let mut child = bin()
            .args(["serve", "--model"])
            .arg(model)
            .args(["--port", "0", "--quiet"])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("daemon spawns");
        // The daemon announces its (ephemeral) address as the first
        // stdout line; block until it arrives.
        let stdout = child.stdout.take().expect("stdout piped");
        let mut line = String::new();
        BufReader::new(stdout).read_line(&mut line).expect("daemon prints its address");
        let addr = line
            .trim()
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("unexpected startup line `{line}`"))
            .parse()
            .expect("address parses");
        Daemon { child, addr }
    }

    /// Graceful stop: `POST /v1/shutdown`, then the process must exit 0.
    fn shutdown(mut self) {
        let reply = client::post(self.addr, "/v1/shutdown", b"", T).expect("shutdown responds");
        assert_eq!(reply.status, 200, "{}", reply.text());
        let status = self.child.wait().expect("daemon exits");
        assert_eq!(status.code(), Some(0), "daemon must drain and exit cleanly");
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// The value of a Prometheus counter line like `name 3` (no labels).
fn counter(metrics: &str, name: &str) -> u64 {
    metrics
        .lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .unwrap_or_else(|| panic!("`{name}` not in /metrics:\n{metrics}"))
        .trim()
        .parse()
        .expect("counter value parses")
}

/// One-shot `extract --model` output for `source`, via the CLI.
fn one_shot_reference(dir: &Path, model: &Path, tag: &str, source: &str) -> String {
    let sp = dir.join(format!("{tag}.sp"));
    fs::write(&sp, source).unwrap();
    let out_path = dir.join(format!("{tag}.reference.txt"));
    let out = bin()
        .args(["extract"])
        .arg(&sp)
        .args(["--model"])
        .arg(model)
        .args(["-o"])
        .arg(&out_path)
        .args(["--quiet"])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "extract failed: {}", String::from_utf8_lossy(&out.stderr));
    fs::read_to_string(&out_path).unwrap()
}

#[test]
fn concurrent_clients_match_the_one_shot_cli_byte_for_byte() {
    let dir = workdir("identity");
    let (_sp, model) = trained_model(&dir);

    // References: one-shot extraction of two different circuits with
    // the same model — the comparator it trained on and an OTA it has
    // never seen (the inductive case).
    let references =
        [one_shot_reference(&dir, &model, "sa", NETLIST), one_shot_reference(&dir, &model, "ota", OTA)];
    assert!(references[0].contains("sym"), "reference extraction found no constraints");
    assert_ne!(references[0], references[1], "fixtures must be distinguishable");

    let daemon = Daemon::spawn(&model, &["--workers", "4", "--cache-entries", "32"]);
    let addr = daemon.addr;

    // N parallel clients over mixed circuits, two requests each: the
    // second wave can only be answered from the cache or by identical
    // recomputation.
    const CLIENTS: usize = 8;
    let sources = [NETLIST, OTA];
    let bodies: Vec<(usize, String)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|i| {
                scope.spawn(move || {
                    let which = i % 2;
                    let mut texts = Vec::new();
                    for _ in 0..2 {
                        let reply =
                            client::post(addr, "/v1/extract", sources[which].as_bytes(), T)
                                .expect("request succeeds");
                        assert_eq!(reply.status, 200, "{}", reply.text());
                        texts.push((which, reply.text()));
                    }
                    texts
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("client thread")).collect()
    });

    assert_eq!(bodies.len(), CLIENTS * 2);
    for (which, body) in &bodies {
        let parsed = json::parse(body.trim()).expect("response is valid JSON");
        let text = parsed
            .get("constraints_text")
            .and_then(|v| v.as_str())
            .expect("constraints_text present");
        // Byte identity with the one-shot CLI, under full concurrency.
        assert_eq!(text, references[*which], "daemon output diverged from one-shot extract");
        assert!(parsed.get("warnings").and_then(|w| w.as_arr()).is_some());
    }

    // The cache must have answered everything past the first sight of
    // each distinct netlist: two misses computed replies, everyone
    // else hit without re-running the pipeline.
    let metrics = client::get(addr, "/metrics", T).expect("/metrics responds").text();
    assert_eq!(counter(&metrics, "ancstr_serve_cache_misses_total"), 2, "{metrics}");
    let hits = counter(&metrics, "ancstr_serve_cache_hits_total");
    assert_eq!(hits, (CLIENTS * 2 - 2) as u64, "{metrics}");
    assert!(
        metrics.contains("ancstr_http_requests_total{route=\"/v1/extract\",code=\"200\"} 16"),
        "{metrics}"
    );

    daemon.shutdown();
}

#[test]
fn daemon_maps_errors_and_serves_health() {
    let dir = workdir("errors");
    let (_sp, model) = trained_model(&dir);
    let daemon = Daemon::spawn(&model, &[]);
    let addr = daemon.addr;

    let health = client::get(addr, "/healthz", T).unwrap();
    assert_eq!(health.status, 200);
    let parsed = json::parse(health.text().trim()).unwrap();
    assert_eq!(parsed.get("status").and_then(|s| s.as_str()), Some("ok"));

    // Malformed SPICE → 400 with the failing stage named.
    let bad = client::post(addr, "/v1/extract", b"M1 a b\n", T).unwrap();
    assert_eq!(bad.status, 400, "{}", bad.text());
    assert_eq!(
        json::parse(bad.text().trim()).unwrap().get("stage").and_then(|s| s.as_str()),
        Some("parse")
    );

    // Unknown route and wrong method.
    assert_eq!(client::get(addr, "/nope", T).unwrap().status, 404);
    assert_eq!(client::get(addr, "/v1/extract", T).unwrap().status, 405);

    daemon.shutdown();
}

#[test]
fn graceful_drain_flushes_metrics_and_trace_to_disk() {
    let dir = workdir("drain");
    let (_sp, model) = trained_model(&dir);
    let prom = dir.join("metrics.prom");
    let trace = dir.join("trace.jsonl");
    let daemon = Daemon::spawn(
        &model,
        &[
            "--metrics",
            prom.to_str().unwrap(),
            "--trace-out",
            trace.to_str().unwrap(),
        ],
    );
    let addr = daemon.addr;
    let reply = client::post(addr, "/v1/extract", NETLIST.as_bytes(), T).unwrap();
    assert_eq!(reply.status, 200, "{}", reply.text());
    daemon.shutdown();

    // The drain path must leave a complete final snapshot on disk.
    let snapshot = fs::read_to_string(&prom).expect("metrics.prom written on drain");
    assert!(snapshot.contains("ancstr_serve_cache_misses_total 1"), "{snapshot}");
    assert!(
        snapshot.contains("ancstr_http_requests_total{route=\"/v1/extract\",code=\"200\"} 1"),
        "{snapshot}"
    );
    // Queue gauge reset to zero before the final write.
    assert!(snapshot.contains("ancstr_serve_queue_depth 0"), "{snapshot}");
    let traced = fs::read_to_string(&trace).expect("trace flushed on drain");
    assert!(traced.contains("\"serve\""), "{traced}");
}

#[test]
fn model_hot_swap_changes_the_serving_fingerprint() {
    let dir = workdir("swap");
    let (sp, model) = trained_model(&dir);

    // A second model: same corpus, different seed.
    let other = dir.join("other.txt");
    let out = bin()
        .args(["train"])
        .arg(&sp)
        .args(["--model-out"])
        .arg(&other)
        .args(["--epochs", "12", "--seed", "8", "--quiet"])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let daemon = Daemon::spawn(&model, &[]);
    let addr = daemon.addr;
    let before = client::get(addr, "/healthz", T).unwrap().text();
    let before_fp = json::parse(before.trim())
        .unwrap()
        .get("model")
        .and_then(|m| m.get("fingerprint").and_then(|f| f.as_str()).map(str::to_owned))
        .unwrap();

    // A plain (unsealed) model body is refused and changes nothing.
    let plain = fs::read(&other).unwrap();
    assert_eq!(client::post(addr, "/v1/models", &plain, T).unwrap().status, 400);

    // Reload needs the sealed envelope; build it in-process.
    let sealed = {
        let text = fs::read_to_string(&other).unwrap();
        ancstr_gnn::GnnModel::from_text(&text).unwrap().to_text_checksummed()
    };
    let swap = client::post(addr, "/v1/models", sealed.as_bytes(), T).unwrap();
    assert_eq!(swap.status, 200, "{}", swap.text());

    let after = client::get(addr, "/healthz", T).unwrap().text();
    let parsed = json::parse(after.trim()).unwrap();
    let after_fp = parsed
        .get("model")
        .and_then(|m| m.get("fingerprint").and_then(|f| f.as_str()).map(str::to_owned))
        .unwrap();
    assert_ne!(before_fp, after_fp, "hot-swap must change the serving fingerprint");
    assert_eq!(
        parsed.get("model").and_then(|m| m.get("generation")).and_then(|g| g.as_num()),
        Some(2.0)
    );

    // The swapped-in model serves extractions.
    let reply = client::post(addr, "/v1/extract", NETLIST.as_bytes(), T).unwrap();
    assert_eq!(reply.status, 200, "{}", reply.text());

    daemon.shutdown();
}
