//! End-to-end tests of the `ancstr` command-line tool, driving the real
//! binary through temp files: stats → train → extract (with a
//! pre-trained model) → constraint/DOT outputs.

use std::fs;
use std::path::PathBuf;
use std::process::Command;

const NETLIST: &str = "\
.subckt sa inp inn outp outn clk vdd vss
*.class comparator
M1 x1 inp tail vss nch_lvt w=6u l=0.1u
M2 x2 inn tail vss nch_lvt w=6u l=0.1u
M3 outn outp x1 vss nch_lvt w=6u l=0.1u
M4 outp outn x2 vss nch_lvt w=6u l=0.1u
M5 outn outp vdd vdd pch_lvt w=12u l=0.1u
M6 outp outn vdd vdd pch_lvt w=12u l=0.1u
M7 tail clk vss vss nch w=12u l=0.1u
.ends
";

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ancstr"))
}

fn workdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ancstr-cli-test-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create temp workdir");
    dir
}

#[test]
fn stats_reports_counts() {
    let dir = workdir("stats");
    let sp = dir.join("sa.sp");
    fs::write(&sp, NETLIST).unwrap();
    let out = bin().arg("stats").arg(&sp).output().expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("devices      7"), "{stdout}");
    assert!(stdout.contains("valid pairs"), "{stdout}");
}

#[test]
fn train_then_extract_with_model() {
    let dir = workdir("train");
    let sp = dir.join("sa.sp");
    fs::write(&sp, NETLIST).unwrap();
    let model = dir.join("model.txt");

    let out = bin()
        .args(["train"])
        .arg(&sp)
        .args(["--model-out"])
        .arg(&model)
        .args(["--epochs", "25", "--seed", "3"])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(model.exists());

    let constraints = dir.join("out.sym");
    let out = bin()
        .args(["extract"])
        .arg(&sp)
        .args(["--model"])
        .arg(&model)
        .args(["-o"])
        .arg(&constraints)
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = fs::read_to_string(&constraints).unwrap();
    assert!(text.contains("M1 M2"), "input pair found:\n{text}");
    assert!(text.contains("# hierarchy: sa"), "{text}");
}

#[test]
fn extract_writes_dot() {
    let dir = workdir("dot");
    let sp = dir.join("sa.sp");
    fs::write(&sp, NETLIST).unwrap();
    let dot = dir.join("sa.dot");
    let out = bin()
        .args(["extract"])
        .arg(&sp)
        .args(["--epochs", "15", "--dot"])
        .arg(&dot)
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = fs::read_to_string(&dot).unwrap();
    assert!(text.starts_with("digraph"));
    assert!(text.contains("sa/M1"));
}

#[test]
fn bad_usage_fails_cleanly() {
    let out = bin().output().expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));

    let out = bin().args(["extract", "/nonexistent.sp"]).output().expect("binary runs");
    assert!(!out.status.success());

    let out = bin()
        .args(["extract", "a.sp", "--frobnicate"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown flag"));
}

/// Exit codes are stable per failure stage: 2 usage, 3 I/O, 4 parse,
/// 5 elaborate, 6 bad model file — so scripts can dispatch on them.
#[test]
fn exit_codes_identify_the_failing_stage() {
    let dir = workdir("codes");
    let sp = dir.join("sa.sp");
    fs::write(&sp, NETLIST).unwrap();

    // Usage errors: no command, and a wrong flag.
    let out = bin().output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let out = bin().args(["extract"]).output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2), "extract with no netlist is a usage error");
    let out = bin()
        .args(["extract"])
        .arg(&sp)
        .args(["--epochs", "0"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2), "zero epochs is a usage error, not a panic");

    // Parse failure names the stage and the line.
    let bad = dir.join("bad.sp");
    fs::write(&bad, ".ends\n").unwrap();
    let out = bin().args(["stats"]).arg(&bad).output().expect("binary runs");
    assert_eq!(out.status.code(), Some(4), "{}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("parse"), "{stderr}");

    // Elaboration failure (instance of an undefined subcircuit).
    let dangling = dir.join("dangling.sp");
    fs::write(&dangling, ".subckt top a b\nX1 a b missing\n.ends\n").unwrap();
    let out = bin().args(["stats"]).arg(&dangling).output().expect("binary runs");
    assert_eq!(out.status.code(), Some(5), "{}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("elaborate"), "{stderr}");

    // Unreadable model file is an I/O error; a corrupt one is a
    // load-model error.
    let out = bin()
        .args(["extract"])
        .arg(&sp)
        .args(["--model"])
        .arg(dir.join("no-such-model.txt"))
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(3), "{}", String::from_utf8_lossy(&out.stderr));

    let corrupt = dir.join("corrupt-model.txt");
    fs::write(&corrupt, "not a model\n").unwrap();
    let out = bin()
        .args(["extract"])
        .arg(&sp)
        .args(["--model"])
        .arg(&corrupt)
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(6), "{}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("load-model"), "{stderr}");
}

/// The README's "Exit codes" table is the authoritative contract:
/// every code the binary can emit appears there, and nothing else.
#[test]
fn readme_exit_code_table_matches_the_binary() {
    let readme = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../README.md");
    let text = fs::read_to_string(&readme).expect("README.md at the workspace root");
    let section = text
        .split("### Exit codes")
        .nth(1)
        .expect("README has an `### Exit codes` section");
    let mut documented = Vec::new();
    for line in section.lines() {
        // Table rows look like: | `N` | meaning |
        let Some(rest) = line.strip_prefix("| `") else { continue };
        let Some((code, _)) = rest.split_once('`') else { continue };
        documented.push(code.parse::<i32>().expect("exit code cell is an integer"));
    }
    assert_eq!(
        documented,
        vec![0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10],
        "README exit-code table drifted from the binary's contract"
    );
    // Spot-check the table against the real binary on both ends of the
    // range: usage (2) and deadline (10) — the stage codes 3–6 are
    // behaviourally pinned by `exit_codes_identify_the_failing_stage`.
    let out = bin().args(["extract", "a.sp", "--frobnicate"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(section.contains("usage error"), "code 2 row describes usage errors");
    assert!(section.contains("--resume"), "code 10 row points at --resume");
}

/// Durable-run flag validation happens before any work: zero or
/// negative cadences/budgets, orphaned flags, and unusable run
/// directories are all usage errors (exit 2) with a clear message.
#[test]
fn durable_flag_validation_is_exit_2() {
    let dir = workdir("durable-usage");
    let sp = dir.join("sa.sp");
    fs::write(&sp, NETLIST).unwrap();

    let cases: Vec<(Vec<String>, &str)> = vec![
        (vec!["--resume".into()], "--resume needs --run-dir"),
        (vec!["--checkpoint-every".into(), "5".into()], "needs --run-dir"),
        (vec!["--time-budget".into(), "9".into()], "needs --run-dir"),
        (
            vec!["--run-dir".into(), dir.join("r0").display().to_string(),
                 "--checkpoint-every".into(), "0".into()],
            "--checkpoint-every must be at least 1",
        ),
        (
            vec!["--run-dir".into(), dir.join("r1").display().to_string(),
                 "--checkpoint-every".into(), "-3".into()],
            "bad --checkpoint-every",
        ),
        (
            vec!["--run-dir".into(), dir.join("r2").display().to_string(),
                 "--time-budget".into(), "0".into()],
            "--time-budget must be at least 1",
        ),
        (
            vec!["--run-dir".into(), dir.join("r3").display().to_string(),
                 "--time-budget".into(), "nope".into()],
            "bad --time-budget",
        ),
    ];
    for (flags, needle) in cases {
        let out = bin().arg("extract").arg(&sp).args(&flags).output().unwrap();
        assert_eq!(out.status.code(), Some(2), "{flags:?}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains(needle), "{flags:?}: {stderr}");
    }

    // A run directory that cannot be created (parent is a file).
    let blocker = dir.join("blocker");
    fs::write(&blocker, "not a directory").unwrap();
    let out = bin()
        .arg("extract")
        .arg(&sp)
        .arg("--run-dir")
        .arg(blocker.join("run"))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "{}", String::from_utf8_lossy(&out.stderr));

    // --model and --run-dir are mutually exclusive: a durable run owns
    // its own trained model artifact.
    let out = bin()
        .arg("extract")
        .arg(&sp)
        .args(["--model", "m.txt", "--run-dir"])
        .arg(dir.join("r4"))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "{}", String::from_utf8_lossy(&out.stderr));
}

/// An expired `--time-budget` exits 10 with the run checkpointed;
/// resuming makes forward progress from the saved epoch rather than
/// starting over.
#[test]
fn time_budget_expiry_exits_10_and_is_resumable() {
    let dir = workdir("deadline");
    let sp = dir.join("sa.sp");
    fs::write(&sp, NETLIST).unwrap();
    let run = dir.join("run");

    let newest_epoch = |run: &PathBuf| -> usize {
        let mut names: Vec<String> = fs::read_dir(run.join("checkpoints"))
            .unwrap()
            .flatten()
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        names.sort();
        let last = names.last().expect("at least one checkpoint").clone();
        last.trim_start_matches("epoch-").trim_end_matches(".ckpt").parse().unwrap()
    };

    // Far more epochs than one second allows.
    let base = ["--epochs", "200000", "--seed", "3", "--checkpoint-every", "25",
                "--time-budget", "1"];
    let out = bin().arg("extract").arg(&sp).arg("--run-dir").arg(&run).args(base)
        .output().unwrap();
    assert_eq!(out.status.code(), Some(10), "{}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("time budget expired"), "{stderr}");
    assert!(stderr.contains("--resume"), "tells the user how to continue: {stderr}");
    assert!(run.join("manifest.json").exists());
    let first = newest_epoch(&run);

    // Resume under the same (still too small) budget: exits 10 again,
    // but from a strictly later checkpoint — progress accumulates.
    let out = bin().arg("extract").arg(&sp).arg("--run-dir").arg(&run).arg("--resume")
        .args(base).output().unwrap();
    assert_eq!(out.status.code(), Some(10), "{}", String::from_utf8_lossy(&out.stderr));
    let second = newest_epoch(&run);
    assert!(second > first, "no progress across resume: {first} → {second}");
}

#[test]
fn groups_output_renders_paths() {
    let dir = workdir("groups");
    let sp = dir.join("sa.sp");
    fs::write(&sp, NETLIST).unwrap();
    let out = bin()
        .args(["extract"])
        .arg(&sp)
        .args(["--epochs", "15", "--groups"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("members"), "{stdout}");
    assert!(stdout.contains("sa/M1"), "{stdout}");
}

/// `bench` sweeps both backends by default, pins every `(backend,
/// threads)` combination to one output hash, and records the schema
/// fields CI's perf-smoke gate dispatches on. `--repeat` repetitions
/// must reproduce the hash (the report says so via
/// `identical_across_*`), and a zero repeat count is a usage error.
#[test]
fn bench_report_pins_backends_and_threads() {
    let dir = workdir("bench");
    let sp = dir.join("sa.sp");
    fs::write(&sp, NETLIST).unwrap();
    let report_path = dir.join("report.json");

    let out = bin()
        .arg("bench")
        .arg(&sp)
        .args(["--epochs", "8", "--seed", "5", "--threads", "2"])
        .args(["--stress-devices", "0", "--repeat", "2"])
        .arg("-o")
        .arg(&report_path)
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let report = fs::read_to_string(&report_path).unwrap();
    for needle in [
        "\"schema\": \"ancstr-bench-v2\"",
        "\"backends\": [\"scalar\", \"simd\"]",
        "\"repeat\": 2",
        "\"identical_across_threads\": true",
        "\"identical_across_backends\": true",
        "\"simd_speedup_t1\"",
        "\"backend\": \"scalar\", \"stage\": \"detect\"",
        "\"backend\": \"simd\", \"stage\": \"detect\"",
        "\"kernel\": \"matmul\"",
    ] {
        assert!(report.contains(needle), "missing {needle} in:\n{report}");
    }
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("identical across thread counts [1, 2] and backends"),
        "{stdout}"
    );

    // Pinning one backend narrows the report: no cross-backend ratio,
    // and only that backend's records.
    let out = bin()
        .arg("bench")
        .arg(&sp)
        .args(["--epochs", "8", "--seed", "5", "--threads", "2"])
        .args(["--stress-devices", "0", "--backend", "scalar"])
        .arg("-o")
        .arg(&report_path)
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let report = fs::read_to_string(&report_path).unwrap();
    assert!(report.contains("\"backends\": [\"scalar\"]"), "{report}");
    assert!(!report.contains("simd_speedup_t1"), "{report}");
    assert!(!report.contains("\"backend\": \"simd\""), "{report}");

    let out = bin()
        .arg("bench")
        .arg(&sp)
        .args(["--repeat", "0"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2), "usage error for --repeat 0");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--repeat must be at least 1"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}
