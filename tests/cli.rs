//! End-to-end tests of the `ancstr` command-line tool, driving the real
//! binary through temp files: stats → train → extract (with a
//! pre-trained model) → constraint/DOT outputs.

use std::fs;
use std::path::PathBuf;
use std::process::Command;

const NETLIST: &str = "\
.subckt sa inp inn outp outn clk vdd vss
*.class comparator
M1 x1 inp tail vss nch_lvt w=6u l=0.1u
M2 x2 inn tail vss nch_lvt w=6u l=0.1u
M3 outn outp x1 vss nch_lvt w=6u l=0.1u
M4 outp outn x2 vss nch_lvt w=6u l=0.1u
M5 outn outp vdd vdd pch_lvt w=12u l=0.1u
M6 outp outn vdd vdd pch_lvt w=12u l=0.1u
M7 tail clk vss vss nch w=12u l=0.1u
.ends
";

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ancstr"))
}

fn workdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ancstr-cli-test-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create temp workdir");
    dir
}

#[test]
fn stats_reports_counts() {
    let dir = workdir("stats");
    let sp = dir.join("sa.sp");
    fs::write(&sp, NETLIST).unwrap();
    let out = bin().arg("stats").arg(&sp).output().expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("devices      7"), "{stdout}");
    assert!(stdout.contains("valid pairs"), "{stdout}");
}

#[test]
fn train_then_extract_with_model() {
    let dir = workdir("train");
    let sp = dir.join("sa.sp");
    fs::write(&sp, NETLIST).unwrap();
    let model = dir.join("model.txt");

    let out = bin()
        .args(["train"])
        .arg(&sp)
        .args(["--model-out"])
        .arg(&model)
        .args(["--epochs", "25", "--seed", "3"])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(model.exists());

    let constraints = dir.join("out.sym");
    let out = bin()
        .args(["extract"])
        .arg(&sp)
        .args(["--model"])
        .arg(&model)
        .args(["-o"])
        .arg(&constraints)
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = fs::read_to_string(&constraints).unwrap();
    assert!(text.contains("M1 M2"), "input pair found:\n{text}");
    assert!(text.contains("# hierarchy: sa"), "{text}");
}

#[test]
fn extract_writes_dot() {
    let dir = workdir("dot");
    let sp = dir.join("sa.sp");
    fs::write(&sp, NETLIST).unwrap();
    let dot = dir.join("sa.dot");
    let out = bin()
        .args(["extract"])
        .arg(&sp)
        .args(["--epochs", "15", "--dot"])
        .arg(&dot)
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = fs::read_to_string(&dot).unwrap();
    assert!(text.starts_with("digraph"));
    assert!(text.contains("sa/M1"));
}

#[test]
fn bad_usage_fails_cleanly() {
    let out = bin().output().expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));

    let out = bin().args(["extract", "/nonexistent.sp"]).output().expect("binary runs");
    assert!(!out.status.success());

    let out = bin()
        .args(["extract", "a.sp", "--frobnicate"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown flag"));
}

/// Exit codes are stable per failure stage: 2 usage, 3 I/O, 4 parse,
/// 5 elaborate, 6 bad model file — so scripts can dispatch on them.
#[test]
fn exit_codes_identify_the_failing_stage() {
    let dir = workdir("codes");
    let sp = dir.join("sa.sp");
    fs::write(&sp, NETLIST).unwrap();

    // Usage errors: no command, and a wrong flag.
    let out = bin().output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let out = bin().args(["extract"]).output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2), "extract with no netlist is a usage error");
    let out = bin()
        .args(["extract"])
        .arg(&sp)
        .args(["--epochs", "0"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2), "zero epochs is a usage error, not a panic");

    // Parse failure names the stage and the line.
    let bad = dir.join("bad.sp");
    fs::write(&bad, ".ends\n").unwrap();
    let out = bin().args(["stats"]).arg(&bad).output().expect("binary runs");
    assert_eq!(out.status.code(), Some(4), "{}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("parse"), "{stderr}");

    // Elaboration failure (instance of an undefined subcircuit).
    let dangling = dir.join("dangling.sp");
    fs::write(&dangling, ".subckt top a b\nX1 a b missing\n.ends\n").unwrap();
    let out = bin().args(["stats"]).arg(&dangling).output().expect("binary runs");
    assert_eq!(out.status.code(), Some(5), "{}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("elaborate"), "{stderr}");

    // Unreadable model file is an I/O error; a corrupt one is a
    // load-model error.
    let out = bin()
        .args(["extract"])
        .arg(&sp)
        .args(["--model"])
        .arg(dir.join("no-such-model.txt"))
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(3), "{}", String::from_utf8_lossy(&out.stderr));

    let corrupt = dir.join("corrupt-model.txt");
    fs::write(&corrupt, "not a model\n").unwrap();
    let out = bin()
        .args(["extract"])
        .arg(&sp)
        .args(["--model"])
        .arg(&corrupt)
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(6), "{}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("load-model"), "{stderr}");
}

#[test]
fn groups_output_renders_paths() {
    let dir = workdir("groups");
    let sp = dir.join("sa.sp");
    fs::write(&sp, NETLIST).unwrap();
    let out = bin()
        .args(["extract"])
        .arg(&sp)
        .args(["--epochs", "15", "--groups"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("members"), "{stdout}");
    assert!(stdout.contains("sa/M1"), "{stdout}");
}
