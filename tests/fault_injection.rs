//! Fault-injection harness: every corruption operator in
//! `ancstr_core::inject`, swept over multiple seeds, must drive the
//! full pipeline to a **typed error or a degraded-but-valid result —
//! never a panic**. Covers the netlist boundary (10 SPICE fault
//! classes), the model-file boundary (6 classes), dataset-level faults
//! (empty corpus), and in-training numerical faults (injected NaN
//! gradient, recovered via checkpoint restore).

use ancstr_core::{
    inject_checkpoint, inject_model, inject_spice, CheckpointFault, DurableFit, ExtractError,
    ExtractorConfig, ModelFault, RunError, RunOptions, RunSession, SymmetryExtractor,
    ALL_CHECKPOINT_FAULTS, ALL_MODEL_FAULTS, ALL_SPICE_FAULTS,
};
use ancstr_gnn::{GnnModel, HealthConfig, TrainConfig, TrainError};
use ancstr_netlist::flat::FlatCircuit;
use ancstr_netlist::parse::parse_spice;

/// A healthy two-level netlist exercising subcircuit instantiation,
/// geometry parameters, and several device types.
const GOOD_SRC: &str = "\
.subckt diffpair inp inn outp outn ibias vdd vss
M1 outp inp tail vss nch_lvt w=4u l=0.2u
M2 outn inn tail vss nch_lvt w=4u l=0.2u
M3 outp bias vdd vdd pch w=8u l=0.2u
M4 outn bias vdd vdd pch w=8u l=0.2u
M5 tail ibias vss vss nch w=2u l=0.5u
R1 bias outp 10k
R2 bias outn 10k
C1 outp vss 20f
C2 outn vss 20f
.ends
.subckt top a b oa ob ib vdd vss
X1 a b oa ob ib vdd vss diffpair
.ends
";

fn tiny_config() -> ExtractorConfig {
    ExtractorConfig {
        train: TrainConfig { epochs: 3, seed: 17, ..TrainConfig::default() },
        ..ExtractorConfig::default()
    }
}

/// A pre-trained extractor shared across mutated inputs (training once
/// keeps the sweep fast; inference is the stage under test here).
fn trained_extractor() -> SymmetryExtractor {
    let nl = parse_spice(GOOD_SRC).expect("fixture is valid");
    let flat = FlatCircuit::elaborate(&nl).expect("fixture elaborates");
    let mut ex = SymmetryExtractor::try_new(tiny_config()).expect("dim matches");
    let (_, health) = ex.try_fit(&[&flat], &HealthConfig::default()).expect("healthy fit");
    assert!(health.clean(), "fixture training must be anomaly-free: {health:?}");
    ex
}

/// Every SPICE fault class × several seeds, through parse → elaborate →
/// guarded extraction. Any outcome is acceptable except a panic or an
/// untyped failure.
#[test]
fn spice_faults_never_panic_anywhere_in_the_pipeline() {
    let ex = trained_extractor();
    let mut parse_errors = 0usize;
    let mut elaborate_errors = 0usize;
    let mut degraded = 0usize;
    let mut survived = 0usize;

    for fault in ALL_SPICE_FAULTS {
        for seed in 0..6u64 {
            let mutated = inject_spice(GOOD_SRC, fault, seed);
            let nl = match parse_spice(&mutated) {
                Ok(nl) => nl,
                Err(e) => {
                    // Typed, and it names a location.
                    assert!(!e.to_string().is_empty(), "{fault:?}/{seed}");
                    parse_errors += 1;
                    continue;
                }
            };
            let flat = match FlatCircuit::elaborate(&nl) {
                Ok(flat) => flat,
                Err(e) => {
                    assert!(!e.to_string().is_empty(), "{fault:?}/{seed}");
                    elaborate_errors += 1;
                    continue;
                }
            };
            // The mutation produced a *valid* circuit: inference must
            // still complete without panicking.
            match ex.try_extract(&flat) {
                Ok(out) => {
                    if out.detection.warnings.is_empty() {
                        survived += 1;
                    } else {
                        degraded += 1;
                    }
                }
                Err(e) => {
                    assert!(e.exit_code() >= 4, "{fault:?}/{seed}: {e}");
                }
            }
        }
    }
    // The sweep must exercise both rejection paths and the
    // survived-mutation path, or the operators are too weak.
    assert!(parse_errors > 0, "no fault ever failed parsing");
    assert!(elaborate_errors > 0, "no fault ever failed elaboration");
    assert!(survived + degraded > 0, "no mutated netlist ever reached inference");
}

/// Every model-file fault class × several seeds through
/// `GnnModel::from_text` and the checked pipeline loader: either a
/// typed error, or a model whose weights are all finite.
#[test]
fn model_faults_yield_typed_errors_or_finite_models() {
    let ex = trained_extractor();
    let text = ex.model().to_text();
    for fault in ALL_MODEL_FAULTS {
        for seed in 0..6u64 {
            let mutated = inject_model(&text, fault, seed);
            match GnnModel::from_text(&mutated) {
                Ok(model) => assert!(
                    model.is_finite(),
                    "{fault:?}/{seed}: parser accepted a non-finite model"
                ),
                Err(e) => assert!(!e.to_string().is_empty(), "{fault:?}/{seed}"),
            }
            // The pipeline loader maps the same failures to load-model
            // exit codes (6) and never panics.
            if let Err(e) =
                SymmetryExtractor::try_new(tiny_config()).unwrap().with_model_text(&mutated)
            {
                assert_eq!(e.exit_code(), 6, "{fault:?}/{seed}: {e}");
            }
        }
    }
    // Non-finite weights parse as f64, so only the explicit finiteness
    // check can reject them: these two classes must always error.
    for fault in [ModelFault::NanWeight, ModelFault::InfWeight] {
        for seed in 0..6u64 {
            let mutated = inject_model(&text, fault, seed);
            assert!(
                GnnModel::from_text(&mutated).is_err(),
                "{fault:?}/{seed}: non-finite weight accepted"
            );
        }
    }
}

/// Dataset-level fault: an empty training corpus is a typed error, not
/// a panic deep inside the batch sampler.
#[test]
fn empty_corpus_is_a_typed_training_error() {
    let mut ex = SymmetryExtractor::try_new(tiny_config()).unwrap();
    let err = ex.try_fit(&[], &HealthConfig::default()).unwrap_err();
    assert_eq!(err, ExtractError::Train(TrainError::EmptyDataset));
    assert_eq!(err.exit_code(), 7);
}

/// In-training numerical fault at the integration level: a transient
/// NaN gradient injected mid-training is recovered by checkpoint
/// restore + re-seed, and the pipeline still produces a symmetric
/// detection for a symmetric circuit.
#[test]
fn injected_nan_gradient_recovers_and_extraction_still_works() {
    let nl = parse_spice(GOOD_SRC).unwrap();
    let flat = FlatCircuit::elaborate(&nl).unwrap();
    let mut ex = SymmetryExtractor::try_new(tiny_config()).unwrap();
    let health_cfg =
        HealthConfig { inject_nan_grad_at: Some(1), ..HealthConfig::default() };
    let (report, health) = ex.try_fit(&[&flat], &health_cfg).expect("recovers");
    assert_eq!(health.retries.len(), 1, "exactly one recovery: {health:?}");
    assert!(report.epoch_losses.iter().all(|l| l.is_finite()));

    let out = ex.try_extract(&flat).expect("post-recovery inference works");
    let id = |p: &str| flat.node_by_path(p).expect("path exists").id;
    assert!(out
        .detection
        .constraints
        .contains_pair(id("top/X1/M1"), id("top/X1/M2")));
}

// ---------------------------------------------------------------------
// Checkpoint / run-store boundary: every corruption operator applied to
// on-disk run state must leave resume with a typed error or a recovery
// note — never a panic, and never silently wrong weights.

fn tmp_run(tag: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("ancstr-fault-run-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn durable_config() -> ExtractorConfig {
    ExtractorConfig {
        train: TrainConfig { epochs: 8, seed: 17, ..TrainConfig::default() },
        ..ExtractorConfig::default()
    }
}

/// Run a durable fit in `dir` and cancel it after three every-epoch
/// checkpoints, leaving `checkpoints/epoch-00000{1,2,3}.ckpt` on disk
/// and the `train` stage pending.
fn interrupted_run(dir: &std::path::Path, flat: &FlatCircuit) {
    let config = durable_config();
    let mut opts = RunOptions::new(dir);
    opts.checkpoint_every = 1;
    opts.test_cancel_after_checkpoints = Some(3);
    let mut session =
        RunSession::open(opts, "extract", &config, &["fixture.sp".to_owned()]).unwrap();
    let mut ex = SymmetryExtractor::try_new(config).unwrap();
    let out = ex.fit_durable(&[flat], &HealthConfig::default(), &mut session).unwrap();
    assert!(matches!(out, DurableFit::Cancelled { after_epoch: 3 }), "{out:?}");
}

/// Resume the run in `dir` with a fresh extractor, returning the
/// outcome and the final model text.
fn resume_run(dir: &std::path::Path) -> (DurableFit, String) {
    let config = durable_config();
    let mut opts = RunOptions::new(dir);
    opts.resume = true;
    opts.checkpoint_every = 1;
    let mut session =
        RunSession::open(opts, "extract", &config, &["fixture.sp".to_owned()]).unwrap();
    let nl = parse_spice(GOOD_SRC).unwrap();
    let flat = FlatCircuit::elaborate(&nl).unwrap();
    let mut ex = SymmetryExtractor::try_new(config).unwrap();
    let out = ex.fit_durable(&[&flat], &HealthConfig::default(), &mut session).unwrap();
    (out, ex.model().to_text())
}

/// Paths of every checkpoint in the run, oldest first.
fn checkpoint_files(dir: &std::path::Path) -> Vec<std::path::PathBuf> {
    let mut files: Vec<_> = std::fs::read_dir(dir.join("checkpoints"))
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .collect();
    files.sort();
    files
}

/// The uninterrupted reference weights for [`durable_config`].
fn reference_weights(flat: &FlatCircuit) -> String {
    let mut ex = SymmetryExtractor::try_new(durable_config()).unwrap();
    let (_, health) = ex.try_fit(&[flat], &HealthConfig::default()).unwrap();
    assert!(health.clean(), "{health:?}");
    ex.model().to_text()
}

/// Truncation and bit flips on the newest checkpoint: resume skips it
/// with a recovery note, falls back to the next-oldest valid one, and
/// still lands on bit-identical final weights.
#[test]
fn corrupt_newest_checkpoint_is_skipped_and_resume_stays_bit_identical() {
    let nl = parse_spice(GOOD_SRC).unwrap();
    let flat = FlatCircuit::elaborate(&nl).unwrap();
    let reference = reference_weights(&flat);

    for fault in [
        CheckpointFault::TruncateTail { keep_frac: 0.7 },
        CheckpointFault::FlipBit { count: 1 },
    ] {
        for seed in 0..3u64 {
            let dir = tmp_run(&format!("skip-{fault:?}-{seed}")
                .replace(|c: char| !c.is_ascii_alphanumeric(), "-"));
            interrupted_run(&dir, &flat);
            let files = checkpoint_files(&dir);
            assert_eq!(files.len(), 3, "{files:?}");
            let newest = files.last().unwrap();
            let text = std::fs::read_to_string(newest).unwrap();
            std::fs::write(newest, inject_checkpoint(&text, fault, seed)).unwrap();

            let (out, weights) = resume_run(&dir);
            let DurableFit::Completed { resumed_from, notes, .. } = out else {
                panic!("{fault:?}/{seed}: expected completion, got {out:?}");
            };
            assert_eq!(resumed_from, Some(2), "{fault:?}/{seed}");
            assert!(
                notes.iter().any(|n| n.contains("skip")),
                "{fault:?}/{seed}: no skip note in {notes:?}"
            );
            assert_eq!(weights, reference, "{fault:?}/{seed}: weights diverged");
        }
    }
}

/// Destroying *every* checkpoint is still survivable: resume warns,
/// retrains from scratch, and the deterministic seed lineage lands on
/// the same weights.
#[test]
fn all_checkpoints_corrupt_falls_back_to_retraining() {
    let nl = parse_spice(GOOD_SRC).unwrap();
    let flat = FlatCircuit::elaborate(&nl).unwrap();
    let dir = tmp_run("all-corrupt");
    interrupted_run(&dir, &flat);
    for (i, path) in checkpoint_files(&dir).iter().enumerate() {
        let text = std::fs::read_to_string(path).unwrap();
        let fault = CheckpointFault::TruncateTail { keep_frac: 0.5 };
        std::fs::write(path, inject_checkpoint(&text, fault, i as u64)).unwrap();
    }
    let (out, weights) = resume_run(&dir);
    let DurableFit::Completed { resumed_from, notes, .. } = out else {
        panic!("expected completion, got {out:?}");
    };
    assert_eq!(resumed_from, None, "nothing valid to resume from");
    assert!(!notes.is_empty(), "retraining silently: {notes:?}");
    assert_eq!(weights, reference_weights(&flat));
}

/// The stale-manifest operator re-seals the manifest with a zeroed
/// config hash: the CRC *verifies*, so only semantic validation can
/// catch it — as a typed config mismatch mapping to exit code 9.
#[test]
fn stale_manifest_is_a_typed_config_mismatch() {
    let nl = parse_spice(GOOD_SRC).unwrap();
    let flat = FlatCircuit::elaborate(&nl).unwrap();
    let dir = tmp_run("stale-manifest");
    interrupted_run(&dir, &flat);
    let path = dir.join("manifest.json");
    let text = std::fs::read_to_string(&path).unwrap();
    let stale = inject_checkpoint(&text, CheckpointFault::StaleManifest, 0);
    assert_ne!(stale, text, "operator must rewrite the manifest");
    std::fs::write(&path, stale).unwrap();

    let config = durable_config();
    let mut opts = RunOptions::new(&dir);
    opts.resume = true;
    let err = RunSession::open(opts, "extract", &config, &["fixture.sp".to_owned()])
        .unwrap_err();
    assert!(
        matches!(err, RunError::ConfigMismatch { field: "config_hash", .. }),
        "{err:?}"
    );
    assert_eq!(ExtractError::from(err).exit_code(), 9);
}

/// Every checkpoint fault class × several seeds, applied to both the
/// newest checkpoint and the manifest: resume either completes (with
/// identical weights) or fails with a typed error. Never a panic.
#[test]
fn checkpoint_fault_sweep_never_panics() {
    let nl = parse_spice(GOOD_SRC).unwrap();
    let flat = FlatCircuit::elaborate(&nl).unwrap();
    let reference = reference_weights(&flat);
    let mut completions = 0usize;
    let mut typed_errors = 0usize;

    for fault in ALL_CHECKPOINT_FAULTS {
        for seed in 0..4u64 {
            for target_manifest in [false, true] {
                let dir = tmp_run(&format!("sweep-{fault:?}-{seed}-{target_manifest}")
                    .replace(|c: char| !c.is_ascii_alphanumeric(), "-"));
                interrupted_run(&dir, &flat);
                let path = if target_manifest {
                    dir.join("manifest.json")
                } else {
                    checkpoint_files(&dir).pop().unwrap()
                };
                let text = std::fs::read_to_string(&path).unwrap();
                std::fs::write(&path, inject_checkpoint(&text, fault, seed)).unwrap();

                let config = durable_config();
                let mut opts = RunOptions::new(&dir);
                opts.resume = true;
                opts.checkpoint_every = 1;
                let session = RunSession::open(
                    opts,
                    "extract",
                    &config,
                    &["fixture.sp".to_owned()],
                );
                match session {
                    Err(e) => {
                        // Manifest damage: typed, and it maps to the
                        // run-store exit code.
                        assert!(!e.to_string().is_empty(), "{fault:?}/{seed}");
                        assert_eq!(ExtractError::from(e).exit_code(), 9);
                        typed_errors += 1;
                    }
                    Ok(mut session) => {
                        let mut ex = SymmetryExtractor::try_new(config).unwrap();
                        let out = ex
                            .fit_durable(&[&flat], &HealthConfig::default(), &mut session)
                            .expect("checkpoint damage is always recoverable");
                        assert!(
                            matches!(out, DurableFit::Completed { .. }),
                            "{fault:?}/{seed}: {out:?}"
                        );
                        assert_eq!(
                            ex.model().to_text(),
                            reference,
                            "{fault:?}/{seed}: weights diverged"
                        );
                        completions += 1;
                    }
                }
            }
        }
    }
    assert!(completions > 0, "no corrupted run ever resumed");
    assert!(typed_errors > 0, "no manifest fault was ever rejected");
}

/// Control: the harness itself is deterministic — the same fault and
/// seed always produce the same mutated text, so failures reproduce.
#[test]
fn clean_inputs_and_injections_are_deterministic()  {
    for fault in ALL_SPICE_FAULTS {
        assert_eq!(inject_spice(GOOD_SRC, fault, 42), inject_spice(GOOD_SRC, fault, 42));
    }
    let model = trained_extractor().model().to_text();
    for fault in ALL_MODEL_FAULTS {
        assert_eq!(inject_model(&model, fault, 42), inject_model(&model, fault, 42));
    }
}
