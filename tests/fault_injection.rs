//! Fault-injection harness: every corruption operator in
//! `ancstr_core::inject`, swept over multiple seeds, must drive the
//! full pipeline to a **typed error or a degraded-but-valid result —
//! never a panic**. Covers the netlist boundary (10 SPICE fault
//! classes), the model-file boundary (6 classes), dataset-level faults
//! (empty corpus), and in-training numerical faults (injected NaN
//! gradient, recovered via checkpoint restore).

use ancstr_core::{
    inject_model, inject_spice, ExtractError, ExtractorConfig, ModelFault, SymmetryExtractor,
    ALL_MODEL_FAULTS, ALL_SPICE_FAULTS,
};
use ancstr_gnn::{GnnModel, HealthConfig, TrainConfig, TrainError};
use ancstr_netlist::flat::FlatCircuit;
use ancstr_netlist::parse::parse_spice;

/// A healthy two-level netlist exercising subcircuit instantiation,
/// geometry parameters, and several device types.
const GOOD_SRC: &str = "\
.subckt diffpair inp inn outp outn ibias vdd vss
M1 outp inp tail vss nch_lvt w=4u l=0.2u
M2 outn inn tail vss nch_lvt w=4u l=0.2u
M3 outp bias vdd vdd pch w=8u l=0.2u
M4 outn bias vdd vdd pch w=8u l=0.2u
M5 tail ibias vss vss nch w=2u l=0.5u
R1 bias outp 10k
R2 bias outn 10k
C1 outp vss 20f
C2 outn vss 20f
.ends
.subckt top a b oa ob ib vdd vss
X1 a b oa ob ib vdd vss diffpair
.ends
";

fn tiny_config() -> ExtractorConfig {
    ExtractorConfig {
        train: TrainConfig { epochs: 3, seed: 17, ..TrainConfig::default() },
        ..ExtractorConfig::default()
    }
}

/// A pre-trained extractor shared across mutated inputs (training once
/// keeps the sweep fast; inference is the stage under test here).
fn trained_extractor() -> SymmetryExtractor {
    let nl = parse_spice(GOOD_SRC).expect("fixture is valid");
    let flat = FlatCircuit::elaborate(&nl).expect("fixture elaborates");
    let mut ex = SymmetryExtractor::try_new(tiny_config()).expect("dim matches");
    let (_, health) = ex.try_fit(&[&flat], &HealthConfig::default()).expect("healthy fit");
    assert!(health.clean(), "fixture training must be anomaly-free: {health:?}");
    ex
}

/// Every SPICE fault class × several seeds, through parse → elaborate →
/// guarded extraction. Any outcome is acceptable except a panic or an
/// untyped failure.
#[test]
fn spice_faults_never_panic_anywhere_in_the_pipeline() {
    let ex = trained_extractor();
    let mut parse_errors = 0usize;
    let mut elaborate_errors = 0usize;
    let mut degraded = 0usize;
    let mut survived = 0usize;

    for fault in ALL_SPICE_FAULTS {
        for seed in 0..6u64 {
            let mutated = inject_spice(GOOD_SRC, fault, seed);
            let nl = match parse_spice(&mutated) {
                Ok(nl) => nl,
                Err(e) => {
                    // Typed, and it names a location.
                    assert!(!e.to_string().is_empty(), "{fault:?}/{seed}");
                    parse_errors += 1;
                    continue;
                }
            };
            let flat = match FlatCircuit::elaborate(&nl) {
                Ok(flat) => flat,
                Err(e) => {
                    assert!(!e.to_string().is_empty(), "{fault:?}/{seed}");
                    elaborate_errors += 1;
                    continue;
                }
            };
            // The mutation produced a *valid* circuit: inference must
            // still complete without panicking.
            match ex.try_extract(&flat) {
                Ok(out) => {
                    if out.detection.warnings.is_empty() {
                        survived += 1;
                    } else {
                        degraded += 1;
                    }
                }
                Err(e) => {
                    assert!(e.exit_code() >= 4, "{fault:?}/{seed}: {e}");
                }
            }
        }
    }
    // The sweep must exercise both rejection paths and the
    // survived-mutation path, or the operators are too weak.
    assert!(parse_errors > 0, "no fault ever failed parsing");
    assert!(elaborate_errors > 0, "no fault ever failed elaboration");
    assert!(survived + degraded > 0, "no mutated netlist ever reached inference");
}

/// Every model-file fault class × several seeds through
/// `GnnModel::from_text` and the checked pipeline loader: either a
/// typed error, or a model whose weights are all finite.
#[test]
fn model_faults_yield_typed_errors_or_finite_models() {
    let ex = trained_extractor();
    let text = ex.model().to_text();
    for fault in ALL_MODEL_FAULTS {
        for seed in 0..6u64 {
            let mutated = inject_model(&text, fault, seed);
            match GnnModel::from_text(&mutated) {
                Ok(model) => assert!(
                    model.is_finite(),
                    "{fault:?}/{seed}: parser accepted a non-finite model"
                ),
                Err(e) => assert!(!e.to_string().is_empty(), "{fault:?}/{seed}"),
            }
            // The pipeline loader maps the same failures to load-model
            // exit codes (6) and never panics.
            if let Err(e) =
                SymmetryExtractor::try_new(tiny_config()).unwrap().with_model_text(&mutated)
            {
                assert_eq!(e.exit_code(), 6, "{fault:?}/{seed}: {e}");
            }
        }
    }
    // Non-finite weights parse as f64, so only the explicit finiteness
    // check can reject them: these two classes must always error.
    for fault in [ModelFault::NanWeight, ModelFault::InfWeight] {
        for seed in 0..6u64 {
            let mutated = inject_model(&text, fault, seed);
            assert!(
                GnnModel::from_text(&mutated).is_err(),
                "{fault:?}/{seed}: non-finite weight accepted"
            );
        }
    }
}

/// Dataset-level fault: an empty training corpus is a typed error, not
/// a panic deep inside the batch sampler.
#[test]
fn empty_corpus_is_a_typed_training_error() {
    let mut ex = SymmetryExtractor::try_new(tiny_config()).unwrap();
    let err = ex.try_fit(&[], &HealthConfig::default()).unwrap_err();
    assert_eq!(err, ExtractError::Train(TrainError::EmptyDataset));
    assert_eq!(err.exit_code(), 7);
}

/// In-training numerical fault at the integration level: a transient
/// NaN gradient injected mid-training is recovered by checkpoint
/// restore + re-seed, and the pipeline still produces a symmetric
/// detection for a symmetric circuit.
#[test]
fn injected_nan_gradient_recovers_and_extraction_still_works() {
    let nl = parse_spice(GOOD_SRC).unwrap();
    let flat = FlatCircuit::elaborate(&nl).unwrap();
    let mut ex = SymmetryExtractor::try_new(tiny_config()).unwrap();
    let health_cfg =
        HealthConfig { inject_nan_grad_at: Some(1), ..HealthConfig::default() };
    let (report, health) = ex.try_fit(&[&flat], &health_cfg).expect("recovers");
    assert_eq!(health.retries.len(), 1, "exactly one recovery: {health:?}");
    assert!(report.epoch_losses.iter().all(|l| l.is_finite()));

    let out = ex.try_extract(&flat).expect("post-recovery inference works");
    let id = |p: &str| flat.node_by_path(p).expect("path exists").id;
    assert!(out
        .detection
        .constraints
        .contains_pair(id("top/X1/M1"), id("top/X1/M2")));
}

/// Control: the harness itself is deterministic — the same fault and
/// seed always produce the same mutated text, so failures reproduce.
#[test]
fn clean_inputs_and_injections_are_deterministic()  {
    for fault in ALL_SPICE_FAULTS {
        assert_eq!(inject_spice(GOOD_SRC, fault, 42), inject_spice(GOOD_SRC, fault, 42));
    }
    let model = trained_extractor().model().to_text();
    for fault in ALL_MODEL_FAULTS {
        assert_eq!(inject_model(&model, fault, 42), inject_model(&model, fault, 42));
    }
}
