//! Parallel + backend identity: extraction output is byte-identical at
//! every thread count *and* on every kernel backend.
//!
//! The compute layer (`ancstr-par`) promises that thread count is a
//! scheduling detail, never an output detail; the kernel layer
//! (`ancstr-nn`'s `Backend`) promises the same for the scalar/SIMD
//! choice. These tests hold the real binary and the library pipeline to
//! both promises on a mixed comparator/OTA/ADC suite: constraints,
//! scores, warnings, and the trace event order must all match between
//! `--threads 1` and `--threads 8`, and between `ANCSTR_BACKEND=scalar`
//! and `ANCSTR_BACKEND=simd`.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

use ancstr_circuits::{adc, block_benchmarks};
use ancstr_core::{detect_constraints, SymmetryExtractor};
use ancstr_netlist::flat::FlatCircuit;
use ancstr_netlist::parse::parse_spice;
use ancstr_netlist::write::write_spice;
use ancstr_nn::BackendKind;
use ancstr_obs::validate_trace;

const COMPARATOR: &str = "\
.subckt sa inp inn outp outn clk vdd vss
*.class comparator
M1 x1 inp tail vss nch_lvt w=6u l=0.1u
M2 x2 inn tail vss nch_lvt w=6u l=0.1u
M3 outn outp x1 vss nch_lvt w=6u l=0.1u
M4 outp outn x2 vss nch_lvt w=6u l=0.1u
M5 outn outp vdd vdd pch_lvt w=12u l=0.1u
M6 outp outn vdd vdd pch_lvt w=12u l=0.1u
M7 tail clk vss vss nch w=12u l=0.1u
.ends
";

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ancstr"))
}

fn workdir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("ancstr-par-id-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create temp workdir");
    dir
}

/// Everything one `extract` run produced that must be invariant across
/// thread counts and backends.
struct RunOutput {
    constraints: String,
    /// stderr with the wall-clock line and the `wrote <path>` echo
    /// removed (the only run-specific lines) — pins warning text *and*
    /// encounter order.
    stderr: String,
    /// Trace events projected to `(kind, span, stage)` — the order and
    /// structure of the stream, minus timestamps.
    trace: Vec<(String, String, String)>,
}

fn extract_at(dir: &Path, sp: &Path, tag: &str, threads: usize, backend: &str) -> RunOutput {
    let sym = dir.join(format!("{tag}-t{threads}-{backend}.sym"));
    let trace = dir.join(format!("{tag}-t{threads}-{backend}.trace"));
    let out = bin()
        .arg("extract")
        .arg(sp)
        .args(["--epochs", "12", "--seed", "7", "--threads", &threads.to_string()])
        .env("ANCSTR_BACKEND", backend)
        .arg("--trace-out")
        .arg(&trace)
        .arg("-o")
        .arg(&sym)
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{tag}: {}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr)
        .lines()
        .filter(|l| !l.contains(" ms") && !l.starts_with("wrote "))
        .collect::<Vec<_>>()
        .join("\n");
    let events = validate_trace(&fs::read_to_string(&trace).expect("trace written"))
        .expect("trace is schema-valid");
    RunOutput {
        constraints: fs::read_to_string(&sym).expect("constraints written"),
        stderr,
        trace: events.into_iter().map(|e| (e.kind, e.span, e.stage)).collect(),
    }
}

/// The CLI contract: every `(backend, threads)` combination produces
/// the same constraint bytes, the same diagnostic stream (warnings
/// included, in order), and the same trace event sequence on every
/// circuit class. Scalar at one thread — the historical sequential
/// kernels — is the reference everything else is compared against.
#[test]
fn extract_output_is_byte_identical_across_threads_and_backends() {
    let dir = workdir("cli");

    // A mixed suite: the inline comparator, a generated OTA, and the
    // smallest ADC benchmark, all round-tripped through real files.
    let ota = write_spice(&block_benchmarks(20210705)[0]);
    let adc1 = write_spice(&adc::adc_benchmarks()[0]);
    let suite: Vec<(&str, String)> = vec![
        ("comparator", COMPARATOR.to_owned()),
        ("ota", ota),
        ("adc1", adc1),
    ];

    for (tag, text) in &suite {
        let sp = dir.join(format!("{tag}.sp"));
        fs::write(&sp, text).unwrap();
        let base = extract_at(&dir, &sp, tag, 1, "scalar");
        assert!(!base.trace.is_empty(), "{tag}: trace captured events");
        for backend in ["scalar", "simd"] {
            for threads in [1usize, 2, 8] {
                if backend == "scalar" && threads == 1 {
                    continue; // the reference run itself
                }
                let run = extract_at(&dir, &sp, tag, threads, backend);
                assert_eq!(
                    base.constraints, run.constraints,
                    "{tag}: constraints diverged at {threads} threads on {backend}"
                );
                assert_eq!(
                    base.stderr, run.stderr,
                    "{tag}: diagnostics/warnings diverged at {threads} threads on {backend}"
                );
                assert_eq!(
                    base.trace, run.trace,
                    "{tag}: trace event order diverged at {threads} threads on {backend}"
                );
            }
        }
    }
}

/// The library contract, one level below the CLI: every score's exact
/// bit pattern, every acceptance decision, and every warning are
/// invariant across thread counts and kernel backends. (In-process
/// `set_threads`/`set_backend` are global, so this file keeps a single
/// library-level test.)
#[test]
fn detection_scores_and_warnings_are_bit_identical_in_process() {
    let flat = FlatCircuit::elaborate(&parse_spice(COMPARATOR).unwrap()).unwrap();
    let config = ancstr_bench::quick_config();

    let run = |threads: usize, backend: BackendKind| {
        ancstr_par::set_threads(threads);
        ancstr_nn::set_backend(backend);
        let mut ex = SymmetryExtractor::new(config.clone());
        ex.fit(&[&flat]);
        let z = ex.vertex_embeddings(&flat);
        let det = detect_constraints(&flat, &z, &config.thresholds, &config.embed);
        let weights: Vec<u64> = ex
            .model()
            .to_text()
            .into_bytes()
            .chunks(8)
            .map(|c| c.iter().fold(0u64, |a, &b| (a << 8) | u64::from(b)))
            .collect();
        (weights, det)
    };

    let (w1, d1) = run(1, BackendKind::Scalar);
    for backend in [BackendKind::Scalar, BackendKind::Simd] {
        for threads in [1usize, 2, 8] {
            if backend == BackendKind::Scalar && threads == 1 {
                continue; // the reference run itself
            }
            let (wn, dn) = run(threads, backend);
            assert_eq!(
                w1, wn,
                "trained weights diverged at {threads} threads on {backend}"
            );
            assert_eq!(
                d1.scored.len(),
                dn.scored.len(),
                "scored-pair count diverged at {threads} threads on {backend}"
            );
            for (a, b) in d1.scored.iter().zip(&dn.scored) {
                assert_eq!(a.candidate, b.candidate);
                assert_eq!(
                    a.score.to_bits(),
                    b.score.to_bits(),
                    "score bits diverged at {threads} threads on {backend} for {:?}",
                    a.candidate
                );
                assert_eq!(a.accepted, b.accepted);
            }
            assert_eq!(d1.constraints, dn.constraints);
            let render = |w: &[ancstr_core::NumericWarning]| -> Vec<String> {
                w.iter().map(|x| x.to_string()).collect()
            };
            assert_eq!(
                render(&d1.warnings),
                render(&dn.warnings),
                "warning order diverged at {threads} threads on {backend}"
            );
        }
    }
    ancstr_par::set_threads(0);
    ancstr_nn::set_backend(BackendKind::Simd);
}
