//! Dataset statistics integration tests: the generated benchmarks must
//! match the paper's published Table III/IV statistics where we pinned
//! them, and stay within sane bounds elsewhere.

use ancstr_bench::{adc_dataset, block_dataset};
use ancstr_core::pair_stats;
use ancstr_netlist::SymmetryKind;

#[test]
fn adc_device_counts_are_exact() {
    let expected = [285usize, 345, 347, 731, 1233];
    for (b, &n) in adc_dataset().iter().zip(&expected) {
        assert_eq!(b.flat.devices().len(), n, "{}", b.name);
    }
}

#[test]
fn adc_net_counts_are_close_to_paper() {
    // Paper: 122, 162, 163, 372, 586. Allow ±35% (net counting depends
    // on hierarchy conventions we cannot observe from the paper).
    let paper = [122usize, 162, 163, 372, 586];
    for (b, &n) in adc_dataset().iter().zip(&paper) {
        let ours = b.flat.net_count();
        let lo = n * 65 / 100;
        let hi = n * 135 / 100;
        assert!(
            (lo..=hi).contains(&ours),
            "{}: {ours} nets vs paper {n}",
            b.name
        );
    }
}

#[test]
fn block_totals_match_table4() {
    let blocks = block_dataset();
    assert_eq!(blocks.len(), 15);
    let devices: usize = blocks.iter().map(|b| b.flat.devices().len()).sum();
    assert_eq!(devices, 324, "Table IV total devices");
    let per_circuit = [12usize, 20, 12, 36, 38, 15, 47, 8, 34, 22, 17, 17, 10, 12, 24];
    for (b, &n) in blocks.iter().zip(&per_circuit) {
        assert_eq!(b.flat.devices().len(), n, "{}", b.name);
    }
}

#[test]
fn every_benchmark_has_valid_ground_truth() {
    for b in adc_dataset().iter().chain(block_dataset().iter()) {
        // pair_stats panics if any ground-truth pair is not a valid
        // candidate, so calling it is the assertion.
        let stats = pair_stats(&b.flat);
        assert!(stats.positives > 0, "{} has ground truth", b.name);
        assert!(
            stats.positives <= stats.total,
            "{}: positives within candidates",
            b.name
        );
    }
}

#[test]
fn adcs_have_system_level_ground_truth() {
    for b in adc_dataset() {
        let system_gt = b
            .flat
            .ground_truth()
            .iter()
            .filter(|c| c.kind == SymmetryKind::System)
            .count();
        assert!(system_gt >= 3, "{}: {} system constraints", b.name, system_gt);
    }
}

#[test]
fn valid_pair_magnitudes_are_paperlike() {
    // The paper's valid-pair counts: ADC1 148 … ADC5 1177. Ours differ
    // (denser matched arrays) but must stay within one order of
    // magnitude.
    let paper = [148usize, 104, 82, 776, 1177];
    for (b, &n) in adc_dataset().iter().zip(&paper) {
        let total = pair_stats(&b.flat).total;
        assert!(
            total <= n * 13 && total * 13 >= n,
            "{}: {total} valid pairs vs paper {n}",
            b.name
        );
    }
}

#[test]
fn hierarchy_depth_reflects_system_structure() {
    for b in adc_dataset() {
        let max_depth = b.flat.nodes().iter().map(|n| n.depth).max().unwrap_or(0);
        assert!(max_depth >= 3, "{}: depth {}", b.name, max_depth);
    }
    for b in block_dataset() {
        let max_depth = b.flat.nodes().iter().map(|n| n.depth).max().unwrap_or(0);
        assert!(max_depth >= 1, "{}: depth {}", b.name, max_depth);
    }
}
