//! Quickstart: parse a SPICE netlist, train the unsupervised GNN on it,
//! and extract symmetry constraints.
//!
//! ```text
//! cargo run -p ancstr-bench --example quickstart
//! ```

use ancstr_core::{ExtractorConfig, SymmetryExtractor};
use ancstr_netlist::flat::FlatCircuit;
use ancstr_netlist::parse::parse_spice;

/// A StrongARM comparator written as a plain SPICE deck.
const NETLIST: &str = "\
* StrongARM latch
.subckt strongarm inp inn outp outn clk vdd vss
*.class comparator
M1 x1 inp tail vss nch_lvt w=6u l=0.1u
M2 x2 inn tail vss nch_lvt w=6u l=0.1u
M3 outn outp x1 vss nch_lvt w=6u l=0.1u
M4 outp outn x2 vss nch_lvt w=6u l=0.1u
M5 outn outp vdd vdd pch_lvt w=12u l=0.1u
M6 outp outn vdd vdd pch_lvt w=12u l=0.1u
M7 tail clk vss vss nch w=12u l=0.1u
M8 x1 clk vdd vdd pch_lvt w=2u l=0.1u
M9 x2 clk vdd vdd pch_lvt w=2u l=0.1u
.ends
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Parse and elaborate the netlist into a flat circuit + hierarchy.
    let netlist = parse_spice(NETLIST)?;
    let flat = FlatCircuit::elaborate(&netlist)?;
    println!(
        "parsed `{}`: {} devices, {} nets",
        netlist.top(),
        flat.devices().len(),
        flat.net_count()
    );

    // 2. Train the unsupervised GNN on this circuit (no labels needed).
    let mut extractor = SymmetryExtractor::new(ExtractorConfig::default());
    let report = extractor.fit(&[&flat]);
    println!(
        "trained {} epochs, loss {:.4} -> {:.4}",
        report.epoch_losses.len(),
        report.epoch_losses.first().copied().unwrap_or(f64::NAN),
        report.final_loss()
    );

    // 3. Extract constraints.
    let result = extractor.extract(&flat);
    println!(
        "\ndetected {} symmetry constraints in {:.1} ms:",
        result.detection.constraints.len(),
        result.runtime.as_secs_f64() * 1e3
    );
    for c in result.detection.constraints.iter() {
        let a = &flat.node(c.pair.lo()).path;
        let b = &flat.node(c.pair.hi()).path;
        println!("  [{}] {a}  <->  {b}", c.kind);
    }

    // The input pair, the cross-coupled pairs, and the precharge pair
    // should all be present.
    let pair = |x: &str, y: &str| {
        let a = flat.node_by_path(x).expect("device exists").id;
        let b = flat.node_by_path(y).expect("device exists").id;
        result.detection.constraints.contains_pair(a, b)
    };
    assert!(pair("strongarm/M1", "strongarm/M2"), "input pair found");
    assert!(pair("strongarm/M3", "strongarm/M4"), "cross-coupled NMOS found");
    assert!(pair("strongarm/M5", "strongarm/M6"), "cross-coupled PMOS found");
    println!("\nall expected pairs found");
    Ok(())
}
