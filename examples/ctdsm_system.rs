//! System-level extraction on a continuous-time ΔΣ modulator — the
//! Fig. 3(a) scenario: matched DAC slice pairs, matched reference
//! buffers, and matched top-level passives, with the differently-scaled
//! integrators as same-class decoys that must *not* match.
//!
//! ```text
//! cargo run -p ancstr-bench --example ctdsm_system --release
//! ```

use ancstr_bench::quick_config;
use ancstr_circuits::adc::adc1;
use ancstr_core::SymmetryExtractor;
use ancstr_netlist::flat::FlatCircuit;
use ancstr_netlist::SymmetryKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let flat = FlatCircuit::elaborate(&adc1())?;
    println!(
        "ADC1 (2nd-order CT dsm): {} devices, {} nets, {} blocks",
        flat.devices().len(),
        flat.net_count(),
        flat.blocks().count()
    );

    let mut extractor = SymmetryExtractor::new(quick_config());
    extractor.fit(&[&flat]);
    let eval = extractor.evaluate(&flat);

    println!(
        "\nsystem-level: TPR {:.3}  FPR {:.3}  F1 {:.3}",
        eval.system.tpr(),
        eval.system.fpr(),
        eval.system.f1()
    );

    // The Fig. 3(a) story: both DAC pairs are system constraints.
    let has = |x: &str, y: &str| {
        let a = flat.node_by_path(x).expect("block exists").id;
        let b = flat.node_by_path(y).expect("block exists").id;
        eval.extraction.detection.constraints.contains_pair(a, b)
    };
    assert!(has("adc1/Xdac1a", "adc1/Xdac1b"), "input DAC pair");
    assert!(has("adc1/Xdac2a", "adc1/Xdac2b"), "second DAC pair");
    assert!(has("adc1/Xrefp", "adc1/Xrefn"), "reference buffer pair");
    assert!(has("adc1/Rff1", "adc1/Rff2"), "feed-forward resistor pair");
    println!("matched DAC slices, reference buffers, and R pairs found");

    // The scaled integrators share a class but must not be constrained.
    assert!(
        !has("adc1/Xint1", "adc1/Xint2"),
        "differently-scaled integrators must not match"
    );
    println!("differently-scaled integrators correctly rejected");

    println!("\naccepted system constraints:");
    for c in eval.extraction.detection.constraints.iter() {
        if c.kind == SymmetryKind::System {
            println!(
                "  {}  <->  {}",
                flat.node(c.pair.lo()).path,
                flat.node(c.pair.hi()).path
            );
        }
    }
    Ok(())
}
