//! Device-level extraction across the OTA suite, comparing the GNN with
//! the SFA pattern baseline on the same circuits — a miniature Table VI.
//!
//! ```text
//! cargo run -p ancstr-bench --example ota_device_level --release
//! ```

use ancstr_baselines::{sfa_extract, SfaConfig};
use ancstr_bench::quick_config;
use ancstr_circuits::ota::ota_suite;
use ancstr_core::pipeline::evaluate_detection;
use ancstr_core::SymmetryExtractor;
use ancstr_netlist::flat::FlatCircuit;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = 99;
    let circuits: Vec<FlatCircuit> = ota_suite(seed)
        .iter()
        .map(FlatCircuit::elaborate)
        .collect::<Result<_, _>>()?;

    // Train once on the whole suite (unsupervised — no labels used).
    let mut extractor = SymmetryExtractor::new(quick_config());
    let refs: Vec<&FlatCircuit> = circuits.iter().collect();
    extractor.fit(&refs);

    println!(
        "{:<6} | {:>6} {:>6} {:>6} | {:>6} {:>6} {:>6}",
        "", "GNN", "", "", "SFA", "", ""
    );
    println!(
        "{:<6} | {:>6} {:>6} {:>6} | {:>6} {:>6} {:>6}",
        "OTA", "TPR", "FPR", "F1", "TPR", "FPR", "F1"
    );
    for (i, flat) in circuits.iter().enumerate() {
        let ours = extractor.evaluate(flat);
        let sfa = evaluate_detection(flat, sfa_extract(flat, &SfaConfig::default()));
        println!(
            "OTA{:<3} | {:>6.3} {:>6.3} {:>6.3} | {:>6.3} {:>6.3} {:>6.3}",
            i + 1,
            ours.device.tpr(),
            ours.device.fpr(),
            ours.device.f1(),
            sfa.device.tpr(),
            sfa.device.fpr(),
            sfa.device.f1(),
        );
    }

    // The headline property: the GNN's false-positive rate is far below
    // SFA's on the same designs.
    let gnn_fpr: f64 = circuits
        .iter()
        .map(|f| extractor.evaluate(f).device.fpr())
        .sum::<f64>()
        / circuits.len() as f64;
    let sfa_fpr: f64 = circuits
        .iter()
        .map(|f| {
            evaluate_detection(f, sfa_extract(f, &SfaConfig::default()))
                .device
                .fpr()
        })
        .sum::<f64>()
        / circuits.len() as f64;
    println!("\nmean FPR: GNN {gnn_fpr:.3} vs SFA {sfa_fpr:.3}");
    assert!(
        gnn_fpr < sfa_fpr,
        "the GNN must produce fewer false alarms than SFA"
    );
    println!("GNN produces fewer false alarms, as in the paper");
    Ok(())
}
