//! The Fig. 2 scenario: a SAR-ADC clock tree whose inverters all share
//! one topology, so only *sizing* separates the matched pairs from the
//! false alarms. A sizing-blind detector (S³DET) annotates all the
//! inverters as one symmetry group; the sizing-aware GNN keeps the
//! x8 comparator-clock branch out.
//!
//! ```text
//! cargo run -p ancstr-bench --example clock_sizing
//! ```

use ancstr_baselines::{s3det_extract, S3detConfig};
use ancstr_bench::quick_config;
use ancstr_circuits::clock::clock_circuit;
use ancstr_core::pipeline::evaluate_detection;
use ancstr_core::SymmetryExtractor;
use ancstr_netlist::flat::FlatCircuit;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let flat = FlatCircuit::elaborate(&clock_circuit())?;
    println!(
        "clock tree: {} inverter instances, {} devices",
        flat.blocks().count() - 1, // minus the top cell
        flat.devices().len()
    );
    println!("ground truth: 3 equal-drive pairs (x1, x2, x4 on mirrored paths)");
    println!("trap: an x8 comparator-clock branch with identical topology\n");

    // Sizing-aware GNN.
    let mut extractor = SymmetryExtractor::new(quick_config());
    extractor.fit(&[&flat]);
    let gnn = extractor.evaluate(&flat);
    println!(
        "GNN   : TP {} FP {} FN {}  (TPR {:.2}, FPR {:.2})",
        gnn.system.tp,
        gnn.system.fp,
        gnn.system.fn_,
        gnn.system.tpr(),
        gnn.system.fpr()
    );

    // Sizing-blind spectral baseline.
    let s3 = evaluate_detection(&flat, s3det_extract(&flat, &S3detConfig::default()));
    println!(
        "S3DET : TP {} FP {} FN {}  (TPR {:.2}, FPR {:.2})",
        s3.system.tp,
        s3.system.fp,
        s3.system.fn_,
        s3.system.tpr(),
        s3.system.fpr()
    );

    assert_eq!(gnn.system.fn_, 0, "GNN finds every equal-drive pair");
    assert_eq!(gnn.system.fp, 0, "GNN rejects the cross-drive pairs");
    assert!(s3.system.fp > 0, "the sizing-blind baseline over-matches");
    println!("\nsizing awareness prevents the Fig. 2 false alarms");
    Ok(())
}
