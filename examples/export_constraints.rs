//! Downstream hand-off: extract constraints, merge them into symmetry
//! groups, detect self-symmetric (axis) devices, and round-trip the
//! result through the MAGICAL-style constraint file format a placer
//! would consume.
//!
//! ```text
//! cargo run -p ancstr-bench --example export_constraints
//! ```

use ancstr_core::detect::detect_self_symmetric;
use ancstr_core::groups::merge_groups;
use ancstr_core::{read_constraints, write_constraints, ExtractorConfig, SymmetryExtractor};
use ancstr_netlist::flat::FlatCircuit;
use ancstr_netlist::parse::parse_spice;

const NETLIST: &str = "\
.subckt latchcore q qb en vdd vss
M1 q qb tail vss nch_lvt w=4u l=0.1u
M2 qb q tail vss nch_lvt w=4u l=0.1u
M3 q qb vdd vdd pch_lvt w=8u l=0.1u
M4 qb q vdd vdd pch_lvt w=8u l=0.1u
M5 tail en vss vss nch w=2u l=0.2u
C1 q vss 10f
C2 qb vss 10f
C3 q vss 10f
C4 qb vss 10f
.ends
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let nl = parse_spice(NETLIST)?;
    let flat = FlatCircuit::elaborate(&nl)?;

    let mut extractor = SymmetryExtractor::new(ExtractorConfig::default());
    extractor.fit(&[&flat]);
    let result = extractor.extract(&flat);

    // 1. Pairwise constraints merge into groups (the four caps form one
    //    matched array group, not six separate pairs).
    let groups = merge_groups(&result.detection.constraints);
    println!("{} pairwise constraints -> {} groups", result.detection.constraints.len(), groups.len());
    for g in &groups {
        let names: Vec<&str> = g.members.iter().map(|&m| flat.node(m).name.as_str()).collect();
        println!("  [{}] {}", g.kind, names.join(" "));
    }
    let cap_group = groups.iter().find(|g| g.len() == 4);
    assert!(cap_group.is_some(), "the 4 matched caps merge into one group");

    // 2. The tail device M5 bridges the matched halves: self-symmetric.
    let z = extractor.vertex_embeddings(&flat);
    let axis = detect_self_symmetric(&flat, &z, &result.detection, 0.99);
    let axis_names: Vec<&str> = axis.iter().map(|&m| flat.node(m).name.as_str()).collect();
    println!("\nself-symmetric (axis) devices: {axis_names:?}");
    assert!(axis_names.contains(&"M5"), "tail flagged on the axis");

    // 3. File round trip.
    let text = write_constraints(&flat, &result.detection.constraints);
    println!("\nconstraint file:\n{text}");
    let back = read_constraints(&flat, &text)?;
    assert_eq!(back.len(), result.detection.constraints.len());
    println!("round trip preserved all {} constraints", back.len());
    Ok(())
}
